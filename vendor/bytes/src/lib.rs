//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset the FUSE reproduction uses: [`Bytes`] (cheaply
//! clonable immutable byte buffer), [`BytesMut`] with [`BufMut::put_slice`]
//! and [`BytesMut::freeze`]. Cheap cloning is real (an `Arc<[u8]>` under the
//! hood), because message payloads are cloned on every simulated hop.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Buffer borrowing from static data (copied here; upstream borrows).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Buffer owning a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Writing into growable buffers (used subset).
pub trait BufMut {
    /// Appends `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_equality() {
        let mut m = BytesMut::new();
        m.put_slice(b"hello ");
        m.put_slice(b"world");
        let b = m.freeze();
        assert_eq!(&b[..], b"hello world");
        assert_eq!(b.len(), 11);
        assert_eq!(b, Bytes::copy_from_slice(b"hello world"));
        assert_ne!(b, Bytes::from_static(b"other"));
    }

    #[test]
    fn clone_is_cheap_and_shared() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn debug_escapes_binary() {
        let b = Bytes::from_static(&[0x00, b'a', 0xff]);
        assert_eq!(format!("{b:?}"), "b\"\\x00a\\xff\"");
    }

    #[test]
    fn empty_buffers() {
        assert!(Bytes::new().is_empty());
        assert!(BytesMut::with_capacity(16).is_empty());
        assert_eq!(Bytes::new(), BytesMut::new().freeze());
    }
}
