//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the subset of proptest's API its tests use: the [`proptest!`] macro with
//! optional `#![proptest_config(..)]`, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, [`any`], integer-range and regex-literal strategies,
//! [`Strategy::prop_map`], [`Strategy::prop_flat_map`], [`prop_oneof!`],
//! `prop::collection::vec` and `prop::sample::Index`.
//!
//! Differences from upstream, deliberate for this repo:
//!
//! * **No shrinking.** On failure the exact input (plus the run seed) is
//!   printed; cases are small enough here to debug directly.
//! * **Deterministic by default.** The case stream is seeded from the test
//!   name, so CI failures reproduce locally. Set `PROPTEST_SEED` to explore
//!   other streams, `PROPTEST_CASES` to override the case count.
//! * The regex strategy implements only what the tests use: `.`, literal
//!   runs, one character class, each optionally followed by `{m,n}`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (field-compatible construction with upstream:
/// `ProptestConfig { cases: 12, ..ProptestConfig::default() }`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the input; try another.
    Reject(String),
    /// `prop_assert!`-family failure.
    Fail(String),
}

/// A generator of test values.
///
/// Unlike upstream there is no shrinking tree; `generate` returns the value
/// directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy: draws a value, builds a second strategy
    /// from it, and draws from that — the upstream way to make one
    /// dimension's range depend on another (e.g. a victim index bounded by
    /// a sampled group size, without modulo bias).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`] arms of
    /// different concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut StdRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among boxed strategies (the [`prop_oneof!`] backend).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Builds from at least one arm.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let k = rng.gen_range(0..self.0.len());
        self.0[k].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Whole-domain strategy for `T` (`any::<u64>()` etc.).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident/$idx:tt),+ $(,)?);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (A/0,);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
    (A/0, B/1, C/2, D/3, E/4, F/5);
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6);
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8);
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9);
}

// ---------------------------------------------------------------------------
// Regex-literal string strategies (the `"[a-z]{1,6}"` form).

enum Atom {
    /// `.` — any printable character (ASCII plus a few multibyte samples).
    Any,
    /// `[a-z0-9_]`-style class, stored as inclusive ranges.
    Class(Vec<(char, char)>),
    /// A literal character.
    Lit(char),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Parses the tiny regex subset used by the test suite. Panics (with the
/// pattern) on anything it does not understand, so an unsupported pattern
/// fails loudly instead of silently generating the wrong language.
fn parse_pattern(pat: &str) -> Vec<Piece> {
    let mut chars = pat.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Any,
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in regex {pat:?}"));
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated range in regex {pat:?}"));
                        assert!(lo <= hi, "inverted range in regex {pat:?}");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty class in regex {pat:?}");
                Atom::Class(ranges)
            }
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '\\' => {
                panic!("unsupported regex syntax {c:?} in {pat:?} (vendored proptest subset)")
            }
            lit => Atom::Lit(lit),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            let (lo, hi) = match spec.split_once(',') {
                Some((lo, hi)) => (lo, hi),
                None => (spec.as_str(), spec.as_str()),
            };
            let lo: usize = lo
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad repeat in {pat:?}"));
            let hi: usize = hi
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad repeat in {pat:?}"));
            assert!(lo <= hi, "inverted repeat in regex {pat:?}");
            (lo, hi)
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

const ANY_EXTRA: &[char] = &['é', 'ß', '中', '☃', '𝕏'];

fn gen_char(atom: &Atom, rng: &mut StdRng) -> char {
    match atom {
        Atom::Any => {
            // Mostly printable ASCII; occasionally multibyte, to exercise
            // UTF-8 handling in the codec round-trip tests.
            if rng.gen_bool(0.9) {
                rng.gen_range(0x20u32..0x7f) as u8 as char
            } else {
                ANY_EXTRA[rng.gen_range(0..ANY_EXTRA.len())]
            }
        }
        Atom::Class(ranges) => {
            let total: u32 = ranges.iter().map(|&(l, h)| h as u32 - l as u32 + 1).sum();
            let mut k = rng.gen_range(0..total);
            for &(l, h) in ranges {
                let span = h as u32 - l as u32 + 1;
                if k < span {
                    return char::from_u32(l as u32 + k)
                        .expect("class range stays in scalar values");
                }
                k -= span;
            }
            unreachable!("class sampling out of bounds")
        }
        Atom::Lit(c) => *c,
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for p in &pieces {
            let n = rng.gen_range(p.min..=p.max);
            for _ in 0..n {
                out.push(gen_char(&p.atom, rng));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// `prop::` namespace.

/// Namespaced strategy constructors, mirroring upstream's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{StdRng, Strategy};
        use rand::Rng;

        /// Strategy for `Vec`s with element strategy `elem` and a length
        /// drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty size range");
            VecStrategy { elem, size }
        }

        /// See [`vec`](fn@vec).
        pub struct VecStrategy<S> {
            elem: S,
            size: core::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.size.clone());
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::{StdRng, Strategy};
        use rand::Rng;

        /// Strategy yielding `None` half the time and `Some(inner)`
        /// otherwise (upstream defaults to a 50% `None` weight too).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
                if rng.gen::<bool>() {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use super::super::{Arbitrary, StdRng};
        use rand::Rng;

        /// An index into a collection whose length is unknown at
        /// generation time; resolved with [`Index::index`].
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Maps this sample onto `0..len`.
            ///
            /// # Panics
            ///
            /// Panics if `len` is zero.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on an empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut StdRng) -> Self {
                Index(rng.gen())
            }
        }

        /// Uniform choice from a fixed list of values.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select from an empty list");
            Select { items }
        }

        /// See [`select`].
        pub struct Select<T> {
            items: Vec<T>,
        }

        impl<T: Clone> super::super::Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut StdRng) -> T {
                self.items[rng.gen_range(0..self.items.len())].clone()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner.

fn runner_seed(name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse() {
            return v;
        }
    }
    // FNV-1a over the test name: deterministic per test, different between
    // tests.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn effective_cases(cfg: &ProptestConfig) -> u32 {
    if let Ok(s) = std::env::var("PROPTEST_CASES") {
        if let Ok(v) = s.parse() {
            return v;
        }
    }
    cfg.cases
}

/// Drives one property test: generates inputs, runs the body, reports the
/// failing input and seed on error. Used by the [`proptest!`] expansion; not
/// part of the public upstream API.
pub fn run_proptest<S, F>(cfg: &ProptestConfig, name: &str, strat: &S, mut body: F)
where
    S: Strategy,
    S::Value: std::fmt::Debug,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let seed = runner_seed(name);
    let cases = effective_cases(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < cases {
        let value = strat.generate(&mut rng);
        let shown = format!("{value:?}");
        match catch_unwind(AssertUnwindSafe(|| body(value))) {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(TestCaseError::Reject(_))) => {
                rejected += 1;
                if rejected > cfg.max_global_rejects {
                    panic!(
                        "proptest {name}: gave up after {rejected} rejected cases \
                         ({accepted}/{cases} accepted; seed {seed})"
                    );
                }
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!("proptest {name} failed: {msg}\n    input: {shown}\n    seed: {seed}");
            }
            Err(payload) => {
                eprintln!("proptest {name} panicked\n    input: {shown}\n    seed: {seed}");
                resume_unwind(payload);
            }
        }
    }
}

/// Defines property tests. Supports the upstream surface this repo uses:
/// an optional leading `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let strat = ($($strat,)+);
            $crate::run_proptest(&cfg, stringify!($name), &strat, |($($arg,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Uniform choice among strategy arms (all producing the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, w in 3usize..=5) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((3..=5).contains(&w));
        }

        #[test]
        fn regex_class_matches(s in "[a-z]{1,6}") {
            prop_assert!(!s.is_empty() && s.len() <= 6);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()), "got {:?}", s);
        }

        #[test]
        fn dot_pattern_generates_printable(s in ".{0,8}") {
            prop_assert!(s.chars().count() <= 8);
        }

        #[test]
        fn vec_and_tuple_strategies(v in prop::collection::vec((any::<u8>(), any::<bool>()), 0..9)) {
            prop_assert!(v.len() < 9);
        }

        #[test]
        fn flat_map_bounds_follow_the_first_draw(
            pair in (2usize..6).prop_flat_map(|size| (0..size).prop_map(move |i| (size, i)))
        ) {
            let (size, idx) = pair;
            prop_assert!((2..6).contains(&size));
            prop_assert!(idx < size, "idx {} out of sampled bound {}", idx, size);
        }

        #[test]
        fn assume_rejects_and_map_applies(x in (0u32..100).prop_map(|v| v * 2)) {
            prop_assume!(x != 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn index_resolves(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(7) < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

        #[test]
        fn config_cases_is_respected(_x in 0u8..=255) {
            // Runs exactly 5 cases; nothing to assert beyond not failing.
        }
    }

    proptest! {
        #[test]
        fn oneof_covers_all_arms(v in prop_oneof![0u32..10, 100u32..110, 200u32..210]) {
            prop_assert!(v < 10 || (100..110).contains(&v) || (200..210).contains(&v));
        }
    }

    #[test]
    fn failing_property_panics_with_input() {
        let err = std::panic::catch_unwind(|| {
            crate::run_proptest(
                &ProptestConfig::default(),
                "always_fails",
                &(0u8..10),
                |_v| -> Result<(), TestCaseError> { Err(TestCaseError::Fail("nope".into())) },
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("nope") && msg.contains("input"), "{msg}");
    }
}
