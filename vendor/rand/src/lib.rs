//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace vendors the *API subset* of `rand 0.8` that the FUSE
//! reproduction actually calls: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_bool, gen_range}` over integer/float ranges, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), which is irrelevant here: the
//! repo only requires that a fixed seed yields the same sequence on every
//! run, never a specific stream. Distributions use rejection sampling
//! (integers) and 53-bit mantissa division (floats), so they are unbiased,
//! deterministic, and platform-independent.

/// Random core: a source of uniformly distributed `u64` words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` via SplitMix64 expansion (the upstream
    /// convention for seeding wide states from a small seed).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Unbiased uniform draw in `[0, span)` (`span > 0`) by Lemire-style
/// rejection on the widening multiply.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = widening_mul(v, span);
        if lo <= zone {
            return hi;
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 stream — see the crate docs for why that
    /// does not matter here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut w = [0u8; 8];
                w.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(w);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling and choosing (the used subset of upstream's trait).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5usize..=7);
            assert!((5..=7).contains(&w));
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "hits={hits}");
        assert_eq!((0..100).filter(|_| r.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| r.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn shuffle_permutes_and_choose_in_range() {
        let mut r = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
