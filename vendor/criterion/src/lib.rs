//! Offline stand-in for the `criterion` crate.
//!
//! Implements the measuring subset the bench targets use — `Criterion`,
//! `benchmark_group`/`bench_function`, `Bencher::{iter, iter_batched}`,
//! `Throughput`, `BatchSize`, `criterion_group!`/`criterion_main!` — with a
//! plain wall-clock sampler instead of upstream's statistical machinery:
//! warm-up, auto-calibrated iteration counts, and a median over fixed-size
//! samples after median-absolute-deviation outlier rejection (see
//! [`mad_filter`] — upstream uses a Tukey fence for the same purpose).
//! Good enough to compare kernel implementations on one machine, which is
//! all this workspace needs from it.
//!
//! Environment knobs:
//!
//! * `CRITERION_MEASURE_MS` — target measurement time per benchmark,
//!   default 300 ms (`1` makes CI smoke runs fast).
//! * `CRITERION_SAMPLES` — samples per benchmark, default 11.

use std::time::{Duration, Instant};

/// Re-export for bench code that uses `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hints for [`Bencher::iter_batched`]; the sampler treats all
/// variants identically (one setup per measured call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: setup per call is cheap.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// Per-iteration setup.
    PerIteration,
}

/// Units processed per iteration, reported alongside timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Abstract elements per iteration.
    Elements(u64),
}

/// One benchmark's summarized measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/function`).
    pub id: String,
    /// Median nanoseconds per iteration (over the retained samples; the
    /// median is invariant under symmetric outlier rejection).
    pub median_ns: f64,
    /// Fastest retained sample, ns/iter.
    pub min_ns: f64,
    /// Slowest retained sample, ns/iter.
    pub max_ns: f64,
    /// Samples collected before outlier rejection.
    pub samples: usize,
    /// Samples rejected as outliers (see [`mad_filter`]).
    pub rejected: usize,
}

/// Rejection threshold in robust standard deviations: samples whose
/// modified z-score exceeds this are dropped. 3.5 is the conventional
/// cutoff (Iglewicz & Hoaglin).
const MAD_CUTOFF: f64 = 3.5;

/// Scale factor making the MAD a consistent estimator of the standard
/// deviation under normality.
const MAD_CONSISTENCY: f64 = 1.4826;

/// Median-absolute-deviation outlier rejection: sorts `samples`, drops
/// every sample further than `3.5 × 1.4826 × MAD` from the median, and
/// returns how many were dropped. The median itself always survives, so
/// the result is never empty. With `MAD == 0` (more than half the samples
/// identical) nothing is rejected — a degenerate spread means there is no
/// robust scale to reject against.
///
/// This is what keeps a single preempted sample on a noisy CI runner from
/// dragging a gated metric (e.g. the `route_oracle` hit/miss latencies)
/// across the regression band: one 10× spike among eleven samples moves
/// the pre-rejection max, not the retained spread.
pub fn mad_filter(samples: &mut Vec<f64>) -> usize {
    assert!(!samples.is_empty(), "mad_filter needs at least one sample");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let median = samples[samples.len() / 2];
    let mut devs: Vec<f64> = samples.iter().map(|x| (x - median).abs()).collect();
    devs.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let mad = devs[devs.len() / 2];
    if mad <= 0.0 {
        return 0;
    }
    let cut = MAD_CUTOFF * MAD_CONSISTENCY * mad;
    let before = samples.len();
    samples.retain(|x| (x - median).abs() <= cut);
    before - samples.len()
}

fn measure_ms() -> u64 {
    std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

fn sample_count() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(11)
        .max(3)
}

fn fmt_outliers(m: &Measurement) -> String {
    if m.rejected > 0 {
        format!("  ({}/{} outliers rejected)", m.rejected, m.samples)
    } else {
        String::new()
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Runs closures under the sampler; handed to bench functions.
pub struct Bencher {
    samples_ns_per_iter: Vec<f64>,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples_ns_per_iter: Vec::new(),
        }
    }

    /// Measures `routine` called in a tight loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many calls fill ~1/8 of the measurement budget?
        let budget = Duration::from_millis(measure_ms().max(1));
        let mut n: u64 = 1;
        let per_iter_est;
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= budget / 8 || n >= 1 << 30 {
                per_iter_est = dt.as_secs_f64() / n as f64;
                break;
            }
            n *= 2;
        }
        let samples = sample_count();
        let per_sample =
            ((budget.as_secs_f64() / samples as f64) / per_iter_est.max(1e-9)).ceil() as u64;
        let per_sample = per_sample.clamp(1, 1 << 30);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            self.samples_ns_per_iter
                .push(dt.as_nanos() as f64 / per_sample as f64);
        }
    }

    /// Measures `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let budget = Duration::from_millis(measure_ms().max(1));
        // One warm-up call, also the calibration probe.
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(routine(input));
        let per_iter_est = t0.elapsed().as_secs_f64().max(1e-9);
        let samples = sample_count();
        let per_sample = ((budget.as_secs_f64() / samples as f64) / per_iter_est).ceil() as u64;
        let per_sample = per_sample.clamp(1, 1 << 20);
        for _ in 0..samples {
            let mut total = Duration::ZERO;
            for _ in 0..per_sample {
                let input = setup();
                let t0 = Instant::now();
                std::hint::black_box(routine(input));
                total += t0.elapsed();
            }
            self.samples_ns_per_iter
                .push(total.as_nanos() as f64 / per_sample as f64);
        }
    }

    fn summarize(self, id: &str) -> Measurement {
        let mut s = self.samples_ns_per_iter;
        assert!(!s.is_empty(), "bench {id} recorded no samples");
        let samples = s.len();
        let rejected = mad_filter(&mut s);
        Measurement {
            id: id.to_string(),
            median_ns: s[s.len() / 2],
            min_ns: s[0],
            max_ns: *s.last().expect("non-empty"),
            samples,
            rejected,
        }
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        let m = b.summarize(&id);
        println!(
            "{:<40} time: [{} {} {}]{}",
            m.id,
            fmt_ns(m.min_ns),
            fmt_ns(m.median_ns),
            fmt_ns(m.max_ns),
            fmt_outliers(&m),
        );
        self.results.push(m);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// All measurements recorded so far (stub extension; used by the
    /// workspace's JSON bench runner).
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }
}

/// A group of benchmarks sharing a name prefix and optional throughput.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the units processed per iteration for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::new();
        f(&mut b);
        let m = b.summarize(&id);
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let gib = n as f64 / m.median_ns * 1e9 / (1024.0 * 1024.0 * 1024.0);
                format!("  thrpt: {gib:.3} GiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let meps = n as f64 / m.median_ns * 1e9 / 1e6;
                format!("  thrpt: {meps:.3} Melem/s")
            }
            None => String::new(),
        };
        println!(
            "{:<40} time: [{} {} {}]{rate}{}",
            m.id,
            fmt_ns(m.min_ns),
            fmt_ns(m.median_ns),
            fmt_ns(m.max_ns),
            fmt_outliers(&m),
        );
        self.parent.results.push(m);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles bench functions into a runnable group, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_positive_times() {
        std::env::set_var("CRITERION_MEASURE_MS", "1");
        let mut c = Criterion::default();
        c.bench_function("spin", |b| b.iter(|| std::hint::black_box(2u64 + 2)));
        let m = &c.measurements()[0];
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        std::env::set_var("CRITERION_MEASURE_MS", "1");
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(c.measurements().len(), 1);
    }

    #[test]
    fn mad_filter_drops_a_lone_spike_but_keeps_the_median() {
        // Ten tight samples plus one 10x spike — the classic preempted-CI
        // sample. The spike must go; everything else must stay.
        let mut s = vec![
            100.0, 101.0, 99.0, 102.0, 98.0, 100.5, 99.5, 101.5, 98.5, 100.0, 1000.0,
        ];
        let rejected = mad_filter(&mut s);
        assert_eq!(rejected, 1);
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|&x| x < 200.0));
        // Sorted ascending, median intact.
        assert_eq!(s[s.len() / 2], 100.0);
    }

    #[test]
    fn mad_filter_keeps_everything_when_spread_is_tight() {
        let mut s = vec![10.0, 10.1, 9.9, 10.05, 9.95];
        assert_eq!(mad_filter(&mut s), 0);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn mad_filter_degenerate_spread_rejects_nothing() {
        // MAD == 0 (majority identical): no robust scale, so even the
        // obvious outlier survives rather than dividing by zero.
        let mut s = vec![5.0, 5.0, 5.0, 5.0, 500.0];
        assert_eq!(mad_filter(&mut s), 0);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn summaries_record_sample_and_rejection_counts() {
        std::env::set_var("CRITERION_MEASURE_MS", "1");
        let mut c = Criterion::default();
        c.bench_function("counts", |b| b.iter(|| std::hint::black_box(1u64 + 1)));
        let m = &c.measurements()[0];
        assert!(m.samples >= 3);
        assert!(m.rejected < m.samples);
    }

    #[test]
    fn groups_prefix_ids_and_report_throughput() {
        std::env::set_var("CRITERION_MEASURE_MS", "1");
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.throughput(Throughput::Bytes(64));
            g.bench_function("x", |b| b.iter(|| std::hint::black_box(1)));
            g.finish();
        }
        assert_eq!(c.measurements()[0].id, "grp/x");
    }
}
