//! Overlay identities and ring geometry.
//!
//! SkipNet nodes have two identities: a **name ID** (a string; the ring is
//! ordered lexicographically, with wraparound) and a **numeric ID** (a
//! sequence of uniformly random digits, base 8 here as in the paper's
//! configuration). The routing table at level `h` points to the nearest ring
//! neighbors sharing the first `h` numeric digits, which is what yields
//! O(log n) routing.

use fuse_util::PeerAddr as ProcId;
use fuse_wire::{sha1, Decode, DecodeError, Encode, Reader, Writer};

/// Number of numeric-ID digits we derive (enough levels for any
/// experiment's scale).
pub const NUMERIC_DIGITS: usize = 16;

/// A node's name ID: ring position in lexicographic order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeName(pub String);

impl NodeName {
    /// Builds a deterministic padded name; zero-padding makes lexicographic
    /// order match numeric order, handy in tests.
    pub fn numbered(i: usize) -> Self {
        NodeName(format!("node-{i:06}"))
    }

    /// Cyclic "is `x` strictly inside the arc (self → to], walking
    /// clockwise (increasing names, wrapping at the top)?"
    pub fn arc_contains(&self, to: &NodeName, x: &NodeName) -> bool {
        if self == to {
            // Degenerate full-circle arc: everything but the start is inside.
            return x != self;
        }
        if self < to {
            x > self && x <= to
        } else {
            x > self || x <= to
        }
    }
}

impl std::fmt::Display for NodeName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl Encode for NodeName {
    fn encode(&self, w: &mut dyn Writer) {
        self.0.encode(w);
    }

    fn size_hint(&self) -> usize {
        self.0.size_hint()
    }
}

impl Decode for NodeName {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(NodeName(String::decode(r)?))
    }
}

/// A node's numeric ID: `NUMERIC_DIGITS` base-8 digits derived from the
/// name by hashing, so it is uniform and reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NumericId {
    digits: [u8; NUMERIC_DIGITS],
}

impl NumericId {
    /// Derives the numeric ID for `name` (SHA-1 bits, 3 bits per digit).
    pub fn for_name(name: &NodeName) -> Self {
        let d = sha1(name.0.as_bytes());
        let mut digits = [0u8; NUMERIC_DIGITS];
        for (i, digit) in digits.iter_mut().enumerate() {
            // 3 bits per digit out of the 160-bit digest.
            let bit = i * 3;
            let byte = bit / 8;
            let off = bit % 8;
            let word = (u16::from(d.0[byte]) << 8) | u16::from(d.0[(byte + 1) % 20]);
            *digit = ((word >> (16 - 3 - off)) & 0x7) as u8;
        }
        NumericId { digits }
    }

    /// The digit at `level`.
    pub fn digit(&self, level: usize) -> u8 {
        self.digits[level]
    }

    /// Length of the common digit prefix with `other`.
    pub fn common_prefix(&self, other: &NumericId) -> usize {
        self.digits
            .iter()
            .zip(other.digits.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }
}

/// Identity and address of an overlay node, as carried in messages.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeInfo {
    /// Simulation process id (the "network address").
    pub proc: ProcId,
    /// Ring name.
    pub name: NodeName,
}

impl NodeInfo {
    /// Convenience constructor.
    pub fn new(proc: ProcId, name: NodeName) -> Self {
        NodeInfo { proc, name }
    }

    /// Numeric ID derived from the name.
    pub fn numeric(&self) -> NumericId {
        NumericId::for_name(&self.name)
    }
}

impl Encode for NodeInfo {
    fn encode(&self, w: &mut dyn Writer) {
        self.proc.encode(w);
        self.name.encode(w);
    }

    fn size_hint(&self) -> usize {
        self.proc.size_hint() + self.name.size_hint()
    }
}

impl Decode for NodeInfo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(NodeInfo {
            proc: ProcId::decode(r)?,
            name: NodeName::decode(r)?,
        })
    }
}

/// Clockwise arc comparison: among candidates inside the arc
/// `(from → target]`, the best next hop is the one *furthest* along, i.e.
/// with maximal position in arc order. Returns whether `a` is strictly
/// further clockwise from `from` than `b` (i.e. `b` lies inside the arc
/// `(from → a]`).
pub fn further_clockwise(from: &NodeName, a: &NodeName, b: &NodeName) -> bool {
    a != b && from.arc_contains(a, b)
}

/// Whether `a` is strictly closer than `b` when walking clockwise from
/// `from` (i.e. `a` lies inside the arc `(from → b)`).
pub fn closer_clockwise(from: &NodeName, a: &NodeName, b: &NodeName) -> bool {
    a != b && from.arc_contains(b, a)
}

/// Whether `a` is strictly closer than `b` when walking counterclockwise
/// from `from` (i.e. `a` lies inside the cw arc `(b → from)`).
pub fn closer_counterclockwise(from: &NodeName, a: &NodeName, b: &NodeName) -> bool {
    a != b && a != from && b.arc_contains(from, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuse_wire::Encode;

    fn n(s: &str) -> NodeName {
        NodeName(s.to_string())
    }

    #[test]
    fn arc_contains_basic() {
        let a = n("b");
        let c = n("m");
        assert!(a.arc_contains(&c, &n("c")));
        assert!(a.arc_contains(&c, &n("m")), "arc is closed at the far end");
        assert!(!a.arc_contains(&c, &n("b")), "arc is open at the start");
        assert!(!a.arc_contains(&c, &n("z")));
    }

    #[test]
    fn arc_contains_wraps() {
        let a = n("x");
        let c = n("c");
        assert!(a.arc_contains(&c, &n("z")), "after start, pre-wrap");
        assert!(a.arc_contains(&c, &n("a")), "post-wrap");
        assert!(!a.arc_contains(&c, &n("m")));
    }

    #[test]
    fn arc_degenerate_full_circle() {
        let a = n("k");
        assert!(a.arc_contains(&a, &n("z")));
        assert!(!a.arc_contains(&a, &n("k")));
    }

    #[test]
    fn numeric_ids_are_uniform_ish_and_deterministic() {
        let x = NumericId::for_name(&n("node-000001"));
        let y = NumericId::for_name(&n("node-000001"));
        assert_eq!(x, y);
        // Digit histogram over many names should cover all 8 values.
        let mut counts = [0usize; 8];
        for i in 0..512 {
            let id = NumericId::for_name(&NodeName::numbered(i));
            counts[id.digit(0) as usize] += 1;
        }
        for (d, &c) in counts.iter().enumerate() {
            assert!(c > 20, "digit {d} badly skewed: {c}/512");
        }
    }

    #[test]
    fn common_prefix_reflexive_and_bounded() {
        let a = NumericId::for_name(&n("alpha"));
        let b = NumericId::for_name(&n("beta"));
        assert_eq!(a.common_prefix(&a), NUMERIC_DIGITS);
        assert!(a.common_prefix(&b) < NUMERIC_DIGITS);
    }

    #[test]
    fn node_info_roundtrips_on_wire() {
        let info = NodeInfo::new(42, n("node-000042"));
        let bytes = info.to_bytes();
        let back = NodeInfo::from_bytes(&bytes).unwrap();
        assert_eq!(back, info);
    }

    #[test]
    fn further_clockwise_orders_candidates() {
        let from = n("a");
        assert!(further_clockwise(&from, &n("m"), &n("c")));
        assert!(!further_clockwise(&from, &n("c"), &n("m")));
        // With wraparound: from "x", "b" (wrapped) is further than "z".
        assert!(further_clockwise(&n("x"), &n("b"), &n("z")));
        assert!(!further_clockwise(&n("x"), &n("z"), &n("b")));
    }

    #[test]
    fn closer_clockwise_orders_candidates() {
        let from = n("f");
        assert!(closer_clockwise(&from, &n("g"), &n("k")));
        assert!(!closer_clockwise(&from, &n("k"), &n("g")));
        // Wraparound: from "x", "z" is closer than "b".
        assert!(closer_clockwise(&n("x"), &n("z"), &n("b")));
    }

    #[test]
    fn closer_counterclockwise_orders_candidates() {
        let from = n("m");
        assert!(closer_counterclockwise(&from, &n("k"), &n("c")));
        assert!(!closer_counterclockwise(&from, &n("c"), &n("k")));
        // Wraparound: from "c", "z" is ccw-closer than "x".
        assert!(closer_counterclockwise(&n("c"), &n("z"), &n("x")));
        assert!(!closer_counterclockwise(&n("c"), &n("x"), &n("z")));
    }
}
