//! The overlay's sans-io surface: effects out, upcalls up.
//!
//! The overlay is a pure state machine. Every entry point takes an
//! [`OverlayCx`] — a borrowed bundle of `now`, the driver RNG, the
//! overlay's timer table and two output buffers — and all side effects
//! leave as plain data: [`OverlayEffect`]s (sends, timer arm/cancel) for
//! the embedding stack to translate into driver commands, and
//! [`OverlayUpcall`]s for the client layer (FUSE) to consume. No driver
//! type (`fuse_sim` or otherwise) appears anywhere in the signatures.

use bytes::Bytes;
use rand::rngs::StdRng;
use std::collections::VecDeque;

use fuse_util::{Duration, KeyedTimers, PeerAddr, Time, TimerKey};
use fuse_wire::Digest;

use crate::id::{NodeInfo, NodeName};
use crate::messages::OverlayMsg;

/// Timer tags owned by the overlay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlayTimer {
    /// Periodic liveness ping for one neighbor.
    PingDue(PeerAddr),
    /// A ping to `peer` (nonce-matched) was not acknowledged in time.
    AckTimeout {
        /// The pinged neighbor.
        peer: PeerAddr,
        /// Nonce of the outstanding ping.
        nonce: u64,
    },
    /// The join request went unanswered; retry.
    JoinRetry,
    /// Periodic background table maintenance.
    Maintenance,
}

/// Side effects the overlay asks its driver to perform, in emission order.
#[derive(Debug, Clone)]
pub enum OverlayEffect {
    /// Send an overlay message to a peer.
    Send {
        /// Destination peer.
        to: PeerAddr,
        /// The message.
        msg: OverlayMsg,
    },
    /// Schedule the timer identified by `key` to fire `after` from now.
    /// (The key is already armed in the overlay's [`KeyedTimers`]; the
    /// driver only schedules the wakeup.)
    SetTimer {
        /// The timer's identity, to be fed back on expiry.
        key: TimerKey,
        /// Relative deadline.
        after: Duration,
    },
    /// Drop a scheduled wakeup. Drivers may also ignore this and deliver
    /// the expiry anyway — a cancelled key resolves to nothing.
    CancelTimer {
        /// The cancelled timer.
        key: TimerKey,
    },
}

/// Upcalls from the overlay to its client layer.
#[derive(Debug, Clone)]
pub enum OverlayUpcall {
    /// A liveness message (ping or ack) from `peer` carried this piggyback
    /// digest — the client refreshes whatever state the digest covers
    /// (paper §6.3).
    PingHash {
        /// Monitored neighbor.
        peer: PeerAddr,
        /// The digest the neighbor piggybacked for this link.
        hash: Digest,
    },
    /// A new neighbor entered the monitored set.
    LinkUp {
        /// The neighbor.
        peer: PeerAddr,
    },
    /// A monitored link stopped being monitored.
    LinkDown {
        /// The neighbor.
        peer: PeerAddr,
        /// `true` when the neighbor was declared dead (ping timeout or
        /// transport break); `false` when it was merely evicted by table
        /// maintenance (overlay route change).
        died: bool,
    },
    /// A routed client payload reached this node (the routing target).
    Delivered {
        /// The originator.
        src: NodeInfo,
        /// The hop the message arrived from (the originator itself when the
        /// route was a single hop).
        prev: PeerAddr,
        /// Opaque client payload.
        payload: Bytes,
    },
    /// A routed client payload passed through this node (the per-hop upcall
    /// of §6.1).
    Forwarded {
        /// The originator.
        src: NodeInfo,
        /// Final routing target.
        target: NodeName,
        /// Previous hop process.
        prev: PeerAddr,
        /// Next hop process.
        next: PeerAddr,
        /// Opaque client payload.
        payload: Bytes,
    },
    /// A routed client payload could not make progress (routing hole); the
    /// upcall fires on the node where the message stalled.
    RouteStuck {
        /// The originator.
        src: NodeInfo,
        /// Unreachable routing target.
        target: NodeName,
        /// Opaque client payload.
        payload: Bytes,
    },
    /// An acknowledgment for a shared-plane probe round arrived — directly
    /// (`ProbeAck`, digest attached) or through a relay (`IndirectAck`,
    /// no digest). The client routes it into its failure detector.
    ProbeAcked {
        /// The peer that proved alive.
        peer: PeerAddr,
        /// Round correlator echoed by the peer.
        nonce: u64,
        /// Responder's piggyback digest (direct acks only).
        hash: Option<Digest>,
    },
}

/// Borrowed per-call context for one overlay entry point.
///
/// The embedding stack owns the RNG, the timer table and the buffers; it
/// constructs an `OverlayCx` around them for the duration of one call and
/// drains `effects`/`upcalls` afterwards. Effects are emitted in call
/// order, which the drivers preserve — that is what keeps sim traces
/// bit-identical across the sans-io boundary.
pub struct OverlayCx<'a> {
    now: Time,
    rng: &'a mut StdRng,
    timers: &'a mut KeyedTimers<OverlayTimer>,
    effects: &'a mut VecDeque<OverlayEffect>,
    upcalls: &'a mut Vec<OverlayUpcall>,
}

impl<'a> OverlayCx<'a> {
    /// Builds a context over the stack-owned state.
    pub fn new(
        now: Time,
        rng: &'a mut StdRng,
        timers: &'a mut KeyedTimers<OverlayTimer>,
        effects: &'a mut VecDeque<OverlayEffect>,
        upcalls: &'a mut Vec<OverlayUpcall>,
    ) -> Self {
        OverlayCx {
            now,
            rng,
            timers,
            effects,
            upcalls,
        }
    }

    /// Current time (driver-provided).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Deterministic randomness (driver-provided).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Queues an overlay message to a peer.
    pub fn send(&mut self, to: PeerAddr, msg: OverlayMsg) {
        self.effects.push_back(OverlayEffect::Send { to, msg });
    }

    /// Arms a timer with an overlay tag, returning its key.
    pub fn set_timer(&mut self, after: Duration, tag: OverlayTimer) -> TimerKey {
        let key = self.timers.arm(tag);
        self.effects
            .push_back(OverlayEffect::SetTimer { key, after });
        key
    }

    /// Cancels a previously armed timer.
    pub fn cancel_timer(&mut self, key: TimerKey) {
        if self.timers.cancel(key) {
            self.effects.push_back(OverlayEffect::CancelTimer { key });
        }
    }

    /// Resolves a driver-delivered timer key to its tag; stale keys
    /// (cancelled or superseded) resolve to `None`.
    pub fn fire_timer(&mut self, key: TimerKey) -> Option<OverlayTimer> {
        self.timers.fire(key)
    }

    /// Delivers an upcall to the client layer (buffered by the stack).
    pub fn upcall(&mut self, ev: OverlayUpcall) {
        self.upcalls.push(ev);
    }
}
