//! The overlay's interface to its host (the node stack) and its client
//! (the FUSE layer).
//!
//! All side effects — sends, timers, randomness, and upcalls to the layer
//! above — flow through [`OverlayIo`]. The node stack in `fuse-core`
//! implements it over the simulation kernel's handler context; tests
//! implement it over a scratch buffer.

use bytes::Bytes;
use rand::rngs::StdRng;

use fuse_sim::{ProcId, SimDuration, SimTime, TimerHandle};
use fuse_wire::Digest;

use crate::id::{NodeInfo, NodeName};
use crate::messages::OverlayMsg;

/// Timer tags owned by the overlay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlayTimer {
    /// Periodic liveness ping for one neighbor.
    PingDue(ProcId),
    /// A ping to `peer` (nonce-matched) was not acknowledged in time.
    AckTimeout {
        /// The pinged neighbor.
        peer: ProcId,
        /// Nonce of the outstanding ping.
        nonce: u64,
    },
    /// The join request went unanswered; retry.
    JoinRetry,
    /// Periodic background table maintenance.
    Maintenance,
}

/// Upcalls from the overlay to its client layer.
#[derive(Debug, Clone)]
pub enum OverlayUpcall {
    /// A liveness message (ping or ack) from `peer` carried this piggyback
    /// digest — the client refreshes whatever state the digest covers
    /// (paper §6.3).
    PingHash {
        /// Monitored neighbor.
        peer: ProcId,
        /// The digest the neighbor piggybacked for this link.
        hash: Digest,
    },
    /// A new neighbor entered the monitored set.
    LinkUp {
        /// The neighbor.
        peer: ProcId,
    },
    /// A monitored link stopped being monitored.
    LinkDown {
        /// The neighbor.
        peer: ProcId,
        /// `true` when the neighbor was declared dead (ping timeout or
        /// transport break); `false` when it was merely evicted by table
        /// maintenance (overlay route change).
        died: bool,
    },
    /// A routed client payload reached this node (the routing target).
    Delivered {
        /// The originator.
        src: NodeInfo,
        /// The hop the message arrived from (the originator itself when the
        /// route was a single hop).
        prev: ProcId,
        /// Opaque client payload.
        payload: Bytes,
    },
    /// A routed client payload passed through this node (the per-hop upcall
    /// of §6.1).
    Forwarded {
        /// The originator.
        src: NodeInfo,
        /// Final routing target.
        target: NodeName,
        /// Previous hop process.
        prev: ProcId,
        /// Next hop process.
        next: ProcId,
        /// Opaque client payload.
        payload: Bytes,
    },
    /// A routed client payload could not make progress (routing hole); the
    /// upcall fires on the node where the message stalled.
    RouteStuck {
        /// The originator.
        src: NodeInfo,
        /// Unreachable routing target.
        target: NodeName,
        /// Opaque client payload.
        payload: Bytes,
    },
    /// An acknowledgment for a shared-plane probe round arrived — directly
    /// (`ProbeAck`, digest attached) or through a relay (`IndirectAck`,
    /// no digest). The client routes it into its failure detector.
    ProbeAcked {
        /// The peer that proved alive.
        peer: ProcId,
        /// Round correlator echoed by the peer.
        nonce: u64,
        /// Responder's piggyback digest (direct acks only).
        hash: Option<Digest>,
    },
}

/// Host services for the overlay.
pub trait OverlayIo {
    /// Current simulated time.
    fn now(&self) -> SimTime;

    /// Deterministic randomness.
    fn rng(&mut self) -> &mut StdRng;

    /// Sends an overlay message to a peer process.
    fn send(&mut self, to: ProcId, msg: OverlayMsg);

    /// Arms a timer with an overlay tag.
    fn set_timer(&mut self, after: SimDuration, tag: OverlayTimer) -> TimerHandle;

    /// Cancels a previously armed timer.
    fn cancel_timer(&mut self, h: TimerHandle);

    /// Delivers an upcall to the client layer (buffered by the stack).
    fn upcall(&mut self, ev: OverlayUpcall);
}
