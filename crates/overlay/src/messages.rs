//! Overlay wire messages.
//!
//! Every message has a hand-written binary encoding so experiments measure
//! real byte counts — in particular, a `Ping` is a nonce plus the 20-byte
//! piggyback digest, matching the paper's "the only additional cost was a 20
//! byte hash piggybacked on each ping" (§7.5).

use bytes::Bytes;

use fuse_wire::{Decode, DecodeError, Digest, Encode, Reader, Writer};

use crate::id::{NodeInfo, NodeName};

/// Overlay protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum OverlayMsg {
    /// Liveness ping carrying the piggyback digest for this link.
    Ping {
        /// Matches the ack to the outstanding timeout.
        nonce: u64,
        /// Piggyback digest (FUSE's hash of jointly monitored group IDs);
        /// absent when no groups monitor this link, so an idle overlay pays
        /// zero piggyback bytes (§7.5).
        hash: Option<Digest>,
    },
    /// Acknowledgment, carrying the responder's digest for the link.
    PingAck {
        /// Echoed nonce.
        nonce: u64,
        /// Responder's piggyback digest.
        hash: Option<Digest>,
    },
    /// Envelope routed by name through the overlay.
    Routed {
        /// Originator identity.
        src: NodeInfo,
        /// Routing target name.
        target: NodeName,
        /// Remaining hops before the loop guard drops the message.
        ttl: u8,
        /// Protocol class (see [`RoutedClass`]).
        class: u8,
        /// Payload (client bytes, or encoded overlay control data).
        payload: Bytes,
        /// Hop recording for maintenance probes.
        path: Vec<NodeInfo>,
    },
    /// Join answer: candidates for the joiner's tables, sent directly.
    JoinReply {
        /// Responder plus its leaf set and routing-table entries.
        candidates: Vec<NodeInfo>,
    },
    /// Announce a (new) node to a prospective leaf-set/table neighbor.
    Announce {
        /// The announcing node.
        info: NodeInfo,
        /// Whether a reply with candidates is requested.
        want_reply: bool,
    },
    /// Reply to an announce with table candidates.
    AnnounceAck {
        /// Responder's identity plus candidates.
        candidates: Vec<NodeInfo>,
    },
    /// Reply to a maintenance probe: the path the probe traversed.
    ProbeReply {
        /// Hop infos collected by the probe.
        path: Vec<NodeInfo>,
    },
    /// A routed message could not progress; returned to the originator.
    RoutedError {
        /// Routing target that was unreachable.
        target: NodeName,
        /// Node where the route stalled.
        at: NodeInfo,
        /// Original class.
        class: u8,
        /// Original payload.
        payload: Bytes,
    },
}

/// Classes of routed envelopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutedClass {
    /// Client payload (FUSE) — upcalled at every hop and at the target.
    Client = 0,
    /// Join request — payload is the joiner's `NodeInfo`.
    Join = 1,
    /// Maintenance probe — records the hop path.
    Probe = 2,
}

impl RoutedClass {
    /// Parses a wire class byte.
    pub fn from_u8(v: u8) -> Option<RoutedClass> {
        match v {
            0 => Some(RoutedClass::Client),
            1 => Some(RoutedClass::Join),
            2 => Some(RoutedClass::Probe),
            _ => None,
        }
    }
}

const TAG_PING: u8 = 1;
const TAG_PING_ACK: u8 = 2;
const TAG_ROUTED: u8 = 3;
const TAG_JOIN_REPLY: u8 = 4;
const TAG_ANNOUNCE: u8 = 5;
const TAG_ANNOUNCE_ACK: u8 = 6;
const TAG_PROBE_REPLY: u8 = 7;
const TAG_ROUTED_ERROR: u8 = 8;

impl Encode for OverlayMsg {
    fn encode(&self, w: &mut dyn Writer) {
        match self {
            OverlayMsg::Ping { nonce, hash } => {
                TAG_PING.encode(w);
                nonce.encode(w);
                hash.encode(w);
            }
            OverlayMsg::PingAck { nonce, hash } => {
                TAG_PING_ACK.encode(w);
                nonce.encode(w);
                hash.encode(w);
            }
            OverlayMsg::Routed {
                src,
                target,
                ttl,
                class,
                payload,
                path,
            } => {
                TAG_ROUTED.encode(w);
                src.encode(w);
                target.encode(w);
                ttl.encode(w);
                class.encode(w);
                payload.encode(w);
                path.encode(w);
            }
            OverlayMsg::JoinReply { candidates } => {
                TAG_JOIN_REPLY.encode(w);
                candidates.encode(w);
            }
            OverlayMsg::Announce { info, want_reply } => {
                TAG_ANNOUNCE.encode(w);
                info.encode(w);
                want_reply.encode(w);
            }
            OverlayMsg::AnnounceAck { candidates } => {
                TAG_ANNOUNCE_ACK.encode(w);
                candidates.encode(w);
            }
            OverlayMsg::ProbeReply { path } => {
                TAG_PROBE_REPLY.encode(w);
                path.encode(w);
            }
            OverlayMsg::RoutedError {
                target,
                at,
                class,
                payload,
            } => {
                TAG_ROUTED_ERROR.encode(w);
                target.encode(w);
                at.encode(w);
                class.encode(w);
                payload.encode(w);
            }
        }
    }

    fn size_hint(&self) -> usize {
        1 + match self {
            OverlayMsg::Ping { nonce, hash } | OverlayMsg::PingAck { nonce, hash } => {
                nonce.size_hint() + hash.size_hint()
            }
            OverlayMsg::Routed {
                src,
                target,
                ttl,
                class,
                payload,
                path,
            } => {
                src.size_hint()
                    + target.size_hint()
                    + ttl.size_hint()
                    + class.size_hint()
                    + payload.size_hint()
                    + path.size_hint()
            }
            OverlayMsg::JoinReply { candidates } | OverlayMsg::AnnounceAck { candidates } => {
                candidates.size_hint()
            }
            OverlayMsg::Announce { info, want_reply } => info.size_hint() + want_reply.size_hint(),
            OverlayMsg::ProbeReply { path } => path.size_hint(),
            OverlayMsg::RoutedError {
                target,
                at,
                class,
                payload,
            } => target.size_hint() + at.size_hint() + class.size_hint() + payload.size_hint(),
        }
    }
}

impl Decode for OverlayMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            TAG_PING => Ok(OverlayMsg::Ping {
                nonce: u64::decode(r)?,
                hash: Option::decode(r)?,
            }),
            TAG_PING_ACK => Ok(OverlayMsg::PingAck {
                nonce: u64::decode(r)?,
                hash: Option::decode(r)?,
            }),
            TAG_ROUTED => Ok(OverlayMsg::Routed {
                src: NodeInfo::decode(r)?,
                target: NodeName::decode(r)?,
                ttl: u8::decode(r)?,
                class: u8::decode(r)?,
                payload: Bytes::decode(r)?,
                path: Vec::decode(r)?,
            }),
            TAG_JOIN_REPLY => Ok(OverlayMsg::JoinReply {
                candidates: Vec::decode(r)?,
            }),
            TAG_ANNOUNCE => Ok(OverlayMsg::Announce {
                info: NodeInfo::decode(r)?,
                want_reply: bool::decode(r)?,
            }),
            TAG_ANNOUNCE_ACK => Ok(OverlayMsg::AnnounceAck {
                candidates: Vec::decode(r)?,
            }),
            TAG_PROBE_REPLY => Ok(OverlayMsg::ProbeReply {
                path: Vec::decode(r)?,
            }),
            TAG_ROUTED_ERROR => Ok(OverlayMsg::RoutedError {
                target: NodeName::decode(r)?,
                at: NodeInfo::decode(r)?,
                class: u8::decode(r)?,
                payload: Bytes::decode(r)?,
            }),
            _ => Err(DecodeError::Invalid("overlay message tag")),
        }
    }
}

impl OverlayMsg {
    /// Metrics class label.
    pub fn class_label(&self) -> &'static str {
        match self {
            OverlayMsg::Ping { .. } => "overlay.ping",
            OverlayMsg::PingAck { .. } => "overlay.ack",
            OverlayMsg::Routed { class, .. } => match RoutedClass::from_u8(*class) {
                Some(RoutedClass::Client) => "overlay.routed",
                Some(RoutedClass::Join) => "overlay.join",
                Some(RoutedClass::Probe) => "overlay.probe",
                None => "overlay.routed",
            },
            OverlayMsg::JoinReply { .. } => "overlay.join",
            OverlayMsg::Announce { .. } | OverlayMsg::AnnounceAck { .. } => "overlay.maint",
            OverlayMsg::ProbeReply { .. } => "overlay.probe",
            OverlayMsg::RoutedError { .. } => "overlay.routed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::NodeName;
    use fuse_wire::sha1;

    fn roundtrip(m: OverlayMsg) {
        let b = m.to_bytes();
        assert_eq!(b.len(), m.wire_size());
        assert_eq!(OverlayMsg::from_bytes(&b).unwrap(), m);
    }

    #[test]
    fn all_variants_roundtrip() {
        let info = NodeInfo::new(3, NodeName::numbered(3));
        roundtrip(OverlayMsg::Ping {
            nonce: 77,
            hash: Some(sha1(b"x")),
        });
        roundtrip(OverlayMsg::PingAck {
            nonce: 77,
            hash: None,
        });
        roundtrip(OverlayMsg::Routed {
            src: info.clone(),
            target: NodeName::numbered(9),
            ttl: 40,
            class: 0,
            payload: Bytes::from_static(b"hello"),
            path: vec![info.clone()],
        });
        roundtrip(OverlayMsg::JoinReply {
            candidates: vec![info.clone(), NodeInfo::new(4, NodeName::numbered(4))],
        });
        roundtrip(OverlayMsg::Announce {
            info: info.clone(),
            want_reply: true,
        });
        roundtrip(OverlayMsg::AnnounceAck { candidates: vec![] });
        roundtrip(OverlayMsg::ProbeReply {
            path: vec![info.clone()],
        });
        roundtrip(OverlayMsg::RoutedError {
            target: NodeName::numbered(1),
            at: info,
            class: 0,
            payload: Bytes::new(),
        });
    }

    #[test]
    fn ping_wire_cost_is_20_extra_bytes_only_with_groups() {
        // Paper §7.5: "the only additional cost was a 20 byte hash
        // piggybacked on each ping". Tag (1) + varint nonce (1) + option
        // tag (1) [+ digest (20)].
        let idle = OverlayMsg::Ping {
            nonce: 1,
            hash: None,
        };
        let busy = OverlayMsg::Ping {
            nonce: 1,
            hash: Some(sha1(b"")),
        };
        assert_eq!(busy.wire_size() - idle.wire_size(), 20);
        assert_eq!(idle.wire_size(), 3);
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(OverlayMsg::from_bytes(&[99]).is_err());
    }
}
