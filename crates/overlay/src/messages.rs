//! Overlay wire messages.
//!
//! Every message has a hand-written binary encoding so experiments measure
//! real byte counts — in particular, a `Ping` is a nonce plus the 20-byte
//! piggyback digest, matching the paper's "the only additional cost was a 20
//! byte hash piggybacked on each ping" (§7.5).

use bytes::Bytes;

use fuse_util::PeerAddr as ProcId;
use fuse_wire::{Decode, DecodeError, Digest, Encode, Reader, Writer};

use crate::id::{NodeInfo, NodeName};

/// Overlay protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum OverlayMsg {
    /// Liveness ping carrying the piggyback digest for this link.
    Ping {
        /// Matches the ack to the outstanding timeout.
        nonce: u64,
        /// Piggyback digest (FUSE's hash of jointly monitored group IDs);
        /// absent when no groups monitor this link, so an idle overlay pays
        /// zero piggyback bytes (§7.5).
        hash: Option<Digest>,
    },
    /// Acknowledgment, carrying the responder's digest for the link.
    PingAck {
        /// Echoed nonce.
        nonce: u64,
        /// Responder's piggyback digest.
        hash: Option<Digest>,
    },
    /// Envelope routed by name through the overlay.
    Routed {
        /// Originator identity.
        src: NodeInfo,
        /// Routing target name.
        target: NodeName,
        /// Remaining hops before the loop guard drops the message.
        ttl: u8,
        /// Protocol class (see [`RoutedClass`]).
        class: u8,
        /// Payload (client bytes, or encoded overlay control data).
        payload: Bytes,
        /// Hop recording for maintenance probes.
        path: Vec<NodeInfo>,
    },
    /// Join answer: candidates for the joiner's tables, sent directly.
    JoinReply {
        /// Responder plus its leaf set and routing-table entries.
        candidates: Vec<NodeInfo>,
    },
    /// Announce a (new) node to a prospective leaf-set/table neighbor.
    Announce {
        /// The announcing node.
        info: NodeInfo,
        /// Whether a reply with candidates is requested.
        want_reply: bool,
    },
    /// Reply to an announce with table candidates.
    AnnounceAck {
        /// Responder's identity plus candidates.
        candidates: Vec<NodeInfo>,
    },
    /// Reply to a maintenance probe: the path the probe traversed.
    ProbeReply {
        /// Hop infos collected by the probe.
        path: Vec<NodeInfo>,
    },
    /// A routed message could not progress; returned to the originator.
    RoutedError {
        /// Routing target that was unreachable.
        target: NodeName,
        /// Node where the route stalled.
        at: NodeInfo,
        /// Original class.
        class: u8,
        /// Original payload.
        payload: Bytes,
    },
    /// Direct probe from the shared failure-detector plane. Carries the
    /// same piggyback digest as a `Ping`, so digest reconciliation keeps
    /// working when the shared plane replaces per-neighbor pings.
    Probe {
        /// Matches the ack to the prober's outstanding round.
        nonce: u64,
        /// Prober's piggyback digest for the link (absent when no groups
        /// monitor it).
        hash: Option<Digest>,
    },
    /// Acknowledgment of a direct `Probe`, with the responder's digest.
    ProbeAck {
        /// Echoed nonce.
        nonce: u64,
        /// Responder's piggyback digest.
        hash: Option<Digest>,
    },
    /// Relay request: probe `target` on behalf of `origin` (SWIM's
    /// indirect ping, sent when the direct probe goes unanswered).
    IndirectProbe {
        /// The prober the eventual ack must travel back to.
        origin: ProcId,
        /// The silent peer being probed.
        target: ProcId,
        /// Round correlator.
        nonce: u64,
    },
    /// Relayed acknowledgment travelling from `target` back to `origin`
    /// through the relay.
    IndirectAck {
        /// The prober to deliver the ack to.
        origin: ProcId,
        /// The peer that answered.
        target: ProcId,
        /// Echoed round correlator.
        nonce: u64,
    },
}

/// Classes of routed envelopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutedClass {
    /// Client payload (FUSE) — upcalled at every hop and at the target.
    Client = 0,
    /// Join request — payload is the joiner's `NodeInfo`.
    Join = 1,
    /// Maintenance probe — records the hop path.
    Probe = 2,
}

impl RoutedClass {
    /// Parses a wire class byte.
    pub fn from_u8(v: u8) -> Option<RoutedClass> {
        match v {
            0 => Some(RoutedClass::Client),
            1 => Some(RoutedClass::Join),
            2 => Some(RoutedClass::Probe),
            _ => None,
        }
    }
}

const TAG_PING: u8 = 1;
const TAG_PING_ACK: u8 = 2;
const TAG_ROUTED: u8 = 3;
const TAG_JOIN_REPLY: u8 = 4;
const TAG_ANNOUNCE: u8 = 5;
const TAG_ANNOUNCE_ACK: u8 = 6;
const TAG_PROBE_REPLY: u8 = 7;
const TAG_ROUTED_ERROR: u8 = 8;
const TAG_PROBE: u8 = 9;
const TAG_PROBE_ACK: u8 = 10;
const TAG_INDIRECT_PROBE: u8 = 11;
const TAG_INDIRECT_ACK: u8 = 12;

impl Encode for OverlayMsg {
    fn encode(&self, w: &mut dyn Writer) {
        match self {
            OverlayMsg::Ping { nonce, hash } => {
                TAG_PING.encode(w);
                nonce.encode(w);
                hash.encode(w);
            }
            OverlayMsg::PingAck { nonce, hash } => {
                TAG_PING_ACK.encode(w);
                nonce.encode(w);
                hash.encode(w);
            }
            OverlayMsg::Routed {
                src,
                target,
                ttl,
                class,
                payload,
                path,
            } => {
                TAG_ROUTED.encode(w);
                src.encode(w);
                target.encode(w);
                ttl.encode(w);
                class.encode(w);
                payload.encode(w);
                path.encode(w);
            }
            OverlayMsg::JoinReply { candidates } => {
                TAG_JOIN_REPLY.encode(w);
                candidates.encode(w);
            }
            OverlayMsg::Announce { info, want_reply } => {
                TAG_ANNOUNCE.encode(w);
                info.encode(w);
                want_reply.encode(w);
            }
            OverlayMsg::AnnounceAck { candidates } => {
                TAG_ANNOUNCE_ACK.encode(w);
                candidates.encode(w);
            }
            OverlayMsg::ProbeReply { path } => {
                TAG_PROBE_REPLY.encode(w);
                path.encode(w);
            }
            OverlayMsg::RoutedError {
                target,
                at,
                class,
                payload,
            } => {
                TAG_ROUTED_ERROR.encode(w);
                target.encode(w);
                at.encode(w);
                class.encode(w);
                payload.encode(w);
            }
            OverlayMsg::Probe { nonce, hash } => {
                TAG_PROBE.encode(w);
                nonce.encode(w);
                hash.encode(w);
            }
            OverlayMsg::ProbeAck { nonce, hash } => {
                TAG_PROBE_ACK.encode(w);
                nonce.encode(w);
                hash.encode(w);
            }
            OverlayMsg::IndirectProbe {
                origin,
                target,
                nonce,
            } => {
                TAG_INDIRECT_PROBE.encode(w);
                origin.encode(w);
                target.encode(w);
                nonce.encode(w);
            }
            OverlayMsg::IndirectAck {
                origin,
                target,
                nonce,
            } => {
                TAG_INDIRECT_ACK.encode(w);
                origin.encode(w);
                target.encode(w);
                nonce.encode(w);
            }
        }
    }

    fn size_hint(&self) -> usize {
        1 + match self {
            OverlayMsg::Ping { nonce, hash }
            | OverlayMsg::PingAck { nonce, hash }
            | OverlayMsg::Probe { nonce, hash }
            | OverlayMsg::ProbeAck { nonce, hash } => nonce.size_hint() + hash.size_hint(),
            OverlayMsg::Routed {
                src,
                target,
                ttl,
                class,
                payload,
                path,
            } => {
                src.size_hint()
                    + target.size_hint()
                    + ttl.size_hint()
                    + class.size_hint()
                    + payload.size_hint()
                    + path.size_hint()
            }
            OverlayMsg::JoinReply { candidates } | OverlayMsg::AnnounceAck { candidates } => {
                candidates.size_hint()
            }
            OverlayMsg::Announce { info, want_reply } => info.size_hint() + want_reply.size_hint(),
            OverlayMsg::ProbeReply { path } => path.size_hint(),
            OverlayMsg::RoutedError {
                target,
                at,
                class,
                payload,
            } => target.size_hint() + at.size_hint() + class.size_hint() + payload.size_hint(),
            OverlayMsg::IndirectProbe {
                origin,
                target,
                nonce,
            }
            | OverlayMsg::IndirectAck {
                origin,
                target,
                nonce,
            } => origin.size_hint() + target.size_hint() + nonce.size_hint(),
        }
    }
}

impl Decode for OverlayMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            TAG_PING => Ok(OverlayMsg::Ping {
                nonce: u64::decode(r)?,
                hash: Option::decode(r)?,
            }),
            TAG_PING_ACK => Ok(OverlayMsg::PingAck {
                nonce: u64::decode(r)?,
                hash: Option::decode(r)?,
            }),
            TAG_ROUTED => Ok(OverlayMsg::Routed {
                src: NodeInfo::decode(r)?,
                target: NodeName::decode(r)?,
                ttl: u8::decode(r)?,
                class: u8::decode(r)?,
                payload: Bytes::decode(r)?,
                path: Vec::decode(r)?,
            }),
            TAG_JOIN_REPLY => Ok(OverlayMsg::JoinReply {
                candidates: Vec::decode(r)?,
            }),
            TAG_ANNOUNCE => Ok(OverlayMsg::Announce {
                info: NodeInfo::decode(r)?,
                want_reply: bool::decode(r)?,
            }),
            TAG_ANNOUNCE_ACK => Ok(OverlayMsg::AnnounceAck {
                candidates: Vec::decode(r)?,
            }),
            TAG_PROBE_REPLY => Ok(OverlayMsg::ProbeReply {
                path: Vec::decode(r)?,
            }),
            TAG_ROUTED_ERROR => Ok(OverlayMsg::RoutedError {
                target: NodeName::decode(r)?,
                at: NodeInfo::decode(r)?,
                class: u8::decode(r)?,
                payload: Bytes::decode(r)?,
            }),
            TAG_PROBE => Ok(OverlayMsg::Probe {
                nonce: u64::decode(r)?,
                hash: Option::decode(r)?,
            }),
            TAG_PROBE_ACK => Ok(OverlayMsg::ProbeAck {
                nonce: u64::decode(r)?,
                hash: Option::decode(r)?,
            }),
            TAG_INDIRECT_PROBE => Ok(OverlayMsg::IndirectProbe {
                origin: ProcId::decode(r)?,
                target: ProcId::decode(r)?,
                nonce: u64::decode(r)?,
            }),
            TAG_INDIRECT_ACK => Ok(OverlayMsg::IndirectAck {
                origin: ProcId::decode(r)?,
                target: ProcId::decode(r)?,
                nonce: u64::decode(r)?,
            }),
            _ => Err(DecodeError::Invalid("overlay message tag")),
        }
    }
}

impl OverlayMsg {
    /// Metrics class label.
    pub fn class_label(&self) -> &'static str {
        match self {
            OverlayMsg::Ping { .. } => "overlay.ping",
            OverlayMsg::PingAck { .. } => "overlay.ack",
            OverlayMsg::Routed { class, .. } => match RoutedClass::from_u8(*class) {
                Some(RoutedClass::Client) => "overlay.routed",
                Some(RoutedClass::Join) => "overlay.join",
                Some(RoutedClass::Probe) => "overlay.probe",
                None => "overlay.routed",
            },
            OverlayMsg::JoinReply { .. } => "overlay.join",
            OverlayMsg::Announce { .. } | OverlayMsg::AnnounceAck { .. } => "overlay.maint",
            OverlayMsg::ProbeReply { .. } => "overlay.probe",
            OverlayMsg::RoutedError { .. } => "overlay.routed",
            OverlayMsg::Probe { .. } | OverlayMsg::ProbeAck { .. } => "overlay.probe-direct",
            OverlayMsg::IndirectProbe { .. } | OverlayMsg::IndirectAck { .. } => {
                "overlay.probe-indirect"
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::NodeName;
    use fuse_wire::sha1;

    fn roundtrip(m: OverlayMsg) {
        let b = m.to_bytes();
        assert_eq!(b.len(), m.wire_size());
        assert_eq!(OverlayMsg::from_bytes(&b).unwrap(), m);
    }

    #[test]
    fn all_variants_roundtrip() {
        let info = NodeInfo::new(3, NodeName::numbered(3));
        roundtrip(OverlayMsg::Ping {
            nonce: 77,
            hash: Some(sha1(b"x")),
        });
        roundtrip(OverlayMsg::PingAck {
            nonce: 77,
            hash: None,
        });
        roundtrip(OverlayMsg::Routed {
            src: info.clone(),
            target: NodeName::numbered(9),
            ttl: 40,
            class: 0,
            payload: Bytes::from_static(b"hello"),
            path: vec![info.clone()],
        });
        roundtrip(OverlayMsg::JoinReply {
            candidates: vec![info.clone(), NodeInfo::new(4, NodeName::numbered(4))],
        });
        roundtrip(OverlayMsg::Announce {
            info: info.clone(),
            want_reply: true,
        });
        roundtrip(OverlayMsg::AnnounceAck { candidates: vec![] });
        roundtrip(OverlayMsg::ProbeReply {
            path: vec![info.clone()],
        });
        roundtrip(OverlayMsg::RoutedError {
            target: NodeName::numbered(1),
            at: info,
            class: 0,
            payload: Bytes::new(),
        });
        roundtrip(OverlayMsg::Probe {
            nonce: 9001,
            hash: Some(sha1(b"links")),
        });
        roundtrip(OverlayMsg::ProbeAck {
            nonce: 9001,
            hash: None,
        });
        roundtrip(OverlayMsg::IndirectProbe {
            origin: 2,
            target: 5,
            nonce: 9002,
        });
        roundtrip(OverlayMsg::IndirectAck {
            origin: 2,
            target: 5,
            nonce: 9002,
        });
    }

    #[test]
    fn probe_costs_match_ping_costs() {
        // The shared plane must not make liveness traffic heavier than the
        // per-neighbor pings it replaces: a `Probe` prices out exactly like
        // a `Ping`, digest piggyback included (§7.5's 20-byte rule).
        let idle = OverlayMsg::Probe {
            nonce: 1,
            hash: None,
        };
        let busy = OverlayMsg::Probe {
            nonce: 1,
            hash: Some(sha1(b"")),
        };
        assert_eq!(idle.wire_size(), 3);
        assert_eq!(busy.wire_size() - idle.wire_size(), 20);
    }

    #[test]
    fn probe_labels_split_direct_from_indirect() {
        // The chaos adversary drops by class label; direct and indirect
        // probes must be separable so one can be dropped without the other.
        let direct = OverlayMsg::Probe {
            nonce: 1,
            hash: None,
        };
        let direct_ack = OverlayMsg::ProbeAck {
            nonce: 1,
            hash: None,
        };
        let ind = OverlayMsg::IndirectProbe {
            origin: 1,
            target: 2,
            nonce: 3,
        };
        let ind_ack = OverlayMsg::IndirectAck {
            origin: 1,
            target: 2,
            nonce: 3,
        };
        assert_eq!(direct.class_label(), "overlay.probe-direct");
        assert_eq!(direct_ack.class_label(), "overlay.probe-direct");
        assert_eq!(ind.class_label(), "overlay.probe-indirect");
        assert_eq!(ind_ack.class_label(), "overlay.probe-indirect");
        assert_ne!(direct.class_label(), ind.class_label());
    }

    #[test]
    fn ping_wire_cost_is_20_extra_bytes_only_with_groups() {
        // Paper §7.5: "the only additional cost was a 20 byte hash
        // piggybacked on each ping". Tag (1) + varint nonce (1) + option
        // tag (1) [+ digest (20)].
        let idle = OverlayMsg::Ping {
            nonce: 1,
            hash: None,
        };
        let busy = OverlayMsg::Ping {
            nonce: 1,
            hash: Some(sha1(b"")),
        };
        assert_eq!(busy.wire_size() - idle.wire_size(), 20);
        assert_eq!(idle.wire_size(), 3);
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(OverlayMsg::from_bytes(&[99]).is_err());
    }
}
