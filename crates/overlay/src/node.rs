//! The overlay node: ring membership, routing, liveness and repair.

use bytes::Bytes;
use rand::Rng;

use fuse_util::{DetHashMap, DetHashSet};
use fuse_util::{Duration, PeerAddr, TimerKey};
use fuse_wire::{Decode, Digest, Encode};

use crate::config::OverlayConfig;
use crate::id::{
    closer_clockwise, closer_counterclockwise, further_clockwise, NodeInfo, NodeName, NumericId,
};
use crate::io::{OverlayCx, OverlayTimer, OverlayUpcall};
use crate::messages::{OverlayMsg, RoutedClass};

/// Counters exposed for tests and experiments.
#[derive(Debug, Clone, Default)]
pub struct OverlayStats {
    /// Liveness pings sent.
    pub pings_sent: u64,
    /// Acks received for our pings.
    pub acks_received: u64,
    /// Neighbors declared dead (ping timeout or transport break).
    pub neighbors_died: u64,
    /// Neighbors dropped by table maintenance (still alive).
    pub neighbors_evicted: u64,
    /// Routed messages forwarded through this node.
    pub forwarded: u64,
    /// Routed messages that stalled here (routing hole).
    pub route_stalls: u64,
    /// Maintenance probes sent.
    pub probes_sent: u64,
}

/// Outcome of asking the overlay to route a client payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteStart {
    /// Handed to the given next hop.
    Sent {
        /// First hop of the route (an overlay neighbor).
        next: PeerAddr,
    },
    /// The local node is the routing target; nothing was sent.
    SelfIsTarget,
    /// No next hop exists (not yet joined, or routing hole).
    NoRoute,
}

/// A SkipNet-style overlay node.
///
/// All entry points take an [`OverlayCx`]; the node never touches a
/// driver (simulation kernel or socket runtime) directly.
pub struct OverlayNode {
    cfg: OverlayConfig,
    me: NodeInfo,
    numeric: NumericId,
    bootstrap: Option<PeerAddr>,
    ready: bool,
    /// Clockwise leaf set, nearest first.
    leaves_cw: Vec<NodeInfo>,
    /// Counterclockwise leaf set, nearest first.
    leaves_ccw: Vec<NodeInfo>,
    /// Routing table: per level, `[ccw, cw]` nearest nodes sharing that many
    /// numeric-digit prefixes.
    rtable: Vec<[Option<NodeInfo>; 2]>,
    /// Passive candidate cache (recently seen live nodes).
    known: DetHashMap<PeerAddr, NodeInfo>,
    /// Per-neighbor periodic ping timers.
    ping_timers: DetHashMap<PeerAddr, TimerKey>,
    /// Outstanding ping (nonce, timeout) per neighbor.
    ack_waits: DetHashMap<PeerAddr, (u64, TimerKey)>,
    /// Piggyback digest per link, pushed down by the client (FUSE).
    link_hashes: DetHashMap<PeerAddr, Digest>,
    next_nonce: u64,
    join_timer: Option<TimerKey>,
    join_attempts: u32,
    /// Exposed counters.
    pub stats: OverlayStats,
}

impl OverlayNode {
    /// Creates a node that will join through `bootstrap` on boot (or start
    /// a new ring when `None`).
    pub fn new(me: NodeInfo, bootstrap: Option<PeerAddr>, cfg: OverlayConfig) -> Self {
        let numeric = me.numeric();
        let levels = cfg.max_levels;
        OverlayNode {
            cfg,
            me,
            numeric,
            bootstrap,
            ready: false,
            leaves_cw: Vec::new(),
            leaves_ccw: Vec::new(),
            rtable: vec![[None, None]; levels],
            known: DetHashMap::default(),
            ping_timers: DetHashMap::default(),
            ack_waits: DetHashMap::default(),
            link_hashes: DetHashMap::default(),
            next_nonce: 0,
            join_timer: None,
            join_attempts: 0,
            stats: OverlayStats::default(),
        }
    }

    /// This node's identity.
    pub fn info(&self) -> &NodeInfo {
        &self.me
    }

    /// This node's ring name.
    pub fn name(&self) -> &NodeName {
        &self.me.name
    }

    /// Whether the node has joined the ring.
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// Pre-populates tables from global knowledge (oracle bootstrap for
    /// large-scale experiments); call before `boot`.
    pub fn preload_tables(
        &mut self,
        leaves_cw: Vec<NodeInfo>,
        leaves_ccw: Vec<NodeInfo>,
        rtable: Vec<[Option<NodeInfo>; 2]>,
    ) {
        assert!(!self.ready, "preload must precede boot");
        self.leaves_cw = leaves_cw;
        self.leaves_ccw = leaves_ccw;
        let levels = self.rtable.len();
        self.rtable = rtable;
        self.rtable
            .resize(levels.max(self.rtable.len()), [None, None]);
        self.ready = true;
    }

    /// Boots the node: joins through the bootstrap or, when preloaded or
    /// alone, starts steady-state operation immediately.
    pub fn boot(&mut self, io: &mut OverlayCx<'_>) {
        if self.ready || self.bootstrap.is_none() {
            self.ready = true;
            self.start_all_pings(io);
        } else {
            self.send_join(io);
        }
        let jitter = Duration(io.rng().gen_range(0..=self.cfg.maintenance_period.nanos()));
        io.set_timer(
            self.cfg.maintenance_period + jitter,
            OverlayTimer::Maintenance,
        );
    }

    fn send_join(&mut self, io: &mut OverlayCx<'_>) {
        let Some(bs) = self.bootstrap else { return };
        self.join_attempts += 1;
        let payload = self.me.to_bytes();
        io.send(
            bs,
            OverlayMsg::Routed {
                src: self.me.clone(),
                target: self.me.name.clone(),
                ttl: self.cfg.route_ttl,
                class: RoutedClass::Join as u8,
                payload,
                path: Vec::new(),
            },
        );
        let h = io.set_timer(self.cfg.join_timeout, OverlayTimer::JoinRetry);
        self.join_timer = Some(h);
    }

    // ---- Table structure -------------------------------------------------

    /// All distinct monitored neighbors (leaf set union routing table).
    pub fn neighbors(&self) -> Vec<PeerAddr> {
        let mut set: Vec<PeerAddr> = self.neighbor_set().into_iter().collect();
        set.sort_unstable();
        set
    }

    fn neighbor_set(&self) -> DetHashSet<PeerAddr> {
        let mut s = DetHashSet::default();
        for l in self.leaves_cw.iter().chain(self.leaves_ccw.iter()) {
            s.insert(l.proc);
        }
        for lvl in &self.rtable {
            for e in lvl.iter().flatten() {
                s.insert(e.proc);
            }
        }
        s
    }

    /// Leaf set (clockwise then counterclockwise, nearest first).
    pub fn leaf_set(&self) -> (&[NodeInfo], &[NodeInfo]) {
        (&self.leaves_cw, &self.leaves_ccw)
    }

    /// Next hop the node would use to route toward `target`.
    pub fn next_hop(&self, target: &NodeName) -> Option<PeerAddr> {
        self.best_next_hop(target).map(|n| n.proc)
    }

    fn all_entries(&self) -> impl Iterator<Item = &NodeInfo> {
        self.leaves_cw
            .iter()
            .chain(self.leaves_ccw.iter())
            .chain(self.rtable.iter().flat_map(|lvl| lvl.iter().flatten()))
    }

    fn best_next_hop(&self, target: &NodeName) -> Option<&NodeInfo> {
        if *target == self.me.name {
            return None;
        }
        let mut best: Option<&NodeInfo> = None;
        for cand in self.all_entries() {
            if !self.me.name.arc_contains(target, &cand.name) {
                continue;
            }
            match best {
                None => best = Some(cand),
                Some(b) => {
                    if further_clockwise(&self.me.name, &cand.name, &b.name) {
                        best = Some(cand);
                    }
                }
            }
        }
        best
    }

    /// Integrates `cand` into leaf set, routing table and candidate cache.
    /// Returns `true` if any table changed.
    fn integrate(&mut self, cand: &NodeInfo) -> bool {
        if cand.proc == self.me.proc || cand.name == self.me.name {
            return false;
        }
        if self.known.len() < self.cfg.candidate_cache {
            self.known.insert(cand.proc, cand.clone());
        }
        let mut changed = self.leaf_insert(cand);
        let shared = self.numeric.common_prefix(&cand.numeric());
        let max_lvl = shared.min(self.rtable.len().saturating_sub(1));
        for lvl in 0..=max_lvl {
            changed |= self.rtable_consider(lvl, cand);
        }
        changed
    }

    fn leaf_insert(&mut self, cand: &NodeInfo) -> bool {
        let mut changed = false;
        // Clockwise side.
        if !self.leaves_cw.iter().any(|l| l.proc == cand.proc) {
            let pos = self
                .leaves_cw
                .iter()
                .position(|l| closer_clockwise(&self.me.name, &cand.name, &l.name));
            match pos {
                Some(i) => {
                    self.leaves_cw.insert(i, cand.clone());
                    changed = true;
                }
                None if self.leaves_cw.len() < self.cfg.leaf_side => {
                    self.leaves_cw.push(cand.clone());
                    changed = true;
                }
                None => {}
            }
            if self.leaves_cw.len() > self.cfg.leaf_side {
                self.leaves_cw.truncate(self.cfg.leaf_side);
            }
        }
        // Counterclockwise side.
        if !self.leaves_ccw.iter().any(|l| l.proc == cand.proc) {
            let pos = self
                .leaves_ccw
                .iter()
                .position(|l| closer_counterclockwise(&self.me.name, &cand.name, &l.name));
            match pos {
                Some(i) => {
                    self.leaves_ccw.insert(i, cand.clone());
                    changed = true;
                }
                None if self.leaves_ccw.len() < self.cfg.leaf_side => {
                    self.leaves_ccw.push(cand.clone());
                    changed = true;
                }
                None => {}
            }
            if self.leaves_ccw.len() > self.cfg.leaf_side {
                self.leaves_ccw.truncate(self.cfg.leaf_side);
            }
        }
        changed
    }

    fn rtable_consider(&mut self, level: usize, cand: &NodeInfo) -> bool {
        let mut changed = false;
        // Slot 0: counterclockwise; slot 1: clockwise.
        let slots = &mut self.rtable[level];
        let better_ccw = match &slots[0] {
            None => true,
            Some(cur) => {
                cur.proc != cand.proc
                    && closer_counterclockwise(&self.me.name, &cand.name, &cur.name)
            }
        };
        if better_ccw {
            slots[0] = Some(cand.clone());
            changed = true;
        }
        let better_cw = match &slots[1] {
            None => true,
            Some(cur) => {
                cur.proc != cand.proc && closer_clockwise(&self.me.name, &cand.name, &cur.name)
            }
        };
        if better_cw {
            slots[1] = Some(cand.clone());
            changed = true;
        }
        changed
    }

    /// Integrates a batch of candidates, then reconciles ping timers and
    /// emits LinkUp/LinkDown(eviction) upcalls for the neighbor-set diff.
    fn integrate_all(&mut self, io: &mut OverlayCx<'_>, cands: &[NodeInfo]) {
        let before = self.neighbor_set();
        for c in cands {
            self.integrate(c);
        }
        self.reconcile_neighbors(io, &before);
    }

    fn reconcile_neighbors(&mut self, io: &mut OverlayCx<'_>, before: &DetHashSet<PeerAddr>) {
        let after = self.neighbor_set();
        let mut added: Vec<PeerAddr> = after.difference(before).copied().collect();
        let mut removed: Vec<PeerAddr> = before.difference(&after).copied().collect();
        added.sort_unstable();
        removed.sort_unstable();
        for p in added {
            self.start_ping(io, p);
            io.upcall(OverlayUpcall::LinkUp { peer: p });
        }
        for p in removed {
            self.stop_ping(io, p);
            self.stats.neighbors_evicted += 1;
            io.upcall(OverlayUpcall::LinkDown {
                peer: p,
                died: false,
            });
        }
    }

    // ---- Liveness --------------------------------------------------------

    fn start_all_pings(&mut self, io: &mut OverlayCx<'_>) {
        let mut peers: Vec<PeerAddr> = self.neighbor_set().into_iter().collect();
        peers.sort_unstable();
        for p in peers {
            self.start_ping(io, p);
        }
    }

    fn start_ping(&mut self, io: &mut OverlayCx<'_>, peer: PeerAddr) {
        if self.ping_timers.contains_key(&peer) {
            return;
        }
        // Phase jitter spreads ping load over the period.
        let jitter = Duration(io.rng().gen_range(0..=self.cfg.ping_period.nanos()));
        let h = io.set_timer(jitter, OverlayTimer::PingDue(peer));
        self.ping_timers.insert(peer, h);
    }

    fn stop_ping(&mut self, io: &mut OverlayCx<'_>, peer: PeerAddr) {
        if let Some(h) = self.ping_timers.remove(&peer) {
            io.cancel_timer(h);
        }
        if let Some((_, h)) = self.ack_waits.remove(&peer) {
            io.cancel_timer(h);
        }
    }

    /// The digest the client asked us to piggyback for `peer` (absent when
    /// no groups monitor the link).
    fn hash_for(&self, peer: PeerAddr) -> Option<Digest> {
        self.link_hashes.get(&peer).copied()
    }

    /// Client hook: sets the piggyback digest for one link (paper §6.1:
    /// FUSE piggybacks a 20-byte hash on overlay ping requests).
    pub fn set_link_hash(&mut self, peer: PeerAddr, hash: Option<Digest>) {
        match hash {
            Some(h) => {
                self.link_hashes.insert(peer, h);
            }
            None => {
                self.link_hashes.remove(&peer);
            }
        }
    }

    /// Whether `peer` is currently a monitored neighbor.
    pub fn is_neighbor(&self, peer: PeerAddr) -> bool {
        self.ping_timers.contains_key(&peer)
    }

    fn neighbor_dead(&mut self, io: &mut OverlayCx<'_>, peer: PeerAddr) {
        if !self.is_neighbor(peer) && !self.known.contains_key(&peer) {
            return;
        }
        self.stats.neighbors_died += 1;
        self.stop_ping(io, peer);
        self.known.remove(&peer);
        self.leaves_cw.retain(|l| l.proc != peer);
        self.leaves_ccw.retain(|l| l.proc != peer);
        for lvl in self.rtable.iter_mut() {
            for slot in lvl.iter_mut() {
                if slot.as_ref().map(|e| e.proc) == Some(peer) {
                    *slot = None;
                }
            }
        }
        io.upcall(OverlayUpcall::LinkDown { peer, died: true });
        self.repair_after_death(io);
    }

    fn repair_after_death(&mut self, io: &mut OverlayCx<'_>) {
        // Pull candidates from the extreme survivors on each leaf side and
        // refill from the passive cache.
        let mut pull: Vec<PeerAddr> = Vec::new();
        if let Some(l) = self.leaves_cw.last() {
            pull.push(l.proc);
        }
        if let Some(l) = self.leaves_ccw.last() {
            pull.push(l.proc);
        }
        for p in pull {
            io.send(
                p,
                OverlayMsg::Announce {
                    info: self.me.clone(),
                    want_reply: true,
                },
            );
        }
        let cached: Vec<NodeInfo> = self.known.values().cloned().collect();
        self.integrate_all(io, &cached);
    }

    // ---- Routing ---------------------------------------------------------

    /// Routes a client payload toward `target` (per-hop upcalls fire on
    /// intermediate nodes, `Delivered` at the target).
    pub fn route_client(
        &mut self,
        io: &mut OverlayCx<'_>,
        target: &NodeName,
        payload: Bytes,
    ) -> RouteStart {
        if *target == self.me.name {
            return RouteStart::SelfIsTarget;
        }
        match self.best_next_hop(target).cloned() {
            Some(next) => {
                io.send(
                    next.proc,
                    OverlayMsg::Routed {
                        src: self.me.clone(),
                        target: target.clone(),
                        ttl: self.cfg.route_ttl,
                        class: RoutedClass::Client as u8,
                        payload,
                        path: Vec::new(),
                    },
                );
                RouteStart::Sent { next: next.proc }
            }
            None => RouteStart::NoRoute,
        }
    }

    fn forward_routed(
        &mut self,
        io: &mut OverlayCx<'_>,
        from: PeerAddr,
        src: NodeInfo,
        target: NodeName,
        ttl: u8,
        class: u8,
        payload: Bytes,
        mut path: Vec<NodeInfo>,
    ) {
        let rclass = RoutedClass::from_u8(class);
        // Delivery at the exact target name.
        if target == self.me.name {
            self.deliver_routed(io, from, src, payload, rclass, path);
            return;
        }
        if ttl == 0 {
            self.routed_failed(io, &src, &target, class, payload);
            return;
        }
        match self.best_next_hop(&target).cloned() {
            Some(next) => {
                self.stats.forwarded += 1;
                if rclass == Some(RoutedClass::Probe) {
                    path.push(self.me.clone());
                }
                if rclass == Some(RoutedClass::Client) && src.proc != self.me.proc {
                    io.upcall(OverlayUpcall::Forwarded {
                        src: src.clone(),
                        target: target.clone(),
                        prev: from,
                        next: next.proc,
                        payload: payload.clone(),
                    });
                }
                io.send(
                    next.proc,
                    OverlayMsg::Routed {
                        src,
                        target,
                        ttl: ttl - 1,
                        class,
                        payload,
                        path,
                    },
                );
            }
            None => {
                // No node lies between us and the target: we are the owner
                // of the target's ring position.
                self.deliver_as_owner(io, src, target, class, payload, path);
            }
        }
    }

    fn deliver_routed(
        &mut self,
        io: &mut OverlayCx<'_>,
        from: PeerAddr,
        src: NodeInfo,
        payload: Bytes,
        rclass: Option<RoutedClass>,
        path: Vec<NodeInfo>,
    ) {
        match rclass {
            Some(RoutedClass::Client) => {
                io.upcall(OverlayUpcall::Delivered {
                    src,
                    prev: from,
                    payload,
                });
            }
            Some(RoutedClass::Join) => self.handle_join_request(io, payload),
            Some(RoutedClass::Probe) => {
                let mut path = path;
                path.push(self.me.clone());
                io.send(src.proc, OverlayMsg::ProbeReply { path });
            }
            None => {}
        }
    }

    fn deliver_as_owner(
        &mut self,
        io: &mut OverlayCx<'_>,
        src: NodeInfo,
        target: NodeName,
        class: u8,
        payload: Bytes,
        path: Vec<NodeInfo>,
    ) {
        match RoutedClass::from_u8(class) {
            Some(RoutedClass::Join) => self.handle_join_request(io, payload),
            Some(RoutedClass::Probe) => {
                let mut path = path;
                path.push(self.me.clone());
                io.send(src.proc, OverlayMsg::ProbeReply { path });
            }
            Some(RoutedClass::Client) | None => {
                // Client messages target an exact node; reaching the owner
                // instead means the target is gone (or tables are stale).
                self.routed_failed(io, &src, &target, class, payload);
            }
        }
    }

    fn routed_failed(
        &mut self,
        io: &mut OverlayCx<'_>,
        src: &NodeInfo,
        target: &NodeName,
        class: u8,
        payload: Bytes,
    ) {
        self.stats.route_stalls += 1;
        if src.proc == self.me.proc {
            io.upcall(OverlayUpcall::RouteStuck {
                src: src.clone(),
                target: target.clone(),
                payload,
            });
        } else {
            io.send(
                src.proc,
                OverlayMsg::RoutedError {
                    target: target.clone(),
                    at: self.me.clone(),
                    class,
                    payload,
                },
            );
        }
    }

    fn handle_join_request(&mut self, io: &mut OverlayCx<'_>, payload: Bytes) {
        let Ok(joiner) = NodeInfo::from_bytes(&payload) else {
            return;
        };
        let mut candidates: Vec<NodeInfo> = vec![self.me.clone()];
        candidates.extend(self.leaves_cw.iter().cloned());
        candidates.extend(self.leaves_ccw.iter().cloned());
        for lvl in &self.rtable {
            for e in lvl.iter().flatten() {
                candidates.push(e.clone());
            }
        }
        candidates.dedup_by_key(|c| c.proc);
        let joiner_proc = joiner.proc;
        self.integrate_all(io, &[joiner]);
        io.send(joiner_proc, OverlayMsg::JoinReply { candidates });
    }

    // ---- Event handlers (called by the node stack) -------------------------

    /// Handles an incoming overlay message.
    pub fn on_message(&mut self, io: &mut OverlayCx<'_>, from: PeerAddr, msg: OverlayMsg) {
        match msg {
            OverlayMsg::Ping { nonce, hash } => {
                io.upcall(OverlayUpcall::PingHash {
                    peer: from,
                    hash: hash.unwrap_or_else(Digest::of_empty),
                });
                let mine = self.hash_for(from);
                io.send(from, OverlayMsg::PingAck { nonce, hash: mine });
            }
            OverlayMsg::PingAck { nonce, hash } => {
                if let Some(&(expect, handle)) = self.ack_waits.get(&from) {
                    if expect == nonce {
                        io.cancel_timer(handle);
                        self.ack_waits.remove(&from);
                        self.stats.acks_received += 1;
                        io.upcall(OverlayUpcall::PingHash {
                            peer: from,
                            hash: hash.unwrap_or_else(Digest::of_empty),
                        });
                    }
                }
            }
            OverlayMsg::Routed {
                src,
                target,
                ttl,
                class,
                payload,
                path,
            } => {
                self.forward_routed(io, from, src, target, ttl, class, payload, path);
            }
            OverlayMsg::JoinReply { candidates } => {
                if let Some(h) = self.join_timer.take() {
                    io.cancel_timer(h);
                }
                let was_ready = self.ready;
                self.ready = true;
                self.integrate_all(io, &candidates);
                if !was_ready {
                    // Announce ourselves to every neighbor so both sides of
                    // each link monitor it.
                    let mut peers = self.neighbors();
                    peers.sort_unstable();
                    for p in peers {
                        io.send(
                            p,
                            OverlayMsg::Announce {
                                info: self.me.clone(),
                                want_reply: true,
                            },
                        );
                    }
                }
            }
            OverlayMsg::Announce { info, want_reply } => {
                if want_reply {
                    let mut candidates: Vec<NodeInfo> = vec![self.me.clone()];
                    candidates.extend(self.leaves_cw.iter().cloned());
                    candidates.extend(self.leaves_ccw.iter().cloned());
                    candidates.dedup_by_key(|c| c.proc);
                    io.send(info.proc, OverlayMsg::AnnounceAck { candidates });
                }
                self.integrate_all(io, &[info]);
            }
            OverlayMsg::AnnounceAck { candidates } => {
                self.integrate_all(io, &candidates);
            }
            OverlayMsg::ProbeReply { path } => {
                self.integrate_all(io, &path);
            }
            OverlayMsg::RoutedError {
                target,
                at,
                class,
                payload,
            } => {
                if RoutedClass::from_u8(class) == Some(RoutedClass::Client) {
                    io.upcall(OverlayUpcall::RouteStuck {
                        src: at,
                        target,
                        payload,
                    });
                }
            }
            OverlayMsg::Probe { nonce, hash } => {
                // Shared-plane direct probe: answer with our digest for the
                // link, and surface the prober's digest exactly like a ping
                // so reconciliation works in shared-plane mode too.
                io.upcall(OverlayUpcall::PingHash {
                    peer: from,
                    hash: hash.unwrap_or_else(Digest::of_empty),
                });
                let mine = self.hash_for(from);
                io.send(from, OverlayMsg::ProbeAck { nonce, hash: mine });
            }
            OverlayMsg::ProbeAck { nonce, hash } => {
                // Round bookkeeping (nonce matching, timeout cancellation)
                // lives in the client's failure detector, not here.
                io.upcall(OverlayUpcall::PingHash {
                    peer: from,
                    hash: hash.unwrap_or_else(Digest::of_empty),
                });
                io.upcall(OverlayUpcall::ProbeAcked {
                    peer: from,
                    nonce,
                    hash,
                });
            }
            OverlayMsg::IndirectProbe {
                origin,
                target,
                nonce,
            } => {
                if target == self.me.proc {
                    // We are the silent peer being checked: answer back
                    // through the relay that asked.
                    io.send(
                        from,
                        OverlayMsg::IndirectAck {
                            origin,
                            target,
                            nonce,
                        },
                    );
                } else {
                    // We are the relay: pass the probe on to the target.
                    io.send(
                        target,
                        OverlayMsg::IndirectProbe {
                            origin,
                            target,
                            nonce,
                        },
                    );
                }
            }
            OverlayMsg::IndirectAck {
                origin,
                target,
                nonce,
            } => {
                if origin == self.me.proc {
                    io.upcall(OverlayUpcall::ProbeAcked {
                        peer: target,
                        nonce,
                        hash: None,
                    });
                } else {
                    // We are the relay on the return leg.
                    io.send(
                        origin,
                        OverlayMsg::IndirectAck {
                            origin,
                            target,
                            nonce,
                        },
                    );
                }
            }
        }
    }

    /// Handles an overlay timer.
    pub fn on_timer(&mut self, io: &mut OverlayCx<'_>, tag: OverlayTimer) {
        match tag {
            OverlayTimer::PingDue(peer) => {
                if !self.ping_timers.contains_key(&peer) {
                    return;
                }
                self.next_nonce += 1;
                let nonce = self.next_nonce;
                let hash = self.hash_for(peer);
                io.send(peer, OverlayMsg::Ping { nonce, hash });
                self.stats.pings_sent += 1;
                // One outstanding ack wait per peer; re-arm replaces.
                if let Some((_, old)) = self.ack_waits.remove(&peer) {
                    io.cancel_timer(old);
                }
                let t = io.set_timer(
                    self.cfg.ping_timeout,
                    OverlayTimer::AckTimeout { peer, nonce },
                );
                self.ack_waits.insert(peer, (nonce, t));
                let h = io.set_timer(self.cfg.ping_period, OverlayTimer::PingDue(peer));
                self.ping_timers.insert(peer, h);
            }
            OverlayTimer::AckTimeout { peer, nonce } => {
                if let Some(&(expect, _)) = self.ack_waits.get(&peer) {
                    if expect == nonce {
                        self.ack_waits.remove(&peer);
                        self.neighbor_dead(io, peer);
                    }
                }
            }
            OverlayTimer::JoinRetry => {
                if !self.ready && self.join_attempts < 8 {
                    self.send_join(io);
                }
            }
            OverlayTimer::Maintenance => {
                if self.ready {
                    self.send_probe(io);
                }
                io.set_timer(self.cfg.maintenance_period, OverlayTimer::Maintenance);
            }
        }
    }

    /// Handles a transport-level broken connection.
    pub fn on_link_broken(&mut self, io: &mut OverlayCx<'_>, peer: PeerAddr) {
        if self.is_neighbor(peer) {
            self.neighbor_dead(io, peer);
        }
    }

    fn send_probe(&mut self, io: &mut OverlayCx<'_>) {
        // Probe toward a uniformly random ring position; hop path infos
        // opportunistically refresh tables along the way and at the source.
        let point: u64 = io.rng().gen();
        let target = NodeName(format!("probe-{point:016x}"));
        if let Some(next) = self.best_next_hop(&target).cloned() {
            self.stats.probes_sent += 1;
            io.send(
                next.proc,
                OverlayMsg::Routed {
                    src: self.me.clone(),
                    target,
                    ttl: self.cfg.route_ttl,
                    class: RoutedClass::Probe as u8,
                    payload: Bytes::new(),
                    path: vec![self.me.clone()],
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::OverlayEffect;
    use fuse_util::{KeyedTimers, Time};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::VecDeque;

    /// Scratch driver state that records effects without a kernel: each
    /// call runs under a fresh [`OverlayCx`] and the emitted effects are
    /// drained into `sent`/`timers` afterwards.
    struct TestIo {
        now: Time,
        rng: StdRng,
        keyed: KeyedTimers<OverlayTimer>,
        effects: VecDeque<OverlayEffect>,
        sent: Vec<(PeerAddr, OverlayMsg)>,
        upcalls: Vec<OverlayUpcall>,
        timers: Vec<(Duration, TimerKey)>,
    }

    impl TestIo {
        fn new() -> Self {
            TestIo {
                now: Time::ZERO,
                rng: StdRng::seed_from_u64(5),
                keyed: KeyedTimers::new(0),
                effects: VecDeque::new(),
                sent: Vec::new(),
                upcalls: Vec::new(),
                timers: Vec::new(),
            }
        }

        /// Runs one node entry point under a context, then drains effects.
        fn with<R>(&mut self, f: impl FnOnce(&mut OverlayCx<'_>) -> R) -> R {
            let mut cx = OverlayCx::new(
                self.now,
                &mut self.rng,
                &mut self.keyed,
                &mut self.effects,
                &mut self.upcalls,
            );
            let r = f(&mut cx);
            while let Some(e) = self.effects.pop_front() {
                match e {
                    OverlayEffect::Send { to, msg } => self.sent.push((to, msg)),
                    OverlayEffect::SetTimer { key, after } => self.timers.push((after, key)),
                    OverlayEffect::CancelTimer { .. } => {}
                }
            }
            r
        }

        fn boot(&mut self, n: &mut OverlayNode) {
            self.with(|cx| n.boot(cx));
        }

        fn integrate_all(&mut self, n: &mut OverlayNode, cands: &[NodeInfo]) {
            self.with(|cx| n.integrate_all(cx, cands));
        }

        fn on_message(&mut self, n: &mut OverlayNode, from: PeerAddr, msg: OverlayMsg) {
            self.with(|cx| n.on_message(cx, from, msg));
        }

        fn on_timer(&mut self, n: &mut OverlayNode, tag: OverlayTimer) {
            self.with(|cx| n.on_timer(cx, tag));
        }

        fn on_link_broken(&mut self, n: &mut OverlayNode, peer: PeerAddr) {
            self.with(|cx| n.on_link_broken(cx, peer));
        }

        fn route_client(
            &mut self,
            n: &mut OverlayNode,
            target: &NodeName,
            payload: Bytes,
        ) -> RouteStart {
            self.with(|cx| n.route_client(cx, target, payload))
        }
    }

    fn info(i: usize) -> NodeInfo {
        NodeInfo::new(i as PeerAddr, NodeName::numbered(i))
    }

    fn node_with(me: usize, others: &[usize]) -> (OverlayNode, TestIo) {
        let mut n = OverlayNode::new(info(me), None, OverlayConfig::default());
        let mut io = TestIo::new();
        io.boot(&mut n);
        let cands: Vec<NodeInfo> = others.iter().map(|&i| info(i)).collect();
        io.integrate_all(&mut n, &cands);
        (n, io)
    }

    #[test]
    fn leaf_set_keeps_nearest_per_side() {
        let (n, _io) = node_with(50, &[10, 20, 30, 40, 45, 49, 51, 55, 60, 70, 80, 90]);
        let (cw, ccw) = n.leaf_set();
        // Clockwise from node-000050: 51, 55, 60, 70, 80, 90, then wrap 10...
        assert_eq!(cw[0].proc, 51);
        assert_eq!(cw[1].proc, 55);
        // Counterclockwise: 49, 45, 40...
        assert_eq!(ccw[0].proc, 49);
        assert_eq!(ccw[1].proc, 45);
        assert!(cw.len() <= 8 && ccw.len() <= 8);
    }

    #[test]
    fn leaf_set_evicts_farthest_when_full() {
        let others: Vec<usize> = (51..75).collect();
        let (n, _io) = node_with(50, &others);
        let (cw, _) = n.leaf_set();
        assert_eq!(cw.len(), 8);
        assert_eq!(cw[0].proc, 51);
        assert_eq!(cw[7].proc, 58);
    }

    #[test]
    fn next_hop_makes_clockwise_progress_without_overshoot() {
        let (n, _io) = node_with(10, &[20, 30, 40, 60, 80]);
        // Route to 65: furthest candidate ≤ 65 is 60.
        let hop = n.next_hop(&NodeName::numbered(65)).unwrap();
        assert_eq!(hop, 60);
        // Route to 25: furthest ≤ 25 is 20.
        assert_eq!(n.next_hop(&NodeName::numbered(25)).unwrap(), 20);
        // Route to own name: we are the target.
        let me_name = n.name().clone();
        assert_eq!(n.next_hop(&me_name), None);
    }

    #[test]
    fn exact_target_is_chosen_when_present() {
        let (n, _io) = node_with(10, &[20, 30, 40]);
        assert_eq!(n.next_hop(&NodeName::numbered(30)).unwrap(), 30);
    }

    #[test]
    fn ping_carries_pushed_link_hash() {
        let (mut n, mut io) = node_with(10, &[20]);
        let h = fuse_wire::sha1(b"groups-on-link");
        n.set_link_hash(20, Some(h));
        io.on_timer(&mut n, OverlayTimer::PingDue(20));
        let ping = io
            .sent
            .iter()
            .find_map(|(to, m)| match m {
                OverlayMsg::Ping { hash, .. } if *to == 20 => Some(*hash),
                _ => None,
            })
            .expect("ping sent");
        assert_eq!(ping, Some(h));
    }

    #[test]
    fn probe_is_acked_with_responder_digest() {
        let (mut n, mut io) = node_with(10, &[20]);
        let h = fuse_wire::sha1(b"my-links");
        n.set_link_hash(20, Some(h));
        io.on_message(
            &mut n,
            20,
            OverlayMsg::Probe {
                nonce: 9,
                hash: None,
            },
        );
        assert!(matches!(
            io.sent.last(),
            Some((20, OverlayMsg::ProbeAck { nonce: 9, hash: Some(got) })) if *got == h
        ));
        // The prober's digest surfaces exactly like a ping's, so digest
        // reconciliation keeps working in shared-plane mode.
        assert!(io
            .upcalls
            .iter()
            .any(|u| matches!(u, OverlayUpcall::PingHash { peer: 20, .. })));
    }

    #[test]
    fn probe_ack_upcalls_probe_acked_and_hash() {
        let (mut n, mut io) = node_with(10, &[20]);
        let h = fuse_wire::sha1(b"their-links");
        io.on_message(
            &mut n,
            20,
            OverlayMsg::ProbeAck {
                nonce: 4,
                hash: Some(h),
            },
        );
        assert!(io.upcalls.iter().any(|u| matches!(
            u,
            OverlayUpcall::ProbeAcked {
                peer: 20,
                nonce: 4,
                hash: Some(got)
            } if *got == h
        )));
        assert!(io
            .upcalls
            .iter()
            .any(|u| matches!(u, OverlayUpcall::PingHash { peer: 20, hash: got } if *got == h)));
    }

    #[test]
    fn indirect_probe_travels_relay_target_relay_origin() {
        // Origin 10 asked relay 15 to check target 20. Walk the message
        // through each role's handler.
        let probe = OverlayMsg::IndirectProbe {
            origin: 10,
            target: 20,
            nonce: 6,
        };
        // Relay forwards the probe to the target.
        let (mut relay, mut io_r) = node_with(15, &[10, 20]);
        io_r.on_message(&mut relay, 10, probe.clone());
        assert_eq!(io_r.sent.last(), Some(&(20, probe.clone())));
        // Target answers back through the relay.
        let (mut target, mut io_t) = node_with(20, &[15]);
        io_t.on_message(&mut target, 15, probe);
        let ack = OverlayMsg::IndirectAck {
            origin: 10,
            target: 20,
            nonce: 6,
        };
        assert_eq!(io_t.sent.last(), Some(&(15, ack.clone())));
        // Relay forwards the ack to the origin.
        io_r.sent.clear();
        io_r.on_message(&mut relay, 20, ack.clone());
        assert_eq!(io_r.sent.last(), Some(&(10, ack.clone())));
        // Origin surfaces the ack to its detector, with no digest.
        let (mut origin, mut io_o) = node_with(10, &[15, 20]);
        io_o.on_message(&mut origin, 15, ack);
        assert!(io_o.upcalls.iter().any(|u| matches!(
            u,
            OverlayUpcall::ProbeAcked {
                peer: 20,
                nonce: 6,
                hash: None
            }
        )));
    }

    #[test]
    fn ping_ack_roundtrip_upcalls_hash_on_both_sides() {
        let (mut a, mut io_a) = node_with(10, &[20]);
        let (mut b, mut io_b) = node_with(20, &[10]);
        io_a.on_timer(&mut a, OverlayTimer::PingDue(20));
        let (_, ping) = io_a.sent.pop().expect("ping");
        io_b.on_message(&mut b, 10, ping);
        assert!(matches!(
            io_b.upcalls.last(),
            Some(OverlayUpcall::PingHash { peer: 10, .. })
        ));
        let (_, ack) = io_b.sent.pop().expect("ack");
        io_a.on_message(&mut a, 20, ack);
        assert!(matches!(
            io_a.upcalls.last(),
            Some(OverlayUpcall::PingHash { peer: 20, .. })
        ));
        assert_eq!(a.stats.acks_received, 1);
    }

    #[test]
    fn ack_timeout_kills_neighbor_and_upcalls_linkdown() {
        let (mut n, mut io) = node_with(10, &[20, 30]);
        io.on_timer(&mut n, OverlayTimer::PingDue(20));
        // Find the nonce from the ack wait.
        let nonce = n.ack_waits.get(&20).unwrap().0;
        io.on_timer(&mut n, OverlayTimer::AckTimeout { peer: 20, nonce });
        assert!(!n.is_neighbor(20));
        assert!(io.upcalls.iter().any(|u| matches!(
            u,
            OverlayUpcall::LinkDown {
                peer: 20,
                died: true
            }
        )));
        assert_eq!(n.stats.neighbors_died, 1);
        // 30 survives.
        assert!(n.is_neighbor(30));
    }

    #[test]
    fn stale_ack_timeout_is_ignored_after_ack() {
        let (mut a, mut io_a) = node_with(10, &[20]);
        let (mut b, mut io_b) = node_with(20, &[10]);
        io_a.on_timer(&mut a, OverlayTimer::PingDue(20));
        let (_, ping) = io_a.sent.pop().unwrap();
        let nonce = match &ping {
            OverlayMsg::Ping { nonce, .. } => *nonce,
            _ => unreachable!(),
        };
        io_b.on_message(&mut b, 10, ping);
        let (_, ack) = io_b.sent.pop().unwrap();
        io_a.on_message(&mut a, 20, ack);
        io_a.on_timer(&mut a, OverlayTimer::AckTimeout { peer: 20, nonce });
        assert!(a.is_neighbor(20), "timeout after ack must be a no-op");
    }

    #[test]
    fn transport_break_kills_neighbor() {
        let (mut n, mut io) = node_with(10, &[20]);
        io.on_link_broken(&mut n, 20);
        assert!(!n.is_neighbor(20));
        assert!(!n.neighbors().contains(&20));
    }

    #[test]
    fn route_client_from_source() {
        let (mut n, mut io) = node_with(10, &[20, 30]);
        let r = io.route_client(&mut n, &NodeName::numbered(30), Bytes::from_static(b"x"));
        assert_eq!(r, RouteStart::Sent { next: 30 });
        assert!(matches!(
            io.sent.last(),
            Some((30, OverlayMsg::Routed { .. }))
        ));
        let r2 = io.route_client(&mut n, &NodeName::numbered(10), Bytes::from_static(b"x"));
        assert_eq!(r2, RouteStart::SelfIsTarget);
    }

    #[test]
    fn forwarding_emits_per_hop_upcall() {
        let (mut n, mut io) = node_with(20, &[30, 40]);
        let src = info(10);
        io.on_message(
            &mut n,
            10,
            OverlayMsg::Routed {
                src: src.clone(),
                target: NodeName::numbered(40),
                ttl: 8,
                class: RoutedClass::Client as u8,
                payload: Bytes::from_static(b"ic"),
                path: vec![],
            },
        );
        let fwd = io
            .upcalls
            .iter()
            .find_map(|u| match u {
                OverlayUpcall::Forwarded { prev, next, .. } => Some((*prev, *next)),
                _ => None,
            })
            .expect("per-hop upcall");
        assert_eq!(fwd, (10, 40));
    }

    #[test]
    fn delivery_at_exact_target_upcalls() {
        let (mut n, mut io) = node_with(40, &[10]);
        io.on_message(
            &mut n,
            10,
            OverlayMsg::Routed {
                src: info(10),
                target: NodeName::numbered(40),
                ttl: 8,
                class: RoutedClass::Client as u8,
                payload: Bytes::from_static(b"ic"),
                path: vec![],
            },
        );
        assert!(matches!(
            io.upcalls.last(),
            Some(OverlayUpcall::Delivered { .. })
        ));
    }

    #[test]
    fn owner_reports_unreachable_client_target() {
        // Node 20 knows 10 and 30; target 25 is absent — 20 is the owner of
        // that arc and must return a RoutedError to the source.
        let (mut n, mut io) = node_with(20, &[10, 30]);
        io.on_message(
            &mut n,
            10,
            OverlayMsg::Routed {
                src: info(10),
                target: NodeName::numbered(21),
                ttl: 8,
                class: RoutedClass::Client as u8,
                payload: Bytes::from_static(b"ic"),
                path: vec![],
            },
        );
        assert!(matches!(
            io.sent.last(),
            Some((10, OverlayMsg::RoutedError { .. }))
        ));
    }

    #[test]
    fn join_reply_marks_ready_and_announces() {
        let mut n = OverlayNode::new(info(5), Some(0), OverlayConfig::default());
        let mut io = TestIo::new();
        io.boot(&mut n);
        assert!(!n.is_ready());
        assert!(matches!(
            io.sent.last(),
            Some((0, OverlayMsg::Routed { .. }))
        ));
        io.on_message(
            &mut n,
            0,
            OverlayMsg::JoinReply {
                candidates: vec![info(0), info(10), info(90)],
            },
        );
        assert!(n.is_ready());
        let announced: Vec<PeerAddr> = io
            .sent
            .iter()
            .filter_map(|(to, m)| match m {
                OverlayMsg::Announce { .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert!(announced.contains(&0));
        assert!(announced.contains(&10));
        assert!(announced.contains(&90));
    }

    #[test]
    fn eviction_emits_non_fatal_linkdown() {
        // Fill both leaf sides with far nodes, then insert strictly closer
        // nodes on both sides: the far nodes leave both leaf sets, and any
        // that hold no routing-table slot must produce
        // LinkDown { died: false }.
        let others: Vec<usize> = (600..640).collect();
        let (mut n, mut io) = node_with(500, &others);
        io.upcalls.clear();
        let close: Vec<NodeInfo> = (501..509).chain(492..500).map(info).collect();
        io.integrate_all(&mut n, &close);
        let evicted: Vec<PeerAddr> = io
            .upcalls
            .iter()
            .filter_map(|u| match u {
                OverlayUpcall::LinkDown { peer, died: false } => Some(*peer),
                _ => None,
            })
            .collect();
        assert!(!evicted.is_empty(), "someone must have been evicted");
        // Evicted nodes stay in the candidate cache (alive, just not
        // monitored) and are truly out of the monitored set.
        for p in evicted {
            assert!(n.known.contains_key(&p));
            assert!(!n.neighbors().contains(&p));
        }
    }

    #[test]
    fn probe_records_path_and_reply_integrates() {
        let (mut n, mut io) = node_with(20, &[40]);
        // A probe for a point owned by 40's arc passes through.
        io.on_message(
            &mut n,
            10,
            OverlayMsg::Routed {
                src: info(10),
                target: NodeName::numbered(45),
                ttl: 8,
                class: RoutedClass::Probe as u8,
                payload: Bytes::new(),
                path: vec![info(10)],
            },
        );
        match io.sent.last() {
            Some((40, OverlayMsg::Routed { path, .. })) => {
                assert_eq!(path.len(), 2, "hop must append itself");
                assert_eq!(path[1].proc, 20);
            }
            other => panic!("expected forwarded probe, got {other:?}"),
        }
        // Probe replies integrate unknown nodes.
        let before = n.neighbors().len();
        io.on_message(
            &mut n,
            10,
            OverlayMsg::ProbeReply {
                path: vec![info(21), info(22)],
            },
        );
        assert!(n.neighbors().len() > before);
    }
}
