//! SkipNet-style scalable overlay network.
//!
//! The paper implements FUSE on top of SkipNet (§6) and needs exactly two
//! features from it: "messages routed through the overlay result in a client
//! upcall on every intermediate overlay hop, and the overlay routing table is
//! visible to the client" (§6.1). This crate rebuilds the parts of SkipNet
//! that FUSE exercises:
//!
//! * a lexicographically ordered **name ring** with a leaf set of the 16
//!   nearest ring neighbors (8 per side),
//! * a base-8 **numeric-prefix routing table** giving O(log n) routes,
//! * **join**, failure repair and opportunistic table maintenance,
//! * **liveness pinging** of every routing-table neighbor (60 s period, 20 s
//!   timeout, as configured in §7.1) with a pluggable piggyback digest on
//!   every ping and ack — the hook FUSE uses to share liveness traffic
//!   across all groups (§6.3),
//! * per-hop **upcalls** for routed client payloads, and routing-table
//!   visibility through [`OverlayNode::neighbors`]/[`OverlayNode::next_hop`].
//!
//! The overlay is sans-io: every entry point takes an [`OverlayCx`] and all
//! side effects leave as [`OverlayEffect`]s/[`OverlayUpcall`]s for the
//! embedding stack (`fuse_core::FuseStack`) to translate. This crate has no
//! dependency on any driver — neither the simulation kernel nor sockets.

pub mod config;
pub mod id;
pub mod io;
pub mod messages;
pub mod node;
pub mod oracle;

pub use config::OverlayConfig;
pub use id::{NodeInfo, NodeName, NumericId};
pub use io::{OverlayCx, OverlayEffect, OverlayTimer, OverlayUpcall};
pub use messages::OverlayMsg;
pub use node::OverlayNode;
pub use oracle::build_oracle_tables;
