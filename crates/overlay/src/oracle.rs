//! Oracle table construction for large-scale experiments.
//!
//! The paper's simulator builds 16,000-node overlays; simulating 16,000
//! message-by-message joins would dominate run time without adding fidelity
//! to the experiments that use such overlays (Figures 7–8 and the SV-tree
//! census measure steady-state behaviour, not joins). The oracle computes,
//! from global membership, exactly the tables a converged join protocol
//! produces: leaf sets of ring neighbors and per-level numeric-prefix
//! routing entries. Protocol-driven joins remain the default for smaller
//! experiments (and are what the churn experiment of Figure 10 measures);
//! a test asserts that oracle tables and protocol-built tables route
//! messages equally well.

use fuse_util::DetHashMap;

use crate::config::OverlayConfig;
use crate::id::{NodeInfo, NumericId};

/// Per-node tables: `(leaves_cw, leaves_ccw, rtable)`.
pub type OracleTables = (Vec<NodeInfo>, Vec<NodeInfo>, Vec<[Option<NodeInfo>; 2]>);

/// Builds converged tables for every node in `members`.
///
/// Names must be unique. Complexity O(levels · n log n).
pub fn build_oracle_tables(members: &[NodeInfo], cfg: &OverlayConfig) -> Vec<OracleTables> {
    let n = members.len();
    assert!(n >= 1);
    // Global ring order.
    let mut ring: Vec<usize> = (0..n).collect();
    ring.sort_by(|&a, &b| members[a].name.cmp(&members[b].name));
    for w in ring.windows(2) {
        assert_ne!(
            members[w[0]].name, members[w[1]].name,
            "duplicate overlay names"
        );
    }
    // Position of each member in ring order.
    let mut pos = vec![0usize; n];
    for (p, &m) in ring.iter().enumerate() {
        pos[m] = p;
    }
    let numerics: Vec<NumericId> = members.iter().map(|m| m.numeric()).collect();

    // Prefix buckets per level: ring positions of members sharing the first
    // `level` digits, in ring order.
    let mut out: Vec<OracleTables> = Vec::with_capacity(n);
    let mut level_buckets: Vec<DetHashMap<Vec<u8>, Vec<usize>>> =
        Vec::with_capacity(cfg.max_levels);
    for level in 0..cfg.max_levels {
        let mut buckets: DetHashMap<Vec<u8>, Vec<usize>> = DetHashMap::default();
        for &m in &ring {
            let key: Vec<u8> = (0..level).map(|d| numerics[m].digit(d)).collect();
            buckets.entry(key).or_default().push(pos[m]);
        }
        level_buckets.push(buckets);
    }

    for m in 0..n {
        let p = pos[m];
        // Leaf sets: nearest ring neighbors each side.
        let mut cw = Vec::with_capacity(cfg.leaf_side);
        let mut ccw = Vec::with_capacity(cfg.leaf_side);
        for k in 1..=cfg.leaf_side.min(n.saturating_sub(1)) {
            cw.push(members[ring[(p + k) % n]].clone());
            ccw.push(members[ring[(p + n - k) % n]].clone());
        }
        // Routing table: nearest same-prefix node per side per level.
        let mut rtable: Vec<[Option<NodeInfo>; 2]> = vec![[None, None]; cfg.max_levels];
        for (level, buckets) in level_buckets.iter().enumerate() {
            let key: Vec<u8> = (0..level).map(|d| numerics[m].digit(d)).collect();
            let bucket = &buckets[&key];
            if bucket.len() < 2 {
                continue;
            }
            // `bucket` holds ring positions sorted ascending; find self.
            let i = bucket.binary_search(&p).expect("self in own bucket");
            let cw_pos = bucket[(i + 1) % bucket.len()];
            let ccw_pos = bucket[(i + bucket.len() - 1) % bucket.len()];
            rtable[level][1] = Some(members[ring[cw_pos]].clone());
            rtable[level][0] = Some(members[ring[ccw_pos]].clone());
        }
        out.push((cw, ccw, rtable));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{NodeInfo, NodeName};
    use crate::node::OverlayNode;

    fn members(n: usize) -> Vec<NodeInfo> {
        (0..n)
            .map(|i| NodeInfo::new(i as u32, NodeName::numbered(i)))
            .collect()
    }

    #[test]
    fn leaf_sets_are_ring_neighbors() {
        let m = members(32);
        let cfg = OverlayConfig::default();
        let tables = build_oracle_tables(&m, &cfg);
        let (cw, ccw, _) = &tables[0];
        assert_eq!(cw[0].proc, 1);
        assert_eq!(cw[7].proc, 8);
        assert_eq!(ccw[0].proc, 31, "wraps around the ring");
        assert_eq!(ccw[7].proc, 24);
    }

    #[test]
    fn rtable_entries_share_prefixes() {
        let m = members(256);
        let cfg = OverlayConfig::default();
        let tables = build_oracle_tables(&m, &cfg);
        for (i, (_, _, rt)) in tables.iter().enumerate() {
            let mine = m[i].numeric();
            for (level, slots) in rt.iter().enumerate() {
                for e in slots.iter().flatten() {
                    assert!(
                        e.numeric().common_prefix(&mine) >= level,
                        "level {level} entry must share {level} digits"
                    );
                    assert_ne!(e.proc, m[i].proc);
                }
            }
        }
    }

    #[test]
    fn small_rings_have_complete_leaf_sets() {
        let m = members(5);
        let cfg = OverlayConfig::default();
        let tables = build_oracle_tables(&m, &cfg);
        for (cw, ccw, _) in &tables {
            assert_eq!(cw.len(), 4, "everyone else, once");
            assert_eq!(ccw.len(), 4);
        }
    }

    #[test]
    fn singleton_ring_is_empty() {
        let m = members(1);
        let cfg = OverlayConfig::default();
        let tables = build_oracle_tables(&m, &cfg);
        assert!(tables[0].0.is_empty());
        assert!(tables[0].2.iter().all(|s| s[0].is_none() && s[1].is_none()));
    }

    #[test]
    fn oracle_routes_reach_exact_targets_in_logarithmic_hops() {
        // Static routing check without a kernel: walk next_hop() node to
        // node and count hops.
        let m = members(512);
        let cfg = OverlayConfig::default();
        let tables = build_oracle_tables(&m, &cfg);
        let nodes: Vec<OverlayNode> = m
            .iter()
            .zip(tables)
            .map(|(info, (cw, ccw, rt))| {
                let mut n = OverlayNode::new(info.clone(), None, cfg.clone());
                n.preload_tables(cw, ccw, rt);
                n
            })
            .collect();
        let mut total_hops = 0usize;
        let mut max_hops = 0usize;
        let mut routes = 0usize;
        for s in (0..512).step_by(37) {
            for t in (0..512).step_by(29) {
                if s == t {
                    continue;
                }
                let target = m[t].name.clone();
                let mut cur = s;
                let mut hops = 0;
                while cur != t {
                    let next = nodes[cur]
                        .next_hop(&target)
                        .unwrap_or_else(|| panic!("stuck at {cur} toward {t}"));
                    cur = next as usize;
                    hops += 1;
                    assert!(hops <= 64, "routing loop {s}->{t}");
                }
                total_hops += hops;
                max_hops = max_hops.max(hops);
                routes += 1;
            }
        }
        let avg = total_hops as f64 / routes as f64;
        // Two pointers per level at base 8: expected ~(b/2)·log_b(n) hops,
        // i.e. ~12 worst-case for n=512, much less on average thanks to the
        // 16-entry leaf set.
        assert!(avg <= 8.0, "avg hops {avg} too high");
        assert!(max_hops <= 20, "max hops {max_hops} too high");
    }

    #[test]
    #[should_panic(expected = "duplicate overlay names")]
    fn duplicate_names_rejected() {
        let mut m = members(4);
        m[3].name = m[0].name.clone();
        build_oracle_tables(&m, &OverlayConfig::default());
    }
}
