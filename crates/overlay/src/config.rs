//! Overlay configuration.

use fuse_util::Duration as SimDuration;

/// Tunables for the overlay, defaulting to the paper's configuration (§7.1):
/// 60 s ping period, 20 s ping timeout, base 8, leaf set of size 16.
#[derive(Debug, Clone)]
pub struct OverlayConfig {
    /// Liveness ping period per neighbor.
    pub ping_period: SimDuration,
    /// Time to wait for a ping acknowledgment before declaring the neighbor
    /// dead.
    pub ping_timeout: SimDuration,
    /// Leaf-set entries per side (paper: 8 per side, 16 total).
    pub leaf_side: usize,
    /// Period of background table-maintenance probes to random names.
    pub maintenance_period: SimDuration,
    /// TTL for routed messages (loop guard).
    pub route_ttl: u8,
    /// Join retry timeout.
    pub join_timeout: SimDuration,
    /// Maximum numeric-ID levels used for routing-table construction.
    pub max_levels: usize,
    /// Capacity of the passive candidate cache.
    pub candidate_cache: usize,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            ping_period: SimDuration::from_secs(60),
            ping_timeout: SimDuration::from_secs(20),
            leaf_side: 8,
            maintenance_period: SimDuration::from_secs(120),
            route_ttl: 64,
            join_timeout: SimDuration::from_secs(10),
            max_levels: 8,
            candidate_cache: 256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_parameters() {
        let c = OverlayConfig::default();
        assert_eq!(c.ping_period, SimDuration::from_secs(60));
        assert_eq!(c.ping_timeout, SimDuration::from_secs(20));
        assert_eq!(c.leaf_side * 2, 16);
    }
}
