//! Differential encode tests for overlay messages: single-pass output
//! (exact `size_hint`, `EncodeBuf`) bit-identical to the two-pass reference
//! for proptest-generated messages of every variant, including the
//! piggyback ping the steady state lives on.

use bytes::Bytes;
use fuse_overlay::{NodeInfo, NodeName, OverlayMsg};
use fuse_wire::codec::twopass;
use fuse_wire::{sha1, Decode, Encode, EncodeBuf};
use proptest::prelude::*;

fn arb_info() -> impl Strategy<Value = NodeInfo> {
    (any::<u32>(), 0usize..100_000)
        .prop_map(|(proc, name)| NodeInfo::new(proc, NodeName::numbered(name)))
}

fn arb_hash() -> impl Strategy<Value = Option<fuse_wire::Digest>> {
    prop::option::of(prop::collection::vec(any::<u8>(), 0..32).prop_map(|v| sha1(&v)))
}

fn arb_msg() -> impl Strategy<Value = OverlayMsg> {
    prop_oneof![
        (any::<u64>(), arb_hash()).prop_map(|(nonce, hash)| OverlayMsg::Ping { nonce, hash }),
        (any::<u64>(), arb_hash()).prop_map(|(nonce, hash)| OverlayMsg::PingAck { nonce, hash }),
        (
            arb_info(),
            0usize..100_000,
            any::<u8>(),
            0u8..3,
            prop::collection::vec(any::<u8>(), 0..64),
            prop::collection::vec(arb_info(), 0..6),
        )
            .prop_map(
                |(src, target, ttl, class, payload, path)| OverlayMsg::Routed {
                    src,
                    target: NodeName::numbered(target),
                    ttl,
                    class,
                    payload: Bytes::from(payload),
                    path,
                }
            ),
        prop::collection::vec(arb_info(), 0..8)
            .prop_map(|candidates| OverlayMsg::JoinReply { candidates }),
        (arb_info(), any::<bool>())
            .prop_map(|(info, want_reply)| OverlayMsg::Announce { info, want_reply }),
        prop::collection::vec(arb_info(), 0..8)
            .prop_map(|candidates| OverlayMsg::AnnounceAck { candidates }),
        prop::collection::vec(arb_info(), 0..8).prop_map(|path| OverlayMsg::ProbeReply { path }),
        (
            0usize..100_000,
            arb_info(),
            any::<u8>(),
            prop::collection::vec(any::<u8>(), 0..64),
        )
            .prop_map(|(target, at, class, payload)| OverlayMsg::RoutedError {
                target: NodeName::numbered(target),
                at,
                class,
                payload: Bytes::from(payload),
            }),
    ]
}

proptest! {
    /// Every OverlayMsg variant: two-pass == single-pass == EncodeBuf,
    /// hints exact, decode round-trips.
    #[test]
    fn overlay_msg_single_pass_equals_two_pass(msg in arb_msg()) {
        let single = msg.to_bytes();
        prop_assert_eq!(&single[..], &twopass::to_bytes(&msg)[..]);
        prop_assert_eq!(single.len(), twopass::counted_size(&msg));
        prop_assert_eq!(msg.size_hint(), single.len(), "size_hint must be exact");
        let mut buf = EncodeBuf::new();
        prop_assert_eq!(buf.encode(&msg), &single[..]);
        prop_assert_eq!(OverlayMsg::from_bytes(&single).unwrap(), msg);
    }
}
