//! Property tests for the overlay's ring geometry and routing: the
//! invariants greedy routing's termination proof rests on.

use fuse_overlay::id::{closer_clockwise, further_clockwise, NodeName};
use fuse_overlay::{build_oracle_tables, NodeInfo, OverlayConfig, OverlayNode};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = NodeName> {
    "[a-z]{1,6}".prop_map(NodeName)
}

proptest! {
    /// Exactly one of "x inside (a→b]" / "x inside (b→a]" holds for
    /// distinct points — the arcs partition the ring.
    #[test]
    fn arcs_partition_the_ring(a in name_strategy(), b in name_strategy(), x in name_strategy()) {
        prop_assume!(a != b && x != a && x != b);
        let in_ab = a.arc_contains(&b, &x);
        let in_ba = b.arc_contains(&a, &x);
        prop_assert!(in_ab ^ in_ba, "x must be in exactly one arc");
    }

    /// The arc endpoints behave as (open, closed].
    #[test]
    fn arc_endpoint_conventions(a in name_strategy(), b in name_strategy()) {
        prop_assume!(a != b);
        prop_assert!(!a.arc_contains(&b, &a), "start excluded");
        prop_assert!(a.arc_contains(&b, &b), "end included");
    }

    /// `further_clockwise` is a strict total order on the arc from any
    /// viewpoint: antisymmetric and (with closer_clockwise) consistent.
    #[test]
    fn clockwise_orders_are_antisymmetric(from in name_strategy(), a in name_strategy(), b in name_strategy()) {
        prop_assume!(a != b && a != from && b != from);
        prop_assert!(further_clockwise(&from, &a, &b) ^ further_clockwise(&from, &b, &a));
        prop_assert_eq!(
            closer_clockwise(&from, &a, &b),
            further_clockwise(&from, &b, &a)
        );
    }

    /// Greedy routing over oracle tables always terminates at the exact
    /// target, within the TTL used by the protocol.
    #[test]
    fn greedy_routing_terminates_at_target(n in 4usize..128, src in any::<prop::sample::Index>(), dst in any::<prop::sample::Index>()) {
        let infos: Vec<NodeInfo> = (0..n)
            .map(|i| NodeInfo::new(i as u32, NodeName::numbered(i)))
            .collect();
        let cfg = OverlayConfig::default();
        let tables = build_oracle_tables(&infos, &cfg);
        let nodes: Vec<OverlayNode> = infos
            .iter()
            .zip(tables)
            .map(|(info, (cw, ccw, rt))| {
                let mut node = OverlayNode::new(info.clone(), None, cfg.clone());
                node.preload_tables(cw, ccw, rt);
                node
            })
            .collect();
        let s = src.index(n);
        let t = dst.index(n);
        prop_assume!(s != t);
        let target = infos[t].name.clone();
        let mut cur = s;
        let mut hops = 0;
        while cur != t {
            let next = nodes[cur].next_hop(&target);
            prop_assert!(next.is_some(), "stuck at {} toward {}", cur, t);
            cur = next.unwrap() as usize;
            hops += 1;
            prop_assert!(hops <= 64, "routing loop {} -> {}", s, t);
        }
    }

    /// Every oracle leaf set lists nearest-first (strictly monotone in ring
    /// distance) and the two sides never contain the node itself.
    #[test]
    fn oracle_leaf_sets_are_sorted_by_ring_distance(n in 2usize..64, who in any::<prop::sample::Index>()) {
        let infos: Vec<NodeInfo> = (0..n)
            .map(|i| NodeInfo::new(i as u32, NodeName::numbered(i)))
            .collect();
        let cfg = OverlayConfig::default();
        let tables = build_oracle_tables(&infos, &cfg);
        let w = who.index(n);
        let me = &infos[w].name;
        let (cw, ccw, _) = &tables[w];
        for win in cw.windows(2) {
            prop_assert!(closer_clockwise(me, &win[0].name, &win[1].name));
        }
        for leaf in cw.iter().chain(ccw.iter()) {
            prop_assert!(leaf.proc != w as u32);
        }
    }
}
