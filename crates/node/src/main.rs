//! `fuse-node`: a real-socket deployment of the sans-io FUSE stack.
//!
//! One OS process per FUSE node, `std::net` TCP for transport, and the
//! exact same [`fuse_core::FuseStack`] state machine the simulator drives —
//! no `#[cfg]`, no trait indirection, the identical compiled code. The
//! driver's whole job is the translation at the edges:
//!
//! * **Inbound**: a listener thread accepts connections; per-connection
//!   reader threads parse length-prefixed frames into
//!   [`fuse_core::StackMsg`]s and forward them to the single stack thread
//!   as [`fuse_core::Input::Message`]. A reader hitting EOF or an error
//!   reports [`fuse_core::Input::LinkBroken`] — a crashed peer's closed
//!   sockets are what makes crash detection fast over TCP.
//! * **Outbound**: per-peer writer threads own one lazily-(re)connected
//!   `TcpStream` each. A send that cannot be delivered after a bounded
//!   reconnect loop also surfaces as `LinkBroken` (the paper's fail-on-send
//!   TCP semantics).
//! * **Time**: a monotonic [`Instant`] anchor converts to the stack's
//!   nanosecond [`Time`]; `SetTimer` outputs land in a local binary heap
//!   and fire as [`fuse_core::Input::Timer`]. Cancelled or superseded keys
//!   are inert by construction — the stack ignores stale generations.
//! * **Control**: stdin accepts one command per line (`create`, `signal`,
//!   `shutdown`) so an orchestrator like `fuse-load` can drive group
//!   lifecycle without restarting processes. SIGTERM and the `--run-secs`
//!   deadline exit through the same clean path: print `BYE`, flush stdout,
//!   exit 0 (closing the listener and every peer socket with the process).
//!
//! The wire format is minimal: every frame is `u32-LE length ‖ encoded
//! StackMsg`; each fresh connection first sends a `u32-LE` hello carrying
//! the sender's node id so the receiver can attribute the link.
//!
//! Membership is static (this binary demonstrates deployment, not
//! discovery): every process is told the full `--peer id=addr` set and
//! preloads converged overlay routing tables, exactly like the simulator's
//! oracle bootstrap. Group lifecycle events print machine-parseable lines
//! (`READY`, `CREATED …`, `NOTIFIED …`) consumed by the loopback smoke
//! test and the `fuse-load` orchestrator. `CREATED` and `NOTIFIED` carry a
//! wall-clock timestamp `t_ns=<nanoseconds since the UNIX epoch>`, made
//! strictly monotonic within the process, so a same-host orchestrator can
//! compute cross-process fault→notification latencies.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::io::{BufRead, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use rand::rngs::StdRng;
use rand::SeedableRng;

use fuse_core::{AppCall, FuseConfig, FuseEvent, FuseId, FuseStack, Input, Output, StackMsg};
use fuse_overlay::{build_oracle_tables, NodeInfo, NodeName, OverlayConfig};
use fuse_util::{Duration as ProtoDuration, PeerAddr, Time, TimerKey};
use fuse_wire::codec::twopass::to_bytes;
use fuse_wire::Decode;

const USAGE: &str = "\
fuse-node: real-socket TCP deployment of the FUSE failure-notification stack

USAGE:
    fuse-node --id <N> --listen <ADDR> [--peer <N>=<ADDR>]... [OPTIONS]

OPTIONS:
    --id <N>                This node's numeric id (unique across the deployment)
    --listen <ADDR>         TCP address to accept peer connections on
    --peer <N>=<ADDR>       A remote peer's id and address (repeatable)
    --create <N,N,..>       After boot, create a FUSE group over these member ids
    --seed <N>              RNG seed (default: the node id)
    --run-secs <N>          Exit cleanly after N seconds (default: run forever)
    --ping-secs <N>         Overlay liveness ping period (default: 60)
    --ping-timeout-secs <N> Overlay ping-ack timeout (default: 20)
    --link-timeout-secs <N> FUSE per-(group, link) liveness expiry (default: 90)
    --member-repair-secs <N> Member-side wait for a repair response (default: 60)
    --root-repair-secs <N>  Root-side wait for repair replies (default: 120)
    --grace-secs <N>        FUSE reconcile grace (default: 5; must stay below
                            the link timeout)
    --help                  Print this help
    --version               Print the version

CONTROL (one command per stdin line):
    create <N,N,..>    Create a FUSE group over these member ids
    signal <GID>       Signal failure of a group (fuse:<hex> or bare hex)
    shutdown           Flush stdout and exit cleanly (same path as SIGTERM)

OUTPUT (one line each, stdout):
    READY                                         listening, stack booted
    CREATED id=<gid> result=ok|<error> t_ns=<ns>  a create attempt completed
    NOTIFIED id=<gid> reason=<reason> t_ns=<ns>   a failure notification fired
    BYE                                           clean shutdown (stdout flushed)
";

/// Maximum accepted frame payload; anything larger is a protocol error.
const MAX_FRAME: u32 = 16 * 1024 * 1024;
/// Outbound reconnect policy: attempts × delay ≈ 5 s before declaring the
/// connection broken.
const CONNECT_ATTEMPTS: u32 = 25;
const CONNECT_DELAY: std::time::Duration = std::time::Duration::from_millis(200);

/// Set by the SIGTERM handler; the stack loop polls it (≤100 ms latency)
/// and exits through the clean `BYE` path.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: i32) {
    TERM.store(true, Ordering::Relaxed);
}

extern "C" {
    // `signal(2)` from the C runtime std already links; registering a flag
    // store is the one async-signal-safe thing worth doing without libc.
    fn signal(signum: i32, handler: usize) -> usize;
}

const SIGTERM: i32 = 15;

/// What the socket and stdin threads report to the single stack thread.
enum Event {
    /// A decoded frame from `from`.
    Frame { from: PeerAddr, msg: StackMsg },
    /// An inbound or outbound connection to `peer` died.
    Broken { peer: PeerAddr },
    /// A control command read from stdin.
    Control(Control),
}

/// Stdin control commands (one per line).
enum Control {
    /// `create <id,id,..>` — create a group over these member ids.
    Create(Vec<PeerAddr>),
    /// `signal <gid>` — signal failure of a group by id.
    Signal(u64),
    /// `shutdown` — clean exit.
    Shutdown,
}

fn parse_control(line: &str) -> Result<Control, String> {
    let line = line.trim();
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    match cmd {
        "create" => {
            let mut members = Vec::new();
            for part in rest.split(',') {
                members.push(parse_u32(part)?);
            }
            Ok(Control::Create(members))
        }
        "signal" => {
            let hex = rest.strip_prefix("fuse:").unwrap_or(rest);
            let raw = u64::from_str_radix(hex, 16).map_err(|_| format!("bad group id {rest:?}"))?;
            Ok(Control::Signal(raw))
        }
        "shutdown" => Ok(Control::Shutdown),
        other => Err(format!("unknown control command {other:?}")),
    }
}

struct Opts {
    id: PeerAddr,
    listen: String,
    peers: Vec<(PeerAddr, String)>,
    create: Vec<PeerAddr>,
    seed: u64,
    run_secs: Option<u64>,
    ping_secs: Option<u64>,
    ping_timeout_secs: Option<u64>,
    link_timeout_secs: Option<u64>,
    member_repair_secs: Option<u64>,
    root_repair_secs: Option<u64>,
    grace_secs: Option<u64>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut args = std::env::args().skip(1);
    let mut id = None;
    let mut listen = None;
    let mut peers = Vec::new();
    let mut create = Vec::new();
    let mut seed = None;
    let mut run_secs = None;
    let mut ping_secs = None;
    let mut ping_timeout_secs = None;
    let mut link_timeout_secs = None;
    let mut member_repair_secs = None;
    let mut root_repair_secs = None;
    let mut grace_secs = None;
    while let Some(a) = args.next() {
        let mut val = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                exit(0);
            }
            "--version" | "-V" => {
                println!("fuse-node {}", env!("CARGO_PKG_VERSION"));
                exit(0);
            }
            "--id" => id = Some(parse_u32(&val("--id")?)?),
            "--listen" => listen = Some(val("--listen")?),
            "--peer" => {
                let v = val("--peer")?;
                let (pid, addr) = v
                    .split_once('=')
                    .ok_or(format!("--peer wants id=addr, got {v:?}"))?;
                peers.push((parse_u32(pid)?, addr.to_string()));
            }
            "--create" => {
                for part in val("--create")?.split(',') {
                    create.push(parse_u32(part)?);
                }
            }
            "--seed" => seed = Some(parse_u64(&val("--seed")?)?),
            "--run-secs" => run_secs = Some(parse_u64(&val("--run-secs")?)?),
            "--ping-secs" => ping_secs = Some(parse_u64(&val("--ping-secs")?)?),
            "--ping-timeout-secs" => {
                ping_timeout_secs = Some(parse_u64(&val("--ping-timeout-secs")?)?)
            }
            "--link-timeout-secs" => {
                link_timeout_secs = Some(parse_u64(&val("--link-timeout-secs")?)?)
            }
            "--member-repair-secs" => {
                member_repair_secs = Some(parse_u64(&val("--member-repair-secs")?)?)
            }
            "--root-repair-secs" => {
                root_repair_secs = Some(parse_u64(&val("--root-repair-secs")?)?)
            }
            "--grace-secs" => grace_secs = Some(parse_u64(&val("--grace-secs")?)?),
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    let id = id.ok_or("--id is required")?;
    let listen = listen.ok_or("--listen is required")?;
    if peers.iter().any(|&(p, _)| p == id) {
        return Err("--peer must not list this node's own id".into());
    }
    Ok(Opts {
        id,
        listen,
        peers,
        create,
        seed: seed.unwrap_or(u64::from(id)),
        run_secs,
        ping_secs,
        ping_timeout_secs,
        link_timeout_secs,
        member_repair_secs,
        root_repair_secs,
        grace_secs,
    })
}

fn parse_u32(s: &str) -> Result<u32, String> {
    s.trim().parse().map_err(|_| format!("bad number {s:?}"))
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.trim().parse().map_err(|_| format!("bad number {s:?}"))
}

/// Wall-clock nanoseconds since the UNIX epoch, made strictly monotonic
/// within this process (SystemTime may step; notification latency math
/// across processes must not see time run backwards).
fn wall_ns(last: &Cell<u64>) -> u64 {
    let raw = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let t = raw.max(last.get() + 1);
    last.set(t);
    t
}

/// Clean shutdown: flush every buffered stdout line behind a final `BYE`
/// marker and exit 0. Process exit closes the listener and all sockets.
fn graceful_exit() -> ! {
    println!("BYE");
    let _ = std::io::stdout().flush();
    exit(0);
}

/// Reads frames off one accepted connection until it dies.
fn reader_loop(mut conn: TcpStream, events: mpsc::Sender<Event>) {
    // Hello: the sender's node id.
    let mut idbuf = [0u8; 4];
    if conn.read_exact(&mut idbuf).is_err() {
        return; // died before identifying itself: nothing to attribute
    }
    let from = u32::from_le_bytes(idbuf);
    loop {
        let mut lenbuf = [0u8; 4];
        if conn.read_exact(&mut lenbuf).is_err() {
            let _ = events.send(Event::Broken { peer: from });
            return;
        }
        let len = u32::from_le_bytes(lenbuf);
        if len > MAX_FRAME {
            let _ = events.send(Event::Broken { peer: from });
            return;
        }
        let mut payload = vec![0u8; len as usize];
        if conn.read_exact(&mut payload).is_err() {
            let _ = events.send(Event::Broken { peer: from });
            return;
        }
        match StackMsg::from_bytes(&payload) {
            Ok(msg) => {
                if events.send(Event::Frame { from, msg }).is_err() {
                    return; // main loop gone: shutting down
                }
            }
            Err(_) => {
                let _ = events.send(Event::Broken { peer: from });
                return;
            }
        }
    }
}

/// Owns the outbound connection to one peer: connects lazily with bounded
/// retries, sends the hello, then writes frames. Any failure tears the
/// stream down, reports `Broken`, and the next frame starts over.
fn writer_loop(
    my_id: PeerAddr,
    peer: PeerAddr,
    addr: String,
    frames: mpsc::Receiver<Vec<u8>>,
    events: mpsc::Sender<Event>,
) {
    let mut stream: Option<TcpStream> = None;
    while let Ok(frame) = frames.recv() {
        if stream.is_none() {
            for attempt in 0..CONNECT_ATTEMPTS {
                match TcpStream::connect(&addr) {
                    Ok(mut s) => {
                        if s.set_nodelay(true).is_ok() && s.write_all(&my_id.to_le_bytes()).is_ok()
                        {
                            stream = Some(s);
                        }
                        break;
                    }
                    Err(_) if attempt + 1 < CONNECT_ATTEMPTS => thread::sleep(CONNECT_DELAY),
                    Err(_) => {}
                }
            }
        }
        let ok = match stream.as_mut() {
            Some(s) => s.write_all(&frame).is_ok(),
            None => false,
        };
        if !ok {
            stream = None;
            if events.send(Event::Broken { peer }).is_err() {
                return;
            }
        }
    }
}

/// Outbound fan-out: one channel + writer thread per known peer.
struct Transport {
    writers: HashMap<PeerAddr, mpsc::Sender<Vec<u8>>>,
}

impl Transport {
    fn new(my_id: PeerAddr, peers: &[(PeerAddr, String)], events: &mpsc::Sender<Event>) -> Self {
        let mut writers = HashMap::new();
        for &(pid, ref addr) in peers {
            let (tx, rx) = mpsc::channel::<Vec<u8>>();
            let (addr, ev) = (addr.clone(), events.clone());
            thread::spawn(move || writer_loop(my_id, pid, addr, rx, ev));
            writers.insert(pid, tx);
        }
        Transport { writers }
    }

    fn send(&self, to: PeerAddr, msg: &StackMsg, events: &mpsc::Sender<Event>) {
        let Some(tx) = self.writers.get(&to) else {
            // Unknown peer: with static membership this is a config error;
            // surface it as an immediately-broken link.
            let _ = events.send(Event::Broken { peer: to });
            return;
        };
        let payload = to_bytes(msg);
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        let _ = tx.send(frame);
    }
}

fn main() {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fuse-node: {e}");
            eprint!("{USAGE}");
            exit(2);
        }
    };

    // Static membership: self + peers, ring-ordered by the overlay oracle,
    // identical tables on every process (the sim's converged bootstrap).
    let mut infos: Vec<NodeInfo> = opts
        .peers
        .iter()
        .map(|&(pid, _)| NodeInfo::new(pid, NodeName::numbered(pid as usize)))
        .collect();
    infos.push(NodeInfo::new(opts.id, NodeName::numbered(opts.id as usize)));
    infos.sort_by_key(|i| i.proc);
    let me = infos.iter().find(|i| i.proc == opts.id).unwrap().clone();
    let mut ov_cfg = OverlayConfig::default();
    if let Some(s) = opts.ping_secs {
        ov_cfg.ping_period = ProtoDuration::from_secs(s);
    }
    if let Some(s) = opts.ping_timeout_secs {
        ov_cfg.ping_timeout = ProtoDuration::from_secs(s);
    }
    let mut fuse_b = FuseConfig::builder();
    if let Some(s) = opts.link_timeout_secs {
        fuse_b = fuse_b.link_failure_timeout(ProtoDuration::from_secs(s));
    }
    if let Some(s) = opts.member_repair_secs {
        fuse_b = fuse_b.member_repair_timeout(ProtoDuration::from_secs(s));
    }
    if let Some(s) = opts.root_repair_secs {
        fuse_b = fuse_b.root_repair_timeout(ProtoDuration::from_secs(s));
    }
    if let Some(s) = opts.grace_secs {
        fuse_b = fuse_b.reconcile_grace(ProtoDuration::from_secs(s));
    }
    let fuse_cfg = match fuse_b.build() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fuse-node: invalid configuration: {e}");
            exit(2);
        }
    };
    let tables = build_oracle_tables(&infos, &ov_cfg);
    let my_index = infos.iter().position(|i| i.proc == opts.id).unwrap();
    let (cw, ccw, rt) = tables.into_iter().nth(my_index).unwrap();

    let mut stack = FuseStack::new(me, None, ov_cfg, fuse_cfg);
    stack.overlay.preload_tables(cw, ccw, rt);

    let (events_tx, events_rx) = mpsc::channel::<Event>();

    // Clean-exit signal: the handler only flips a flag the loop polls.
    unsafe {
        signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
    }

    // Inbound: listener → reader threads.
    let listener = match TcpListener::bind(&opts.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("fuse-node: cannot listen on {}: {e}", opts.listen);
            exit(1);
        }
    };
    {
        let tx = events_tx.clone();
        thread::spawn(move || {
            for conn in listener.incoming() {
                match conn {
                    Ok(c) => {
                        let tx = tx.clone();
                        thread::spawn(move || reader_loop(c, tx));
                    }
                    Err(ref e) if e.kind() == ErrorKind::ConnectionAborted => continue,
                    Err(_) => return,
                }
            }
        });
    }

    // Control: stdin lines become events; EOF just ends the thread (a node
    // run non-interactively keeps serving until --run-secs or a signal).
    {
        let tx = events_tx.clone();
        thread::spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines().map_while(Result::ok) {
                if line.trim().is_empty() {
                    continue;
                }
                match parse_control(&line) {
                    Ok(c) => {
                        if tx.send(Event::Control(c)).is_err() {
                            return;
                        }
                    }
                    Err(e) => eprintln!("fuse-node: control: {e}"),
                }
            }
        });
    }

    let transport = Transport::new(opts.id, &opts.peers, &events_tx);

    // The stack thread: monotonic clock, timer heap, event pump.
    let t0 = Instant::now();
    let now = |t0: Instant| Time(t0.elapsed().as_nanos() as u64);
    let wall = Cell::new(0u64);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut timers: BinaryHeap<Reverse<(u64, TimerKey)>> = BinaryHeap::new();
    let mut cancelled: HashSet<TimerKey> = HashSet::new();
    let member_infos: Vec<NodeInfo> = opts
        .create
        .iter()
        .map(|&m| {
            infos
                .iter()
                .find(|i| i.proc == m)
                .unwrap_or_else(|| {
                    eprintln!("fuse-node: --create member {m} is not a known --peer");
                    exit(2);
                })
                .clone()
        })
        .collect();
    let wants_group = !opts.create.is_empty();

    // Drains stack outputs, dispatching application calls inline (their own
    // outputs append behind and drain in the same loop).
    let drain = |stack: &mut FuseStack,
                 rng: &mut StdRng,
                 timers: &mut BinaryHeap<Reverse<(u64, TimerKey)>>,
                 cancelled: &mut HashSet<TimerKey>| {
        while let Some(out) = stack.poll_output() {
            match out {
                Output::Send { to, msg } => transport.send(to, &msg, &events_tx),
                Output::SetTimer { key, after } => {
                    timers.push(Reverse((now(t0).nanos() + after.nanos(), key)));
                }
                Output::CancelTimer { key } => {
                    cancelled.insert(key);
                }
                Output::App(call) => match call {
                    AppCall::Boot => {
                        if wants_group {
                            let t = now(t0);
                            let mut api = stack.api(t, rng);
                            api.create_group(member_infos.clone());
                        }
                    }
                    AppCall::Event(FuseEvent::Created { ticket, result }) => match result {
                        Ok(h) => {
                            println!("CREATED id={} result=ok t_ns={}", h.id, wall_ns(&wall));
                        }
                        Err(e) => println!(
                            "CREATED id={} result={e:?} t_ns={}",
                            ticket.id(),
                            wall_ns(&wall)
                        ),
                    },
                    AppCall::Event(FuseEvent::Notified(n)) => {
                        println!(
                            "NOTIFIED id={} reason={} t_ns={}",
                            n.id,
                            n.reason,
                            wall_ns(&wall)
                        );
                    }
                    AppCall::Message { .. } | AppCall::Timer(_) => {}
                },
            }
        }
    };

    stack.handle(now(t0), &mut rng, Input::Boot);
    drain(&mut stack, &mut rng, &mut timers, &mut cancelled);
    println!("READY");

    let deadline = opts
        .run_secs
        .map(std::time::Duration::from_secs)
        .map(|d| t0 + d);
    loop {
        if TERM.load(Ordering::Relaxed) {
            graceful_exit();
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                graceful_exit();
            }
        }
        // Sleep until the next timer, the next socket event, or a 100 ms
        // housekeeping tick, whichever is first.
        let mut wait = std::time::Duration::from_millis(100);
        if let Some(&Reverse((at, _))) = timers.peek() {
            let due = std::time::Duration::from_nanos(at.saturating_sub(now(t0).nanos()));
            wait = wait.min(due);
        }
        match events_rx.recv_timeout(wait) {
            Ok(Event::Frame { from, msg }) => {
                stack.handle(now(t0), &mut rng, Input::Message { from, msg });
                drain(&mut stack, &mut rng, &mut timers, &mut cancelled);
            }
            Ok(Event::Broken { peer }) => {
                stack.handle(now(t0), &mut rng, Input::LinkBroken { peer });
                drain(&mut stack, &mut rng, &mut timers, &mut cancelled);
            }
            Ok(Event::Control(Control::Shutdown)) => graceful_exit(),
            Ok(Event::Control(Control::Create(members))) => {
                let mut resolved = Vec::with_capacity(members.len());
                let mut ok = true;
                for m in &members {
                    match infos.iter().find(|i| i.proc == *m) {
                        Some(i) if *m != opts.id => resolved.push(i.clone()),
                        _ => {
                            eprintln!("fuse-node: control: create member {m} unknown");
                            ok = false;
                        }
                    }
                }
                if ok {
                    let t = now(t0);
                    let mut api = stack.api(t, &mut rng);
                    api.create_group(resolved);
                    drain(&mut stack, &mut rng, &mut timers, &mut cancelled);
                } else {
                    println!("CREATED id=? result=unknown-member t_ns={}", wall_ns(&wall));
                }
            }
            Ok(Event::Control(Control::Signal(raw))) => {
                let t = now(t0);
                let mut api = stack.api(t, &mut rng);
                api.signal_failure(FuseId(raw));
                drain(&mut stack, &mut rng, &mut timers, &mut cancelled);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => exit(1),
        }
        // Fire everything due; stale keys (cancelled or re-armed) are inert
        // in the stack, the `cancelled` set just avoids pointless wakeups.
        let tick = now(t0);
        while let Some(&Reverse((at, key))) = timers.peek() {
            if at > tick.nanos() {
                break;
            }
            timers.pop();
            if cancelled.remove(&key) {
                continue;
            }
            stack.handle(now(t0), &mut rng, Input::Timer(key));
            drain(&mut stack, &mut rng, &mut timers, &mut cancelled);
        }
    }
}
