//! Multi-process loopback tests: real `fuse-node` processes on 127.0.0.1,
//! groups created over actual TCP, real fault injection (SIGKILL, SIGSTOP,
//! SIGTERM), and the paper's notification guarantee checked against the
//! wall clock.
//!
//! These are the deployment-mode counterparts of the simulator suites: the
//! same state machine, real sockets, real clock, real process death. Covered
//! here:
//!
//! * EOF detection — SIGKILL closes sockets, survivors' readers see EOF
//!   (`Input::LinkBroken`), the connection-broken path burns the group;
//! * liveness detection — a SIGSTOPped peer keeps its sockets open and
//!   never answers, so detection must ride the ping-timeout/liveness path
//!   instead;
//! * graceful shutdown — SIGTERM, stdin `shutdown`, and `--run-secs` all
//!   exit 0 through the flushed `BYE` path;
//! * restart — a SIGKILLed member restarted on the same port joins a brand
//!   new group (stale timer generations on the survivors stay inert).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Kills the child on drop so a failing assertion never leaks processes.
struct NodeProc {
    child: Child,
    stdin: Option<ChildStdin>,
    lines: Arc<Mutex<Vec<String>>>,
}

impl Drop for NodeProc {
    fn drop(&mut self) {
        // SIGCONT first: SIGSTOPped children must be killable-waitable.
        let _ = Command::new("kill")
            .args(["-CONT", &self.child.id().to_string()])
            .output();
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl NodeProc {
    fn spawn(args: &[String]) -> NodeProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fuse-node"))
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn fuse-node");
        let stdout = child.stdout.take().expect("piped stdout");
        let stdin = child.stdin.take();
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&lines);
        thread::spawn(move || {
            for line in BufReader::new(stdout).lines().map_while(Result::ok) {
                sink.lock().unwrap().push(line);
            }
        });
        NodeProc {
            child,
            stdin,
            lines,
        }
    }

    /// Sends one control line down the node's stdin.
    fn control(&mut self, line: &str) {
        let stdin = self.stdin.as_mut().expect("stdin piped");
        writeln!(stdin, "{line}").expect("write control line");
        stdin.flush().expect("flush control line");
    }

    /// Sends a Unix signal by name (`TERM`, `STOP`, `CONT`).
    fn signal(&self, sig: &str) {
        let ok = Command::new("kill")
            .args([&format!("-{sig}"), &self.child.id().to_string()])
            .status()
            .expect("run kill")
            .success();
        assert!(ok, "kill -{sig} failed");
    }

    /// Waits for the child to exit, failing after `timeout`.
    fn wait_exit(&mut self, timeout: Duration) -> std::process::ExitStatus {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(st) = self.child.try_wait().expect("try_wait") {
                return st;
            }
            assert!(Instant::now() < deadline, "child did not exit in time");
            thread::sleep(Duration::from_millis(20));
        }
    }

    /// Polls until some stdout line satisfies `pred`, failing after
    /// `timeout`.
    fn wait_for(&self, what: &str, timeout: Duration, pred: impl Fn(&str) -> bool) -> String {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(l) = self.lines.lock().unwrap().iter().find(|l| pred(l)) {
                return l.clone();
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting for {what}; output so far: {:?}",
                self.lines.lock().unwrap()
            );
            thread::sleep(Duration::from_millis(50));
        }
    }
}

/// Reserves a distinct loopback port by binding to :0 and releasing it.
/// Racy in principle; in practice the kernel will not rebind the port to
/// another socket this quickly, and the nodes bind within milliseconds.
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind :0")
        .local_addr()
        .unwrap()
        .port()
}

fn node_args(id: u32, ports: &[u16], create: Option<&str>, extra: &[&str]) -> Vec<String> {
    let mut args = vec![
        "--id".into(),
        id.to_string(),
        "--listen".into(),
        format!("127.0.0.1:{}", ports[id as usize]),
        "--run-secs".into(),
        "240".into(),
    ];
    for (pid, &port) in ports.iter().enumerate() {
        if pid as u32 != id {
            args.push("--peer".into());
            args.push(format!("{pid}=127.0.0.1:{port}"));
        }
    }
    if let Some(members) = create {
        args.push("--create".into());
        args.push(members.into());
    }
    args.extend(extra.iter().map(|s| s.to_string()));
    args
}

fn created_gid(line: &str) -> String {
    line.split_whitespace()
        .find_map(|w| w.strip_prefix("id="))
        .expect("CREATED line carries the group id")
        .to_string()
}

#[test]
fn killed_member_notifies_survivors_over_real_tcp() {
    let ports = [free_port(), free_port(), free_port()];

    // Members first, so the creator's connection attempts land.
    let n1 = NodeProc::spawn(&node_args(1, &ports, None, &[]));
    let n2 = NodeProc::spawn(&node_args(2, &ports, None, &[]));
    n1.wait_for("node 1 READY", Duration::from_secs(10), |l| l == "READY");
    n2.wait_for("node 2 READY", Duration::from_secs(10), |l| l == "READY");

    // The creator boots and immediately creates a group over {0, 1, 2}.
    let n0 = NodeProc::spawn(&node_args(0, &ports, Some("1,2"), &[]));
    let created = n0.wait_for("group creation", Duration::from_secs(20), |l| {
        l.starts_with("CREATED ") && l.contains("result=ok")
    });
    let gid = created_gid(&created);

    // SIGKILL one member: its sockets close, the survivors' readers see
    // EOF, and the connection-broken path burns the group.
    let mut n1 = n1;
    n1.child.kill().expect("kill node 1");

    // §2's guarantee, deployment edition: every live member hears the
    // notification within a bounded time. TCP EOF detection is near-instant
    // (the 30 s budget is slack, not the expectation).
    for (name, node) in [("node 0", &n0), ("node 2", &n2)] {
        let line = node.wait_for(&format!("{name} NOTIFIED"), Duration::from_secs(30), |l| {
            l.starts_with("NOTIFIED ")
        });
        assert!(
            line.contains(&format!("id={gid}")),
            "{name} notified for the wrong group: {line}"
        );
        assert!(
            line.contains(" t_ns="),
            "{name} NOTIFIED line lacks a timestamp: {line}"
        );
    }
}

#[test]
fn sigterm_and_stdin_shutdown_exit_cleanly() {
    let ports = [free_port()];

    // SIGTERM path: flag polled by the event loop, BYE flushed, exit 0.
    let mut a = NodeProc::spawn(&node_args(0, &ports, None, &[]));
    a.wait_for("READY", Duration::from_secs(10), |l| l == "READY");
    a.signal("TERM");
    let st = a.wait_exit(Duration::from_secs(10));
    assert!(st.success(), "SIGTERM exit should be clean, got {st:?}");
    a.wait_for("BYE after SIGTERM", Duration::from_secs(5), |l| l == "BYE");

    // stdin `shutdown` path: same clean exit without any signal.
    let ports = [free_port()];
    let mut b = NodeProc::spawn(&node_args(0, &ports, None, &[]));
    b.wait_for("READY", Duration::from_secs(10), |l| l == "READY");
    b.control("shutdown");
    let st = b.wait_exit(Duration::from_secs(10));
    assert!(st.success(), "shutdown exit should be clean, got {st:?}");
    b.wait_for("BYE after shutdown", Duration::from_secs(5), |l| l == "BYE");

    // --run-secs path: the deadline routes through the same clean exit.
    let ports = [free_port()];
    let mut c = NodeProc::spawn(&[
        "--id".into(),
        "0".into(),
        "--listen".into(),
        format!("127.0.0.1:{}", ports[0]),
        "--run-secs".into(),
        "1".into(),
    ]);
    c.wait_for("READY", Duration::from_secs(10), |l| l == "READY");
    let st = c.wait_exit(Duration::from_secs(10));
    assert!(st.success(), "--run-secs exit should be clean, got {st:?}");
    c.wait_for("BYE after --run-secs", Duration::from_secs(5), |l| {
        l == "BYE"
    });
}

#[test]
fn silent_peer_burns_via_liveness_timeout() {
    // A SIGSTOPped peer is the anti-EOF fault: its sockets stay open, sends
    // to it land in kernel buffers, and no reader ever reports LinkBroken.
    // Detection must come from the liveness machinery (ping timeout → soft
    // fail → failed repair), so the test compresses those timers.
    let timing: &[&str] = &[
        "--ping-secs",
        "2",
        "--ping-timeout-secs",
        "1",
        "--link-timeout-secs",
        "8",
        "--member-repair-secs",
        "5",
        "--root-repair-secs",
        "10",
        "--grace-secs",
        "1",
    ];
    let ports = [free_port(), free_port(), free_port()];
    let n1 = NodeProc::spawn(&node_args(1, &ports, None, timing));
    let n2 = NodeProc::spawn(&node_args(2, &ports, None, timing));
    n1.wait_for("node 1 READY", Duration::from_secs(10), |l| l == "READY");
    n2.wait_for("node 2 READY", Duration::from_secs(10), |l| l == "READY");
    let n0 = NodeProc::spawn(&node_args(0, &ports, Some("1,2"), timing));
    let created = n0.wait_for("group creation", Duration::from_secs(20), |l| {
        l.starts_with("CREATED ") && l.contains("result=ok")
    });
    let gid = created_gid(&created);

    // Freeze (don't kill) the member: no FIN, no RST, no EOF anywhere.
    n1.signal("STOP");

    for (name, node) in [("node 0", &n0), ("node 2", &n2)] {
        let line = node.wait_for(&format!("{name} NOTIFIED"), Duration::from_secs(60), |l| {
            l.starts_with("NOTIFIED ") && l.contains(&format!("id={gid}"))
        });
        let reason = line
            .split_whitespace()
            .find_map(|w| w.strip_prefix("reason="))
            .expect("NOTIFIED line carries a reason");
        assert!(
            reason == "liveness-expired" || reason == "repair-failed",
            "{name} must detect the frozen peer via the liveness path, got: {line}"
        );
    }
}

#[test]
fn restarted_member_joins_new_group_on_same_port() {
    let ports = [free_port(), free_port(), free_port()];
    let n1 = NodeProc::spawn(&node_args(1, &ports, None, &[]));
    let n2 = NodeProc::spawn(&node_args(2, &ports, None, &[]));
    n1.wait_for("node 1 READY", Duration::from_secs(10), |l| l == "READY");
    n2.wait_for("node 2 READY", Duration::from_secs(10), |l| l == "READY");
    let n0 = NodeProc::spawn(&node_args(0, &ports, Some("1,2"), &[]));
    let created = n0.wait_for("group creation", Duration::from_secs(20), |l| {
        l.starts_with("CREATED ") && l.contains("result=ok")
    });
    let old_gid = created_gid(&created);

    // Kill the member and let the survivors burn the old group.
    let mut n1 = n1;
    n1.child.kill().expect("kill node 1");
    for node in [&n0, &n2] {
        node.wait_for("old group NOTIFIED", Duration::from_secs(30), |l| {
            l.starts_with("NOTIFIED ") && l.contains(&format!("id={old_gid}"))
        });
    }

    // Restart a fresh process on the same id and port. The survivors still
    // hold timers and counters from the old incarnation; all of that state
    // must stay inert (stale TimerKey generations fire into nothing).
    drop(n1);
    let mut n1 = NodeProc::spawn(&node_args(1, &ports, None, &[]));
    n1.wait_for("restarted node 1 READY", Duration::from_secs(10), |l| {
        l == "READY"
    });

    // The restarted node roots a brand new group over the same membership.
    n1.control("create 0,2");
    let created = n1.wait_for("new group creation", Duration::from_secs(20), |l| {
        l.starts_with("CREATED ") && l.contains("result=ok")
    });
    let new_gid = created_gid(&created);
    assert_ne!(new_gid, old_gid, "fresh incarnation must mint a fresh id");

    // And the new group is live end-to-end: an explicit signal from the
    // restarted root reaches every member.
    n1.control(&format!("signal {new_gid}"));
    for (name, node) in [("node 0", &n0), ("node 2", &n2), ("node 1", &n1)] {
        let line = node.wait_for(
            &format!("{name} NOTIFIED for new group"),
            Duration::from_secs(30),
            |l| l.starts_with("NOTIFIED ") && l.contains(&format!("id={new_gid}")),
        );
        assert!(
            line.contains("reason=explicit-signal"),
            "{name} should hear the explicit signal: {line}"
        );
    }
}
