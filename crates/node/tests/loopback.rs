//! Multi-process loopback smoke test: three real `fuse-node` processes on
//! 127.0.0.1, a group created over actual TCP, one member killed with
//! SIGKILL, and both survivors required to observe the failure notification
//! within the detection bound.
//!
//! This is the deployment-mode counterpart of the simulator's
//! `member_crash_notifies_survivors_within_detection_bound`: same state
//! machine, real sockets, real clock, real process death.

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Kills the child on drop so a failing assertion never leaks processes.
struct NodeProc {
    child: Child,
    lines: Arc<Mutex<Vec<String>>>,
}

impl Drop for NodeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl NodeProc {
    fn spawn(args: &[String]) -> NodeProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fuse-node"))
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn fuse-node");
        let stdout = child.stdout.take().expect("piped stdout");
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&lines);
        thread::spawn(move || {
            for line in BufReader::new(stdout).lines().map_while(Result::ok) {
                sink.lock().unwrap().push(line);
            }
        });
        NodeProc { child, lines }
    }

    /// Polls until some stdout line satisfies `pred`, failing after
    /// `timeout`.
    fn wait_for(&self, what: &str, timeout: Duration, pred: impl Fn(&str) -> bool) -> String {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(l) = self.lines.lock().unwrap().iter().find(|l| pred(l)) {
                return l.clone();
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting for {what}; output so far: {:?}",
                self.lines.lock().unwrap()
            );
            thread::sleep(Duration::from_millis(50));
        }
    }
}

/// Reserves a distinct loopback port by binding to :0 and releasing it.
/// Racy in principle; in practice the kernel will not rebind the port to
/// another socket this quickly, and the nodes bind within milliseconds.
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind :0")
        .local_addr()
        .unwrap()
        .port()
}

fn node_args(id: u32, ports: &[u16; 3], create: Option<&str>) -> Vec<String> {
    let mut args = vec![
        "--id".into(),
        id.to_string(),
        "--listen".into(),
        format!("127.0.0.1:{}", ports[id as usize]),
        "--run-secs".into(),
        "120".into(),
    ];
    for (pid, &port) in ports.iter().enumerate() {
        if pid as u32 != id {
            args.push("--peer".into());
            args.push(format!("{pid}=127.0.0.1:{port}"));
        }
    }
    if let Some(members) = create {
        args.push("--create".into());
        args.push(members.into());
    }
    args
}

#[test]
fn killed_member_notifies_survivors_over_real_tcp() {
    let ports = [free_port(), free_port(), free_port()];

    // Members first, so the creator's connection attempts land.
    let n1 = NodeProc::spawn(&node_args(1, &ports, None));
    let n2 = NodeProc::spawn(&node_args(2, &ports, None));
    n1.wait_for("node 1 READY", Duration::from_secs(10), |l| l == "READY");
    n2.wait_for("node 2 READY", Duration::from_secs(10), |l| l == "READY");

    // The creator boots and immediately creates a group over {0, 1, 2}.
    let n0 = NodeProc::spawn(&node_args(0, &ports, Some("1,2")));
    let created = n0.wait_for("group creation", Duration::from_secs(20), |l| {
        l.starts_with("CREATED ") && l.ends_with("result=ok")
    });
    let gid = created
        .split_whitespace()
        .find_map(|w| w.strip_prefix("id="))
        .expect("CREATED line carries the group id")
        .to_string();

    // SIGKILL one member: its sockets close, the survivors' readers see
    // EOF, and the connection-broken path burns the group.
    let mut n1 = n1;
    n1.child.kill().expect("kill node 1");

    // §2's guarantee, deployment edition: every live member hears the
    // notification within a bounded time. TCP EOF detection is near-instant
    // (the 30 s budget is slack, not the expectation).
    for (name, node) in [("node 0", &n0), ("node 2", &n2)] {
        let line = node.wait_for(&format!("{name} NOTIFIED"), Duration::from_secs(30), |l| {
            l.starts_with("NOTIFIED ")
        });
        assert!(
            line.contains(&format!("id={gid}")),
            "{name} notified for the wrong group: {line}"
        );
    }
}
