//! The FUSE protocol state machine (paper §6).
//!
//! One [`FuseLayer`] lives on every node, above the overlay. It holds every
//! group the node participates in — as **root** (the creator, coordinator of
//! repair), **member**, or **delegate** (a non-member node on an overlay
//! route between a member and the root, holding only liveness-tree state).
//!
//! The invariant the layer maintains is the paper's *distributed one-way
//! agreement*: once any participant decides the group failed, every live
//! member's application handler is invoked exactly once, within a bounded
//! time, regardless of crashes, partitions or message loss. Failure burns
//! along the liveness tree ("the fuse"): any link that stops refreshing
//! converts into `SoftNotification`s and repair attempts, and any repair
//! that cannot complete converts into `HardNotification`s.
//!
//! Every notification carries the *cause* that burned the fuse
//! ([`NotifyReason`]): the local evidence where failure was first declared,
//! propagated on the wire inside `HardNotification` so members observe the
//! same classified cause the declaring node saw.

use fuse_liveness::{Detector, LivenessIo, LivenessTimer, SubscriptionRegistry, Verdict};
use fuse_overlay::node::RouteStart;
use fuse_overlay::{NodeInfo, OverlayIo, OverlayMsg, OverlayNode, OverlayUpcall};
use fuse_sim::{ProcId, SimDuration, SimTime, TimerHandle};
use fuse_util::backoff::Backoff;
use fuse_util::idgen::IdGen;
use fuse_util::{DetHashMap, DetHashSet};
use fuse_wire::{Decode, Digest, EncodeBuf, Sha1};
use rand::rngs::StdRng;

use crate::messages::{FuseMsg, InstallChecking};
use crate::types::{
    CreateError, CreateTicket, FuseConfig, FuseEvent, FuseId, FuseTimer, GroupHandle, Notification,
    NotifyReason, Role,
};

/// Host services for the FUSE layer (implemented by the node stack).
///
/// Extends [`OverlayIo`] because the layer also drives the overlay (routing
/// `InstallChecking` messages and pushing piggyback hashes): one shim object
/// serves both layers.
pub trait FuseIo: OverlayIo {
    /// Sends a FUSE message directly to a peer process.
    fn send_fuse(&mut self, to: ProcId, msg: FuseMsg);

    /// Arms a FUSE timer (cancel with [`OverlayIo::cancel_timer`]).
    fn set_fuse_timer(&mut self, after: SimDuration, tag: FuseTimer) -> TimerHandle;

    /// Delivers an event to the application (buffered by the stack).
    fn app(&mut self, ev: FuseEvent);
}

/// [`LivenessIo`] adapter the embedded shared-plane detector runs against.
///
/// Bridges detector effects onto the node's [`FuseIo`]: probes go out as
/// overlay messages carrying the link's piggyback digest, detector timers
/// ride [`FuseTimer::Liveness`], and verdicts are buffered so the layer can
/// apply them *after* the detector call returns (the detector and the rest
/// of the layer are disjoint borrows of [`FuseLayer`]).
struct PlaneIo<'a, IO: FuseIo> {
    io: &'a mut IO,
    me: ProcId,
    hashes: &'a DetHashMap<ProcId, Digest>,
    /// Overlay neighbors, the relay pool for indirect probes. Wider than
    /// the subscribed-peer set on purpose: a node whose groups all ride
    /// one link still gets relays, so a lossy (or adversarially dropped)
    /// direct path cannot manufacture a false kill on its own.
    neighbors: &'a [ProcId],
    verdicts: Vec<(ProcId, Verdict)>,
}

impl<IO: FuseIo> LivenessIo for PlaneIo<'_, IO> {
    fn now(&self) -> SimTime {
        self.io.now()
    }

    fn rng(&mut self) -> &mut StdRng {
        self.io.rng()
    }

    fn send_probe(&mut self, to: ProcId, nonce: u64) {
        let hash = self.hashes.get(&to).copied();
        self.io.send(to, OverlayMsg::Probe { nonce, hash });
    }

    fn send_indirect(&mut self, relay: ProcId, target: ProcId, nonce: u64) {
        self.io.send(
            relay,
            OverlayMsg::IndirectProbe {
                origin: self.me,
                target,
                nonce,
            },
        );
    }

    fn relay_candidates(&mut self, target: ProcId) -> Vec<ProcId> {
        self.neighbors
            .iter()
            .copied()
            .filter(|&p| p != target && p != self.me)
            .collect()
    }

    fn set_timer(&mut self, after: SimDuration, tag: LivenessTimer) -> TimerHandle {
        self.io.set_fuse_timer(after, FuseTimer::Liveness(tag))
    }

    fn cancel_timer(&mut self, h: TimerHandle) {
        self.io.cancel_timer(h);
    }

    fn verdict(&mut self, peer: ProcId, v: Verdict) {
        self.verdicts.push((peer, v));
    }
}

/// Counters exposed for tests and experiments.
#[derive(Debug, Clone, Default)]
pub struct FuseStats {
    /// Groups successfully created (root side).
    pub groups_created: u64,
    /// Creation attempts that failed.
    pub creates_failed: u64,
    /// Application failure handlers invoked on this node.
    pub notifications: u64,
    /// Hard notifications sent.
    pub hard_sent: u64,
    /// Soft notifications sent.
    pub soft_sent: u64,
    /// Repair rounds started (root side).
    pub repairs_started: u64,
    /// Repair rounds that failed (group declared dead).
    pub repairs_failed: u64,
    /// Per-(group, link) liveness timers that expired.
    pub links_expired: u64,
    /// Reconciliations triggered by hash mismatches.
    pub reconciles: u64,
    /// Piggyback digests recomputed (cache misses: the link's monitored
    /// set changed).
    pub hashes_computed: u64,
    /// Shared-plane `Suspected` verdicts observed (burn nothing by
    /// themselves).
    pub suspects: u64,
    /// Shared-plane refutations: a suspected peer proved alive in time.
    pub refutations: u64,
    /// Shared-plane `Dead` verdicts (each burns exactly the subscribed
    /// groups).
    pub peer_deaths: u64,
}

struct Link {
    /// Per-(group, link) expiry timer — `None` in shared-plane mode, where
    /// the node-level detector owns liveness for the peer.
    timer: Option<TimerHandle>,
    installed_at: SimTime,
}

struct RootState {
    members: Vec<NodeInfo>,
    install_missing: DetHashSet<ProcId>,
    install_timer: Option<TimerHandle>,
    repair: Option<RepairRound>,
    kick: Option<TimerHandle>,
    dirty: bool,
    backoff: Backoff,
}

struct RepairRound {
    seq: u64,
    awaiting: DetHashSet<ProcId>,
    timer: TimerHandle,
}

struct MemberState {
    repair_wait: Option<TimerHandle>,
}

enum RoleState {
    Root(RootState),
    Member(MemberState),
    Delegate,
}

struct Group {
    seq: u64,
    root: NodeInfo,
    role: RoleState,
    created_at: SimTime,
    links: DetHashMap<ProcId, Link>,
}

struct CreateAttempt {
    members: Vec<NodeInfo>,
    awaiting: DetHashSet<ProcId>,
    timer: TimerHandle,
    /// InstallChecking arrivals that raced ahead of the last create reply.
    early_ics: Vec<(ProcId, ProcId)>,
}

/// The per-node FUSE layer.
pub struct FuseLayer {
    cfg: FuseConfig,
    me: NodeInfo,
    idgen: IdGen,
    groups: DetHashMap<FuseId, Group>,
    creating: DetHashMap<FuseId, CreateAttempt>,
    /// Index: which groups monitor each link (drives the piggyback hash and,
    /// in shared-plane mode, which groups a peer verdict burns).
    subs: SubscriptionRegistry<FuseId>,
    /// Node-level SWIM-style failure detector. Constructed always, driven
    /// only when `cfg.shared_plane` is set: subscribe/unsubscribe edges add
    /// and remove probed peers, and its `Dead` verdicts replace per-(group,
    /// link) `LinkExpired` timers.
    detector: Detector,
    /// Cached per-peer piggyback digest: recomputed only when the peer's
    /// subscribed-group set changes, *not* on every `PingHash` arrival.
    hash_cache: DetHashMap<ProcId, Digest>,
    /// Application context registered per group via `register_handler`;
    /// returned inside the failure [`Notification`].
    handlers: DetHashMap<FuseId, u64>,
    /// Group-scoped fail-on-send bindings (§3.4): peers this node performed
    /// a `group_send` to, per group. A broken connection to a bound peer
    /// declares the group failed.
    send_bound: DetHashMap<FuseId, DetHashSet<ProcId>>,
    /// Reusable single-pass encode scratch for wire payloads this layer
    /// builds (`InstallChecking` envelopes): encoding reserves the exact
    /// size hint once and never re-counts or grows per message.
    ebuf: EncodeBuf,
    /// Exposed counters.
    pub stats: FuseStats,
}

impl FuseLayer {
    /// Creates the layer for node `me`.
    pub fn new(me: NodeInfo, cfg: FuseConfig) -> Self {
        let tag = u64::from(me.proc);
        let detector = Detector::new(cfg.liveness.clone());
        FuseLayer {
            cfg,
            me,
            idgen: IdGen::new(tag),
            groups: DetHashMap::default(),
            creating: DetHashMap::default(),
            subs: SubscriptionRegistry::default(),
            detector,
            hash_cache: DetHashMap::default(),
            handlers: DetHashMap::default(),
            send_bound: DetHashMap::default(),
            ebuf: EncodeBuf::new(),
            stats: FuseStats::default(),
        }
    }

    /// Number of live groups this node holds state for (any role).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Whether this node holds state for `id`.
    pub fn knows_group(&self, id: FuseId) -> bool {
        self.groups.contains_key(&id)
    }

    /// Whether this node holds *member or root* state for `id`.
    pub fn is_participant(&self, id: FuseId) -> bool {
        matches!(
            self.groups.get(&id).map(|g| &g.role),
            Some(RoleState::Root(_)) | Some(RoleState::Member(_))
        )
    }

    /// This node's handle for a live group it participates in.
    pub fn handle(&self, id: FuseId) -> Option<GroupHandle> {
        let g = self.groups.get(&id)?;
        let role = match g.role {
            RoleState::Root(_) => Role::Root,
            RoleState::Member(_) => Role::Member,
            RoleState::Delegate => return None,
        };
        Some(GroupHandle {
            id,
            role,
            created_at: g.created_at,
        })
    }

    /// Liveness-tree neighbors currently monitored for `id` (visibility for
    /// tests and the SV-tree census).
    pub fn tree_links(&self, id: FuseId) -> Vec<ProcId> {
        let mut v: Vec<ProcId> = self
            .groups
            .get(&id)
            .map(|g| g.links.keys().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    // ---- Public API (paper Figure 1) --------------------------------------

    /// `CreateGroup`: blocking creation of a group over `others` (the other
    /// participants; the caller is the root and an implicit participant).
    ///
    /// Returns a [`CreateTicket`] immediately; the outcome arrives as a
    /// [`FuseEvent::Created`] echoing the ticket once every member has been
    /// contacted (the paper's blocking-create semantics: success implies all
    /// members were alive and reachable).
    pub fn create_group(&mut self, io: &mut impl FuseIo, others: Vec<NodeInfo>) -> CreateTicket {
        let id = FuseId(self.idgen.next_id());
        let ticket = CreateTicket::new(id);
        if others.is_empty() {
            // Singleton group: alive until explicitly signalled.
            let now = io.now();
            self.groups.insert(
                id,
                Group {
                    seq: 0,
                    root: self.me.clone(),
                    role: RoleState::Root(RootState {
                        members: Vec::new(),
                        install_missing: DetHashSet::default(),
                        install_timer: None,
                        repair: None,
                        kick: None,
                        dirty: false,
                        backoff: self.new_backoff(),
                    }),
                    created_at: now,
                    links: DetHashMap::default(),
                },
            );
            self.stats.groups_created += 1;
            io.app(FuseEvent::Created {
                ticket,
                result: Ok(GroupHandle {
                    id,
                    role: Role::Root,
                    created_at: now,
                }),
            });
            return ticket;
        }
        let awaiting: DetHashSet<ProcId> = others.iter().map(|m| m.proc).collect();
        for m in &others {
            io.send_fuse(
                m.proc,
                FuseMsg::GroupCreateRequest {
                    id,
                    root: self.me.clone(),
                    members: others.clone(),
                },
            );
        }
        let timer = io.set_fuse_timer(self.cfg.create_timeout, FuseTimer::CreateTimeout { id });
        self.creating.insert(
            id,
            CreateAttempt {
                members: others,
                awaiting,
                timer,
                early_ics: Vec::new(),
            },
        );
        ticket
    }

    /// `RegisterFailureHandler`: attaches `ctx` to the group's local failure
    /// handler; it is returned inside the [`Notification`]. If the group is
    /// unknown on this node (never existed here, or already failed), the
    /// callback fires immediately with [`NotifyReason::UnknownGroup`],
    /// exactly as §3.1 specifies.
    pub fn register_handler(&mut self, io: &mut impl FuseIo, id: FuseId, ctx: u64) {
        if self.is_participant(id) {
            self.handlers.insert(id, ctx);
        } else {
            io.app(FuseEvent::Notified(Notification {
                id,
                reason: NotifyReason::UnknownGroup,
                role: Role::Observer,
                seq: 0,
                created_at: io.now(),
                ctx: Some(ctx),
            }));
        }
    }

    /// `SignalFailure`: explicit, application-triggered group failure.
    pub fn signal_failure(&mut self, io: &mut impl FuseIo, ov: &mut OverlayNode, id: FuseId) {
        self.declare_failed(io, ov, id, NotifyReason::ExplicitSignal);
    }

    /// Records a §3.4 fail-on-send binding: this node is about to send
    /// group-correlated data to `to`, and a broken delivery must burn the
    /// group. Returns `false` (and binds nothing) when this node does not
    /// hold live participant state for `id` — the caller should drop the
    /// payload, since the group has already failed here.
    pub fn bind_fail_on_send(&mut self, id: FuseId, to: ProcId) -> bool {
        if !self.is_participant(id) {
            return false;
        }
        self.send_bound.entry(id).or_default().insert(to);
        true
    }

    /// Declares `id` failed with the given evidence: the member/root halves
    /// of `SignalFailure`, shared by the explicit API and fail-on-send.
    fn declare_failed(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        id: FuseId,
        reason: NotifyReason,
    ) {
        let Some(g) = self.groups.get(&id) else {
            return; // Already failed; handler already ran.
        };
        match &g.role {
            RoleState::Root(_) => self.group_failed_at_root(io, ov, id, None, reason),
            RoleState::Member(_) => {
                let root = g.root.proc;
                let seq = g.seq;
                self.stats.hard_sent += 1;
                io.send_fuse(root, FuseMsg::HardNotification { id, seq, reason });
                self.fail_locally(io, ov, id, reason);
            }
            RoleState::Delegate => {
                // Only participants may signal; a delegate-only node has no
                // registered application handler for the group.
            }
        }
    }

    // ---- Message handling --------------------------------------------------

    /// Handles a FUSE message from `from`.
    pub fn on_message(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        from: ProcId,
        msg: FuseMsg,
    ) {
        match msg {
            FuseMsg::GroupCreateRequest { id, root, members } => {
                self.on_create_request(io, ov, from, id, root, members);
            }
            FuseMsg::GroupCreateReply { id, ok } => {
                self.on_create_reply(io, ov, from, id, ok);
            }
            FuseMsg::SoftNotification { id, seq } => {
                self.on_soft(io, ov, from, id, seq);
            }
            FuseMsg::HardNotification { id, seq, reason } => {
                self.on_hard(io, ov, from, id, seq, reason);
            }
            FuseMsg::NeedRepair { id, .. } => {
                if self
                    .groups
                    .get(&id)
                    .map(|g| matches!(g.role, RoleState::Root(_)))
                    == Some(true)
                {
                    self.request_repair(io, id);
                } else if !self.groups.contains_key(&id) && !self.creating.contains_key(&id) {
                    // The group already failed here; burn the fuse back.
                    io.send_fuse(
                        from,
                        FuseMsg::HardNotification {
                            id,
                            seq: u64::MAX,
                            reason: NotifyReason::UnknownGroup,
                        },
                    );
                }
            }
            FuseMsg::GroupRepairRequest { id, seq, root } => {
                self.on_repair_request(io, ov, from, id, seq, root);
            }
            FuseMsg::GroupRepairReply { id, seq, ok } => {
                self.on_repair_reply(io, ov, from, id, seq, ok);
            }
            FuseMsg::ReconcileRequest { links } => {
                let mine = self.links_with(from);
                io.send_fuse(from, FuseMsg::ReconcileReply { links: mine });
                self.reconcile(io, ov, from, &links);
            }
            FuseMsg::ReconcileReply { links } => {
                self.reconcile(io, ov, from, &links);
            }
        }
    }

    fn on_create_request(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        from: ProcId,
        id: FuseId,
        root: NodeInfo,
        _members: Vec<NodeInfo>,
    ) {
        let now = io.now();
        match self.groups.get_mut(&id) {
            Some(g) => {
                // A delegate branch for this group was installed before our
                // own create request arrived; upgrade to member.
                if matches!(g.role, RoleState::Delegate) {
                    g.role = RoleState::Member(MemberState { repair_wait: None });
                    g.root = root.clone();
                    g.created_at = now;
                }
            }
            None => {
                self.groups.insert(
                    id,
                    Group {
                        seq: 0,
                        root: root.clone(),
                        role: RoleState::Member(MemberState { repair_wait: None }),
                        created_at: now,
                        links: DetHashMap::default(),
                    },
                );
            }
        }
        io.send_fuse(from, FuseMsg::GroupCreateReply { id, ok: true });
        self.route_install_checking(io, ov, id, 0, root);
    }

    fn route_install_checking(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        id: FuseId,
        seq: u64,
        root: NodeInfo,
    ) {
        if root.proc == self.me.proc {
            return;
        }
        let ic = InstallChecking {
            id,
            seq,
            member: self.me.clone(),
            root: root.clone(),
        };
        let payload = self.ebuf.encode_to_bytes(&ic);
        match ov.route_client(io, &root.name, payload) {
            RouteStart::Sent { next } => {
                self.add_link(io, ov, id, next);
            }
            RouteStart::SelfIsTarget => {}
            RouteStart::NoRoute => {
                // No overlay path right now: fall back on root-driven repair.
                self.initiate_member_repair(io, id);
            }
        }
    }

    fn on_create_reply(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        from: ProcId,
        id: FuseId,
        ok: bool,
    ) {
        let Some(attempt) = self.creating.get_mut(&id) else {
            return; // Late reply for an already-failed creation.
        };
        if !ok {
            self.create_failed(io, id, CreateError::Refused);
            return;
        }
        attempt.awaiting.remove(&from);
        if !attempt.awaiting.is_empty() {
            return;
        }
        // Blocking create complete: every member answered.
        let attempt = self.creating.remove(&id).expect("attempt present");
        io.cancel_timer(attempt.timer);
        let install_missing: DetHashSet<ProcId> = attempt.members.iter().map(|m| m.proc).collect();
        let install_timer =
            Some(io.set_fuse_timer(self.cfg.install_wait, FuseTimer::InstallWait { id }));
        let now = io.now();
        self.groups.insert(
            id,
            Group {
                seq: 0,
                root: self.me.clone(),
                role: RoleState::Root(RootState {
                    members: attempt.members,
                    install_missing,
                    install_timer,
                    repair: None,
                    kick: None,
                    dirty: false,
                    backoff: self.new_backoff(),
                }),
                created_at: now,
                links: DetHashMap::default(),
            },
        );
        self.stats.groups_created += 1;
        io.app(FuseEvent::Created {
            ticket: CreateTicket::new(id),
            result: Ok(GroupHandle {
                id,
                role: Role::Root,
                created_at: now,
            }),
        });
        // Process InstallChecking arrivals that raced ahead.
        for (member, prev) in attempt.early_ics {
            self.install_arrived_at_root(io, ov, id, 0, member, prev);
        }
    }

    fn create_failed(&mut self, io: &mut impl FuseIo, id: FuseId, err: CreateError) {
        let Some(attempt) = self.creating.remove(&id) else {
            return;
        };
        io.cancel_timer(attempt.timer);
        self.stats.creates_failed += 1;
        // Best effort: tear down any member state already installed.
        for m in &attempt.members {
            self.stats.hard_sent += 1;
            io.send_fuse(
                m.proc,
                FuseMsg::HardNotification {
                    id,
                    seq: 0,
                    reason: NotifyReason::CreateFailed,
                },
            );
        }
        io.app(FuseEvent::Created {
            ticket: CreateTicket::new(id),
            result: Err(err),
        });
    }

    fn on_soft(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        from: ProcId,
        id: FuseId,
        seq: u64,
    ) {
        let Some(g) = self.groups.get(&id) else {
            return;
        };
        if seq < g.seq {
            return; // Stale notification from before a completed repair.
        }
        // Forward along the tree, away from the originator, then drop the
        // damaged tree locally.
        let peers: Vec<ProcId> = g.links.keys().copied().filter(|&p| p != from).collect();
        for p in peers {
            self.stats.soft_sent += 1;
            io.send_fuse(p, FuseMsg::SoftNotification { id, seq });
        }
        self.clear_links(io, ov, id);
        match &self.groups.get(&id).expect("group present").role {
            RoleState::Delegate => {
                self.groups.remove(&id);
            }
            RoleState::Member(_) => self.initiate_member_repair(io, id),
            RoleState::Root(_) => self.request_repair(io, id),
        }
    }

    fn on_hard(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        from: ProcId,
        id: FuseId,
        _seq: u64,
        reason: NotifyReason,
    ) {
        if self.creating.contains_key(&id) {
            // A member installed state and failed before creation finished.
            self.create_failed(io, id, CreateError::Refused);
            return;
        }
        let Some(g) = self.groups.get(&id) else {
            return; // Already failed here; handler already ran.
        };
        if matches!(g.role, RoleState::Root(_)) {
            self.group_failed_at_root(io, ov, id, Some(from), reason);
        } else {
            self.fail_locally(io, ov, id, reason);
        }
    }

    fn on_repair_request(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        from: ProcId,
        id: FuseId,
        seq: u64,
        root: NodeInfo,
    ) {
        match self.groups.get_mut(&id) {
            None => {
                // "If a repair message ever encounters a member that no
                // longer has knowledge of the group, it fails and signals a
                // HardNotification" (§6.5). Crash recovery lands here.
                io.send_fuse(from, FuseMsg::GroupRepairReply { id, seq, ok: false });
            }
            Some(g) => {
                if seq <= g.seq {
                    // Stale repair (we already advanced); still acknowledge.
                    io.send_fuse(from, FuseMsg::GroupRepairReply { id, seq, ok: true });
                    return;
                }
                g.seq = seq;
                if matches!(g.role, RoleState::Delegate) {
                    // A delegate that happens to also be addressed as a
                    // member (stale root view); treat conservatively as
                    // unknown membership.
                    io.send_fuse(from, FuseMsg::GroupRepairReply { id, seq, ok: false });
                    return;
                }
                if let RoleState::Member(ms) = &mut g.role {
                    if let Some(h) = ms.repair_wait.take() {
                        io.cancel_timer(h);
                    }
                }
                io.send_fuse(from, FuseMsg::GroupRepairReply { id, seq, ok: true });
                self.clear_links(io, ov, id);
                self.route_install_checking(io, ov, id, seq, root);
            }
        }
    }

    fn on_repair_reply(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        from: ProcId,
        id: FuseId,
        seq: u64,
        ok: bool,
    ) {
        let Some(g) = self.groups.get_mut(&id) else {
            return;
        };
        let RoleState::Root(rs) = &mut g.role else {
            return;
        };
        let Some(round) = &mut rs.repair else {
            return;
        };
        if round.seq != seq {
            return;
        }
        if !ok {
            self.group_failed_at_root(io, ov, id, None, NotifyReason::RepairFailed);
            return;
        }
        round.awaiting.remove(&from);
        if !round.awaiting.is_empty() {
            return;
        }
        // Round succeeded.
        let round = rs.repair.take().expect("round present");
        io.cancel_timer(round.timer);
        rs.install_missing = rs.members.iter().map(|m| m.proc).collect();
        if let Some(h) = rs.install_timer.take() {
            io.cancel_timer(h);
        }
        rs.install_timer =
            Some(io.set_fuse_timer(self.cfg.install_wait, FuseTimer::InstallWait { id }));
        if rs.dirty {
            rs.dirty = false;
            self.request_repair(io, id);
        } else {
            rs.backoff.reset();
        }
    }

    // ---- Overlay upcalls ----------------------------------------------------

    /// Handles an upcall from the overlay beneath.
    pub fn on_overlay_upcall(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        up: OverlayUpcall,
    ) {
        match up {
            OverlayUpcall::PingHash { peer, hash } => self.on_ping_hash(io, peer, hash),
            OverlayUpcall::LinkUp { .. } => {}
            OverlayUpcall::LinkDown { peer, .. } => {
                // Dead or rerouted link: every group monitoring it soft-fails
                // that branch and repairs.
                for id in self.subs.subscribers(peer) {
                    self.local_link_failed(io, ov, id, peer);
                }
            }
            OverlayUpcall::ProbeAcked { peer, nonce, .. } => {
                if self.cfg.shared_plane {
                    self.drive_detector(io, ov, |det, pio| det.on_ack(pio, peer, nonce));
                }
            }
            OverlayUpcall::Delivered { src, prev, payload } => {
                if let Ok(ic) = InstallChecking::from_bytes(&payload) {
                    self.install_delivered(io, ov, ic, src.proc, prev);
                }
            }
            OverlayUpcall::Forwarded {
                prev,
                next,
                payload,
                ..
            } => {
                if let Ok(ic) = InstallChecking::from_bytes(&payload) {
                    self.install_forwarded(io, ov, ic, prev, next);
                }
            }
            OverlayUpcall::RouteStuck { payload, .. } => {
                if let Ok(ic) = InstallChecking::from_bytes(&payload) {
                    // Our InstallChecking could not reach the root.
                    if ic.member.proc == self.me.proc {
                        self.initiate_member_repair(io, ic.id);
                    }
                }
            }
        }
    }

    fn install_delivered(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        ic: InstallChecking,
        src: ProcId,
        prev: ProcId,
    ) {
        if ic.root.proc != self.me.proc {
            // Routed to us although we are not the root: stale name tables.
            return;
        }
        if self.creating.contains_key(&ic.id) {
            let attempt = self.creating.get_mut(&ic.id).expect("attempt");
            attempt.early_ics.push((src, prev));
            return;
        }
        if !self.groups.contains_key(&ic.id) {
            // Group already failed: burn the fuse back toward the member.
            self.stats.hard_sent += 1;
            io.send_fuse(
                src,
                FuseMsg::HardNotification {
                    id: ic.id,
                    seq: ic.seq,
                    reason: NotifyReason::UnknownGroup,
                },
            );
            return;
        }
        self.install_arrived_at_root(io, ov, ic.id, ic.seq, src, prev);
    }

    fn install_arrived_at_root(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        id: FuseId,
        seq: u64,
        member: ProcId,
        prev: ProcId,
    ) {
        let Some(g) = self.groups.get_mut(&id) else {
            return;
        };
        if seq < g.seq {
            return; // Stale branch from before a repair.
        }
        if let RoleState::Root(rs) = &mut g.role {
            rs.install_missing.remove(&member);
            if rs.install_missing.is_empty() {
                if let Some(h) = rs.install_timer.take() {
                    io.cancel_timer(h);
                }
            }
        }
        if prev != self.me.proc {
            self.add_link(io, ov, id, prev);
        }
    }

    fn install_forwarded(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        ic: InstallChecking,
        prev: ProcId,
        next: ProcId,
    ) {
        let now = io.now();
        match self.groups.get_mut(&ic.id) {
            Some(g) => {
                if ic.seq < g.seq {
                    return;
                }
                g.seq = g.seq.max(ic.seq);
            }
            None => {
                self.groups.insert(
                    ic.id,
                    Group {
                        seq: ic.seq,
                        root: ic.root.clone(),
                        role: RoleState::Delegate,
                        created_at: now,
                        links: DetHashMap::default(),
                    },
                );
            }
        }
        if prev != self.me.proc {
            self.add_link(io, ov, ic.id, prev);
        }
        if next != self.me.proc {
            self.add_link(io, ov, ic.id, next);
        }
    }

    fn on_ping_hash(&mut self, io: &mut impl FuseIo, peer: ProcId, hash: Digest) {
        let mine = self.hash_for(peer);
        if mine == hash {
            // Agreement: refresh every (group, link) timer this hash covers.
            // (In shared-plane mode links carry no timers and this loop
            // no-ops; the detector's probe rounds are the refresh.)
            for id in self.subs.subscribers(peer) {
                self.reset_link_timer(io, id, peer);
            }
        } else {
            // Disagreement: exchange lists (§6.3).
            self.stats.reconciles += 1;
            let links = self.links_with(peer);
            io.send_fuse(peer, FuseMsg::ReconcileRequest { links });
        }
    }

    fn reconcile(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        peer: ProcId,
        theirs: &[(FuseId, u64)],
    ) {
        let their_ids: DetHashSet<FuseId> = theirs.iter().map(|&(id, _)| id).collect();
        let mine = self.subs.subscribers(peer);
        let now = io.now();
        for id in mine {
            if their_ids.contains(&id) {
                // Agreed link: treat like a refresh.
                self.reset_link_timer(io, id, peer);
            } else {
                // They do not monitor this tree with us. Outside the grace
                // period (creation race, §6.3) the disagreeing tree is torn
                // down and repaired.
                let fresh = self
                    .groups
                    .get(&id)
                    .and_then(|g| g.links.get(&peer))
                    .map(|l| now.since(l.installed_at) < self.cfg.reconcile_grace)
                    .unwrap_or(true);
                if !fresh {
                    self.local_link_failed(io, ov, id, peer);
                }
            }
        }
    }

    // ---- Timers ---------------------------------------------------------------

    /// Handles a FUSE timer.
    pub fn on_timer(&mut self, io: &mut impl FuseIo, ov: &mut OverlayNode, tag: FuseTimer) {
        match tag {
            FuseTimer::LinkExpired { id, peer } => {
                self.stats.links_expired += 1;
                self.local_link_failed(io, ov, id, peer);
            }
            FuseTimer::Liveness(t) => {
                if self.cfg.shared_plane {
                    self.drive_detector(io, ov, |det, pio| det.on_timer(pio, t));
                }
            }
            FuseTimer::CreateTimeout { id } => {
                self.create_failed(io, id, CreateError::MemberUnreachable);
            }
            FuseTimer::InstallWait { id } => {
                let needs = match self.groups.get_mut(&id) {
                    Some(Group {
                        role: RoleState::Root(rs),
                        ..
                    }) => {
                        rs.install_timer = None;
                        !rs.install_missing.is_empty()
                    }
                    _ => false,
                };
                if needs {
                    self.request_repair(io, id);
                }
            }
            FuseTimer::MemberRepairWait { id } => {
                let give_up = match self.groups.get_mut(&id) {
                    Some(Group {
                        role: RoleState::Member(ms),
                        ..
                    }) => {
                        ms.repair_wait = None;
                        true
                    }
                    _ => false,
                };
                if give_up {
                    // "If the timer fires, it signals a failure notification
                    // to the FUSE client application, sends a
                    // HardNotification message to the root, and cleans up"
                    // (§6.5).
                    let (root, seq) = {
                        let g = self.groups.get(&id).expect("member state");
                        (g.root.proc, g.seq)
                    };
                    self.stats.hard_sent += 1;
                    io.send_fuse(
                        root,
                        FuseMsg::HardNotification {
                            id,
                            seq,
                            reason: NotifyReason::LivenessExpired,
                        },
                    );
                    self.fail_locally(io, ov, id, NotifyReason::LivenessExpired);
                }
            }
            FuseTimer::RepairRound { id, seq } => {
                let failed = matches!(
                    self.groups.get(&id),
                    Some(Group {
                        role: RoleState::Root(RootState {
                            repair: Some(r),
                            ..
                        }),
                        ..
                    }) if r.seq == seq && !r.awaiting.is_empty()
                );
                if failed {
                    self.group_failed_at_root(io, ov, id, None, NotifyReason::RepairFailed);
                }
            }
            FuseTimer::RepairKick { id } => {
                self.start_repair_round(io, id);
            }
        }
    }

    /// Handles a transport-level broken connection (direct messages).
    pub fn on_link_broken(&mut self, io: &mut impl FuseIo, ov: &mut OverlayNode, peer: ProcId) {
        // Creation attempts waiting on this peer fail immediately.
        let failed_creates: Vec<FuseId> = self
            .creating
            .iter()
            .filter(|(_, a)| a.awaiting.contains(&peer))
            .map(|(&id, _)| id)
            .collect();
        for id in failed_creates {
            self.create_failed(io, id, CreateError::ConnectionBroken);
        }
        // Repair rounds waiting on this peer fail the group.
        let failed_repairs: Vec<FuseId> = self
            .groups
            .iter()
            .filter(|(_, g)| match &g.role {
                RoleState::Root(RootState {
                    repair: Some(r), ..
                }) => r.awaiting.contains(&peer),
                _ => false,
            })
            .map(|(&id, _)| id)
            .collect();
        for id in failed_repairs {
            self.group_failed_at_root(io, ov, id, None, NotifyReason::ConnectionBroken);
        }
        // §3.4 fail-on-send: groups whose data path to this peer just broke
        // are declared failed, exactly as if the sender had signalled.
        let mut bound: Vec<FuseId> = self
            .send_bound
            .iter()
            .filter(|(_, peers)| peers.contains(&peer))
            .map(|(&id, _)| id)
            .collect();
        bound.sort_unstable();
        for id in bound {
            self.declare_failed(io, ov, id, NotifyReason::ConnectionBroken);
        }
        // Liveness-tree links to this peer are gone.
        for id in self.subs.subscribers(peer) {
            self.local_link_failed(io, ov, id, peer);
        }
    }

    // ---- Shared liveness plane --------------------------------------------------

    /// Runs one detector entry point through a scratch [`PlaneIo`], then
    /// applies whatever verdicts it emitted.
    fn drive_detector<IO: FuseIo>(
        &mut self,
        io: &mut IO,
        ov: &mut OverlayNode,
        f: impl for<'a, 'b> FnOnce(&'b mut Detector, &'b mut PlaneIo<'a, IO>),
    ) {
        let neighbors = ov.neighbors();
        let mut pio = PlaneIo {
            io,
            me: self.me.proc,
            hashes: &self.hash_cache,
            neighbors: &neighbors,
            verdicts: Vec::new(),
        };
        f(&mut self.detector, &mut pio);
        let verdicts = pio.verdicts;
        for (peer, v) in verdicts {
            self.apply_verdict(io, ov, peer, v);
        }
    }

    /// Applies one shared-plane verdict. `Dead` burns exactly the groups
    /// subscribed to the peer, through the *identical* cascade a per-group
    /// `LinkExpired` fires (soft-notify the rest of the tree, then member
    /// repair give-up or root-driven repair) — that is what keeps the
    /// per-group notification guarantees intact under amortization.
    /// `Suspected` burns nothing: refutation may still arrive.
    fn apply_verdict(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        peer: ProcId,
        v: Verdict,
    ) {
        match v {
            Verdict::Suspected => self.stats.suspects += 1,
            Verdict::Refuted => self.stats.refutations += 1,
            Verdict::Dead => {
                self.stats.peer_deaths += 1;
                for id in self.subs.subscribers(peer) {
                    self.local_link_failed(io, ov, id, peer);
                }
            }
        }
    }

    /// The embedded shared-plane detector (visibility for tests and the
    /// liveness bench).
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// The verdict-subscription registry (visibility for tests and the
    /// liveness bench).
    pub fn subscriptions(&self) -> &SubscriptionRegistry<FuseId> {
        &self.subs
    }

    // ---- Failure machinery ------------------------------------------------------

    fn local_link_failed(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        id: FuseId,
        peer: ProcId,
    ) {
        let Some(g) = self.groups.get_mut(&id) else {
            return;
        };
        let Some(link) = g.links.remove(&peer) else {
            return;
        };
        if let Some(t) = link.timer {
            io.cancel_timer(t);
        }
        let seq = g.seq;
        let others: Vec<ProcId> = g.links.keys().copied().collect();
        self.unindex_link(io, ov, id, peer);
        for p in others {
            self.stats.soft_sent += 1;
            io.send_fuse(p, FuseMsg::SoftNotification { id, seq });
        }
        match &self.groups.get(&id).expect("group present").role {
            RoleState::Delegate => {
                if self.groups.get(&id).expect("present").links.is_empty() {
                    self.groups.remove(&id);
                }
            }
            RoleState::Member(_) => self.initiate_member_repair(io, id),
            RoleState::Root(_) => self.request_repair(io, id),
        }
    }

    fn initiate_member_repair(&mut self, io: &mut impl FuseIo, id: FuseId) {
        let Some(g) = self.groups.get_mut(&id) else {
            return;
        };
        let root = g.root.proc;
        let seq = g.seq;
        let RoleState::Member(ms) = &mut g.role else {
            return;
        };
        if ms.repair_wait.is_some() {
            return;
        }
        io.send_fuse(root, FuseMsg::NeedRepair { id, seq });
        ms.repair_wait = Some(io.set_fuse_timer(
            self.cfg.member_repair_timeout,
            FuseTimer::MemberRepairWait { id },
        ));
    }

    fn request_repair(&mut self, io: &mut impl FuseIo, id: FuseId) {
        let Some(g) = self.groups.get_mut(&id) else {
            return;
        };
        let RoleState::Root(rs) = &mut g.role else {
            return;
        };
        if rs.repair.is_some() {
            rs.dirty = true;
            return;
        }
        if rs.kick.is_some() {
            return;
        }
        let delay = SimDuration(rs.backoff.next_delay());
        rs.kick = Some(io.set_fuse_timer(delay, FuseTimer::RepairKick { id }));
    }

    fn start_repair_round(&mut self, io: &mut impl FuseIo, id: FuseId) {
        let Some(g) = self.groups.get_mut(&id) else {
            return;
        };
        let RoleState::Root(rs) = &mut g.role else {
            return;
        };
        rs.kick = None;
        if rs.repair.is_some() {
            rs.dirty = true;
            return;
        }
        g.seq += 1;
        let seq = g.seq;
        let awaiting: DetHashSet<ProcId> = rs.members.iter().map(|m| m.proc).collect();
        if awaiting.is_empty() {
            return;
        }
        self.stats.repairs_started += 1;
        for m in rs.members.clone() {
            io.send_fuse(
                m.proc,
                FuseMsg::GroupRepairRequest {
                    id,
                    seq,
                    root: self.me.clone(),
                },
            );
        }
        let timer = io.set_fuse_timer(
            self.cfg.root_repair_timeout,
            FuseTimer::RepairRound { id, seq },
        );
        let Some(g) = self.groups.get_mut(&id) else {
            return;
        };
        let RoleState::Root(rs) = &mut g.role else {
            return;
        };
        rs.repair = Some(RepairRound {
            seq,
            awaiting,
            timer,
        });
    }

    fn group_failed_at_root(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        id: FuseId,
        except: Option<ProcId>,
        reason: NotifyReason,
    ) {
        self.stats.repairs_failed += 1;
        if let Some(Group {
            role: RoleState::Root(rs),
            ..
        }) = self.groups.get(&id)
        {
            let seq = self.groups.get(&id).expect("present").seq;
            let mut sent = 0u64;
            for m in &rs.members {
                if Some(m.proc) != except {
                    io.send_fuse(m.proc, FuseMsg::HardNotification { id, seq, reason });
                    sent += 1;
                }
            }
            self.stats.hard_sent += sent;
        }
        self.fail_locally(io, ov, id, reason);
    }

    /// Tears down all local state for `id` and invokes the application
    /// handler when this node is a participant. Exactly-once: state presence
    /// gates the upcall.
    fn fail_locally(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        id: FuseId,
        reason: NotifyReason,
    ) {
        let Some(g) = self.groups.get(&id) else {
            return;
        };
        let seq = g.seq;
        let created_at = g.created_at;
        let role = match g.role {
            RoleState::Root(_) => Some(Role::Root),
            RoleState::Member(_) => Some(Role::Member),
            RoleState::Delegate => None,
        };
        // Clean the liveness tree below us.
        let peers: Vec<ProcId> = g.links.keys().copied().collect();
        for p in &peers {
            self.stats.soft_sent += 1;
            io.send_fuse(*p, FuseMsg::SoftNotification { id, seq });
        }
        self.clear_links(io, ov, id);
        let g = self.groups.remove(&id).expect("group present");
        match g.role {
            RoleState::Root(rs) => {
                if let Some(h) = rs.install_timer {
                    io.cancel_timer(h);
                }
                if let Some(h) = rs.kick {
                    io.cancel_timer(h);
                }
                if let Some(r) = rs.repair {
                    io.cancel_timer(r.timer);
                }
            }
            RoleState::Member(ms) => {
                if let Some(h) = ms.repair_wait {
                    io.cancel_timer(h);
                }
            }
            RoleState::Delegate => {}
        }
        let ctx = self.handlers.remove(&id);
        self.send_bound.remove(&id);
        if let Some(role) = role {
            self.stats.notifications += 1;
            io.app(FuseEvent::Notified(Notification {
                id,
                reason,
                role,
                seq,
                created_at,
                ctx,
            }));
        }
    }

    // ---- Link bookkeeping -------------------------------------------------------

    fn add_link(&mut self, io: &mut impl FuseIo, ov: &mut OverlayNode, id: FuseId, peer: ProcId) {
        debug_assert_ne!(peer, self.me.proc);
        let now = io.now();
        let timeout = self.cfg.link_failure_timeout;
        let shared = self.cfg.shared_plane;
        let Some(g) = self.groups.get_mut(&id) else {
            return;
        };
        match g.links.get_mut(&peer) {
            Some(link) => {
                if let Some(t) = link.timer.take() {
                    io.cancel_timer(t);
                }
                link.timer = (!shared)
                    .then(|| io.set_fuse_timer(timeout, FuseTimer::LinkExpired { id, peer }));
            }
            None => {
                let timer = (!shared)
                    .then(|| io.set_fuse_timer(timeout, FuseTimer::LinkExpired { id, peer }));
                g.links.insert(
                    peer,
                    Link {
                        timer,
                        installed_at: now,
                    },
                );
                let first = self.subs.subscribe(peer, id);
                if first && shared {
                    self.drive_detector(io, ov, |det, pio| det.add_peer(pio, peer));
                }
                self.push_hash(ov, peer);
            }
        }
    }

    fn reset_link_timer(&mut self, io: &mut impl FuseIo, id: FuseId, peer: ProcId) {
        let timeout = self.cfg.link_failure_timeout;
        if let Some(g) = self.groups.get_mut(&id) {
            if let Some(link) = g.links.get_mut(&peer) {
                // Shared-plane links carry no timer (`None`): nothing to
                // refresh, the node-level detector owns the peer's liveness.
                if let Some(t) = link.timer.take() {
                    io.cancel_timer(t);
                    link.timer =
                        Some(io.set_fuse_timer(timeout, FuseTimer::LinkExpired { id, peer }));
                }
            }
        }
    }

    fn unindex_link(
        &mut self,
        io: &mut impl FuseIo,
        ov: &mut OverlayNode,
        id: FuseId,
        peer: ProcId,
    ) {
        let last = self.subs.unsubscribe(peer, id);
        if last && self.cfg.shared_plane {
            self.drive_detector(io, ov, |det, pio| det.remove_peer(pio, peer));
        }
        self.push_hash(ov, peer);
    }

    fn clear_links(&mut self, io: &mut impl FuseIo, ov: &mut OverlayNode, id: FuseId) {
        let peers: Vec<ProcId> = self
            .groups
            .get(&id)
            .map(|g| g.links.keys().copied().collect())
            .unwrap_or_default();
        for peer in peers {
            if let Some(g) = self.groups.get_mut(&id) {
                if let Some(link) = g.links.remove(&peer) {
                    if let Some(t) = link.timer {
                        io.cancel_timer(t);
                    }
                }
            }
            self.unindex_link(io, ov, id, peer);
        }
    }

    /// The piggyback digest for one link, from the cache. The digest covers
    /// the sorted FUSE IDs jointly monitored on the link (paper §6.1: a
    /// 20-byte hash encoding "all the FUSE groups that use this overlay
    /// link"); [`push_hash`] refreshes the cache whenever the monitored set
    /// changes, so every `PingHash` arrival is a pure lookup.
    ///
    /// [`push_hash`]: FuseLayer::push_hash
    fn hash_for(&self, peer: ProcId) -> Digest {
        self.hash_cache
            .get(&peer)
            .copied()
            .unwrap_or_else(Digest::of_empty)
    }

    /// Recomputes the digest from scratch (cache fill and the consistency
    /// check in tests).
    fn recompute_hash(&self, peer: ProcId) -> Digest {
        let ids = self.subs.subscribers(peer);
        if ids.is_empty() {
            return Digest::of_empty();
        }
        let mut h = Sha1::new();
        for id in ids {
            h.update(&id.0.to_be_bytes());
        }
        h.finalize()
    }

    /// Whether every cached digest equals a fresh recomputation and no
    /// stale entries linger — the invariant behind taking SHA-1 off the
    /// per-ping path (test hook).
    pub fn hash_cache_consistent(&self) -> bool {
        self.subs
            .peers()
            .iter()
            .all(|&p| self.hash_cache.get(&p) == Some(&self.recompute_hash(p)))
            && self.hash_cache.keys().all(|&p| self.subs.has_peer(p))
    }

    fn push_hash(&mut self, ov: &mut OverlayNode, peer: ProcId) {
        let hash = if self.subs.has_peer(peer) {
            self.stats.hashes_computed += 1;
            let d = self.recompute_hash(peer);
            self.hash_cache.insert(peer, d);
            Some(d)
        } else {
            self.hash_cache.remove(&peer);
            None
        };
        ov.set_link_hash(peer, hash);
    }

    fn links_with(&self, peer: ProcId) -> Vec<(FuseId, u64)> {
        self.subs
            .subscribers(peer)
            .into_iter()
            .filter_map(|id| self.groups.get(&id).map(|g| (id, g.seq)))
            .collect()
    }

    fn new_backoff(&self) -> Backoff {
        Backoff::new(
            self.cfg.repair_backoff_base.nanos(),
            self.cfg.repair_backoff_cap.nanos(),
        )
    }
}
