//! The FUSE protocol state machine (paper §6).
//!
//! One [`FuseLayer`] lives on every node, above the overlay. It holds every
//! group the node participates in — as **root** (the creator, coordinator of
//! repair), **member**, or **delegate** (a non-member node on an overlay
//! route between a member and the root, holding only liveness-tree state).
//!
//! The invariant the layer maintains is the paper's *distributed one-way
//! agreement*: once any participant decides the group failed, every live
//! member's application handler is invoked exactly once, within a bounded
//! time, regardless of crashes, partitions or message loss. Failure burns
//! along the liveness tree ("the fuse"): any link that stops refreshing
//! converts into `SoftNotification`s and repair attempts, and any repair
//! that cannot complete converts into `HardNotification`s.
//!
//! Every notification carries the *cause* that burned the fuse
//! ([`NotifyReason`]): the local evidence where failure was first declared,
//! propagated on the wire inside `HardNotification` so members observe the
//! same classified cause the declaring node saw.
//!
//! The layer is sans-io: every entry point takes a `CoreCx` — a borrowed
//! bundle of `now`, the driver RNG, the stack's timer tables and the
//! [`Output`] queue — and all side effects leave as queued outputs. The
//! embedded overlay and shared-plane failure detector are driven through
//! scratch contexts whose effects are translated into the same queue, in
//! emission order.

use std::collections::VecDeque;

use fuse_liveness::{
    Detector, LivenessCx, LivenessEffect, LivenessTimer, SubscriptionRegistry, Verdict,
};
use fuse_obs::{Aggregates, Event, ObsSink, Recorder};
use fuse_overlay::node::RouteStart;
use fuse_overlay::{
    NodeInfo, OverlayCx, OverlayEffect, OverlayMsg, OverlayNode, OverlayTimer, OverlayUpcall,
};
use fuse_util::backoff::Backoff;
use fuse_util::idgen::IdGen;
use fuse_util::{DetHashMap, DetHashSet, Duration, KeyedTimers, PeerAddr, Time, TimerKey};
use fuse_wire::{Decode, Digest, EncodeBuf, Sha1};
use rand::rngs::StdRng;

use crate::messages::{FuseMsg, InstallChecking};
use crate::stack::{AppCall, Output, StackMsg};
use crate::types::{
    CreateError, CreateTicket, FuseConfig, FuseEvent, FuseId, FuseTimer, GroupHandle, Notification,
    NotifyReason, Role,
};

/// Borrowed per-call context for one FUSE-layer entry point.
///
/// Owned state lives in `FuseStack`; the stack constructs a `CoreCx` around
/// disjoint borrows of it for the duration of one call. Sends, timer
/// commands and application callbacks all leave through the shared
/// [`Output`] queue, in emission order — the property drivers rely on to
/// reproduce the simulator's event order bit-for-bit.
pub(crate) struct CoreCx<'a> {
    pub(crate) now: Time,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) fuse_timers: &'a mut KeyedTimers<FuseTimer>,
    pub(crate) liv_timers: &'a mut KeyedTimers<LivenessTimer>,
    pub(crate) ov_timers: &'a mut KeyedTimers<OverlayTimer>,
    /// Scratch buffer for overlay effects; always drained empty before an
    /// [`ov`](CoreCx::ov) call returns.
    pub(crate) ov_effects: &'a mut VecDeque<OverlayEffect>,
    /// Overlay upcalls produced by re-entrant overlay calls (routing from
    /// inside the layer); the stack feeds them back after the entry point
    /// returns.
    pub(crate) ov_upcalls: &'a mut Vec<OverlayUpcall>,
    pub(crate) out: &'a mut VecDeque<Output>,
}

impl CoreCx<'_> {
    /// Current time (driver-provided).
    pub(crate) fn now(&self) -> Time {
        self.now
    }

    /// Queues a FUSE message to a peer.
    pub(crate) fn send_fuse(&mut self, to: PeerAddr, msg: FuseMsg) {
        self.out.push_back(Output::Send {
            to,
            msg: StackMsg::Fuse(msg),
        });
    }

    /// Queues an overlay-plane message to a peer (shared-plane probes).
    pub(crate) fn send_overlay(&mut self, to: PeerAddr, msg: OverlayMsg) {
        self.out.push_back(Output::Send {
            to,
            msg: StackMsg::Overlay(msg),
        });
    }

    /// Arms a FUSE timer, returning its key.
    pub(crate) fn set_fuse_timer(&mut self, after: Duration, tag: FuseTimer) -> TimerKey {
        let key = self.fuse_timers.arm(tag);
        self.out.push_back(Output::SetTimer { key, after });
        key
    }

    /// Cancels a previously armed FUSE timer.
    pub(crate) fn cancel_fuse_timer(&mut self, key: TimerKey) {
        if self.fuse_timers.cancel(key) {
            self.out.push_back(Output::CancelTimer { key });
        }
    }

    /// Queues an application event callback.
    pub(crate) fn app(&mut self, ev: FuseEvent) {
        self.out.push_back(Output::App(AppCall::Event(ev)));
    }

    /// Runs `f` against the overlay through a scratch [`OverlayCx`], then
    /// translates the emitted overlay effects into stack outputs, in
    /// emission order. Upcalls stay buffered for the stack's drain loop.
    pub(crate) fn ov<R>(
        &mut self,
        ov: &mut OverlayNode,
        f: impl FnOnce(&mut OverlayNode, &mut OverlayCx<'_>) -> R,
    ) -> R {
        let r = {
            let mut ocx = OverlayCx::new(
                self.now,
                self.rng,
                self.ov_timers,
                self.ov_effects,
                self.ov_upcalls,
            );
            f(ov, &mut ocx)
        };
        while let Some(eff) = self.ov_effects.pop_front() {
            match eff {
                OverlayEffect::Send { to, msg } => self.out.push_back(Output::Send {
                    to,
                    msg: StackMsg::Overlay(msg),
                }),
                OverlayEffect::SetTimer { key, after } => {
                    self.out.push_back(Output::SetTimer { key, after });
                }
                OverlayEffect::CancelTimer { key } => {
                    self.out.push_back(Output::CancelTimer { key });
                }
            }
        }
        r
    }
}

/// Counter view exposed for tests and experiments.
///
/// Since the observability-plane refactor this struct holds no state of
/// its own: [`FuseLayer::stats`] computes it on demand from the layer's
/// [`fuse_obs::Aggregates`], so every consumer reads the same recorder
/// the chaos runner and benches aggregate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// Groups successfully created (root side).
    pub groups_created: u64,
    /// Creation attempts that failed.
    pub creates_failed: u64,
    /// Application failure handlers invoked on this node.
    pub notifications: u64,
    /// Hard notifications sent.
    pub hard_sent: u64,
    /// Soft notifications sent.
    pub soft_sent: u64,
    /// Repair rounds started (root side).
    pub repairs_started: u64,
    /// Repair rounds that failed (group declared dead).
    pub repairs_failed: u64,
    /// Per-(group, link) liveness timers that expired.
    pub links_expired: u64,
    /// Reconciliations triggered by hash mismatches.
    pub reconciles: u64,
    /// Piggyback digests recomputed (cache misses: the link's monitored
    /// set changed).
    pub hashes_computed: u64,
    /// Shared-plane `Suspected` verdicts observed (burn nothing by
    /// themselves).
    pub suspects: u64,
    /// Shared-plane refutations: a suspected peer proved alive in time.
    pub refutations: u64,
    /// Shared-plane `Dead` verdicts (each burns exactly the subscribed
    /// groups).
    pub peer_deaths: u64,
}

struct Link {
    /// Per-(group, link) expiry timer — `None` in shared-plane mode, where
    /// the node-level detector owns liveness for the peer.
    timer: Option<TimerKey>,
    installed_at: Time,
}

struct RootState {
    members: Vec<NodeInfo>,
    install_missing: DetHashSet<PeerAddr>,
    install_timer: Option<TimerKey>,
    repair: Option<RepairRound>,
    kick: Option<TimerKey>,
    dirty: bool,
    backoff: Backoff,
}

struct RepairRound {
    seq: u64,
    awaiting: DetHashSet<PeerAddr>,
    timer: TimerKey,
}

struct MemberState {
    repair_wait: Option<TimerKey>,
}

enum RoleState {
    Root(RootState),
    Member(MemberState),
    Delegate,
}

struct Group {
    seq: u64,
    root: NodeInfo,
    role: RoleState,
    created_at: Time,
    links: DetHashMap<PeerAddr, Link>,
}

struct CreateAttempt {
    members: Vec<NodeInfo>,
    awaiting: DetHashSet<PeerAddr>,
    timer: TimerKey,
    /// InstallChecking arrivals that raced ahead of the last create reply.
    early_ics: Vec<(PeerAddr, PeerAddr)>,
}

/// The per-node FUSE layer.
pub struct FuseLayer {
    cfg: FuseConfig,
    me: NodeInfo,
    idgen: IdGen,
    groups: DetHashMap<FuseId, Group>,
    creating: DetHashMap<FuseId, CreateAttempt>,
    /// Index: which groups monitor each link (drives the piggyback hash and,
    /// in shared-plane mode, which groups a peer verdict burns).
    subs: SubscriptionRegistry<FuseId>,
    /// Node-level SWIM-style failure detector. Constructed always, driven
    /// only when `cfg.shared_plane` is set: subscribe/unsubscribe edges add
    /// and remove probed peers, and its `Dead` verdicts replace per-(group,
    /// link) `LinkExpired` timers.
    detector: Detector,
    /// Cached per-peer piggyback digest: recomputed only when the peer's
    /// subscribed-group set changes, *not* on every `PingHash` arrival.
    hash_cache: DetHashMap<PeerAddr, Digest>,
    /// Application context registered per group via `register_handler`;
    /// returned inside the failure [`Notification`].
    handlers: DetHashMap<FuseId, u64>,
    /// Group-scoped fail-on-send bindings (§3.4): peers this node performed
    /// a `group_send` to, per group. A broken connection to a bound peer
    /// declares the group failed.
    send_bound: DetHashMap<FuseId, DetHashSet<PeerAddr>>,
    /// Reusable single-pass encode scratch for wire payloads this layer
    /// builds (`InstallChecking` envelopes): encoding reserves the exact
    /// size hint once and never re-counts or grows per message.
    ebuf: EncodeBuf,
    /// The node's observation recorder; [`FuseLayer::stats`] and
    /// [`FuseLayer::obs`] expose read-only views.
    obs: Recorder,
}

impl FuseLayer {
    /// Creates the layer for node `me`.
    pub fn new(me: NodeInfo, cfg: FuseConfig) -> Self {
        let tag = u64::from(me.proc);
        let detector = Detector::new(cfg.liveness.clone());
        let obs = Recorder::with_origin(me.proc);
        FuseLayer {
            cfg,
            me,
            idgen: IdGen::new(tag),
            groups: DetHashMap::default(),
            creating: DetHashMap::default(),
            subs: SubscriptionRegistry::default(),
            detector,
            hash_cache: DetHashMap::default(),
            handlers: DetHashMap::default(),
            send_bound: DetHashMap::default(),
            ebuf: EncodeBuf::new(),
            obs,
        }
    }

    /// The counter view, computed from the recorder aggregates.
    pub fn stats(&self) -> FuseStats {
        let a = self.obs.aggregates();
        FuseStats {
            groups_created: a.groups_created,
            creates_failed: a.creates_failed,
            notifications: a.notifications,
            hard_sent: a.hard_sent,
            soft_sent: a.soft_sent,
            repairs_started: a.repairs_started,
            repairs_failed: a.repairs_failed,
            links_expired: a.links_expired,
            reconciles: a.reconciles,
            hashes_computed: a.hashes_computed,
            suspects: a.suspects,
            refutations: a.refutations,
            peer_deaths: a.peer_deaths,
        }
    }

    /// The node's full observation aggregates (read-only).
    pub fn obs(&self) -> &Aggregates {
        self.obs.aggregates()
    }

    /// Number of live groups this node holds state for (any role).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Whether this node holds state for `id`.
    pub fn knows_group(&self, id: FuseId) -> bool {
        self.groups.contains_key(&id)
    }

    /// Whether this node holds *member or root* state for `id`.
    pub fn is_participant(&self, id: FuseId) -> bool {
        matches!(
            self.groups.get(&id).map(|g| &g.role),
            Some(RoleState::Root(_)) | Some(RoleState::Member(_))
        )
    }

    /// This node's handle for a live group it participates in.
    pub fn handle(&self, id: FuseId) -> Option<GroupHandle> {
        let g = self.groups.get(&id)?;
        let role = match g.role {
            RoleState::Root(_) => Role::Root,
            RoleState::Member(_) => Role::Member,
            RoleState::Delegate => return None,
        };
        Some(GroupHandle {
            id,
            role,
            created_at: g.created_at,
        })
    }

    /// Liveness-tree neighbors currently monitored for `id` (visibility for
    /// tests and the SV-tree census).
    pub fn tree_links(&self, id: FuseId) -> Vec<PeerAddr> {
        let mut v: Vec<PeerAddr> = self
            .groups
            .get(&id)
            .map(|g| g.links.keys().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    // ---- Public API (paper Figure 1) --------------------------------------

    /// `CreateGroup`: blocking creation of a group over `others` (the other
    /// participants; the caller is the root and an implicit participant).
    ///
    /// Returns a [`CreateTicket`] immediately; the outcome arrives as a
    /// [`FuseEvent::Created`] echoing the ticket once every member has been
    /// contacted (the paper's blocking-create semantics: success implies all
    /// members were alive and reachable).
    pub(crate) fn create_group(
        &mut self,
        cx: &mut CoreCx<'_>,
        others: Vec<NodeInfo>,
    ) -> CreateTicket {
        let id = FuseId(self.idgen.next_id());
        let ticket = CreateTicket::new(id);
        if others.is_empty() {
            // Singleton group: alive until explicitly signalled.
            let now = cx.now();
            self.groups.insert(
                id,
                Group {
                    seq: 0,
                    root: self.me.clone(),
                    role: RoleState::Root(RootState {
                        members: Vec::new(),
                        install_missing: DetHashSet::default(),
                        install_timer: None,
                        repair: None,
                        kick: None,
                        dirty: false,
                        backoff: self.new_backoff(),
                    }),
                    created_at: now,
                    links: DetHashMap::default(),
                },
            );
            self.obs.record(Event::GroupCreated);
            cx.app(FuseEvent::Created {
                ticket,
                result: Ok(GroupHandle {
                    id,
                    role: Role::Root,
                    created_at: now,
                }),
            });
            return ticket;
        }
        let awaiting: DetHashSet<PeerAddr> = others.iter().map(|m| m.proc).collect();
        for m in &others {
            cx.send_fuse(
                m.proc,
                FuseMsg::GroupCreateRequest {
                    id,
                    root: self.me.clone(),
                    members: others.clone(),
                },
            );
        }
        let timer = cx.set_fuse_timer(self.cfg.create_timeout, FuseTimer::CreateTimeout { id });
        self.creating.insert(
            id,
            CreateAttempt {
                members: others,
                awaiting,
                timer,
                early_ics: Vec::new(),
            },
        );
        ticket
    }

    /// `RegisterFailureHandler`: attaches `ctx` to the group's local failure
    /// handler; it is returned inside the [`Notification`]. If the group is
    /// unknown on this node (never existed here, or already failed), the
    /// callback fires immediately with [`NotifyReason::UnknownGroup`],
    /// exactly as §3.1 specifies.
    pub(crate) fn register_handler(&mut self, cx: &mut CoreCx<'_>, id: FuseId, ctx: u64) {
        if self.is_participant(id) {
            self.handlers.insert(id, ctx);
        } else {
            cx.app(FuseEvent::Notified(Notification {
                id,
                reason: NotifyReason::UnknownGroup,
                role: Role::Observer,
                seq: 0,
                created_at: cx.now(),
                ctx: Some(ctx),
            }));
        }
    }

    /// `SignalFailure`: explicit, application-triggered group failure.
    pub(crate) fn signal_failure(&mut self, cx: &mut CoreCx<'_>, ov: &mut OverlayNode, id: FuseId) {
        self.declare_failed(cx, ov, id, NotifyReason::ExplicitSignal);
    }

    /// Records a §3.4 fail-on-send binding: this node is about to send
    /// group-correlated data to `to`, and a broken delivery must burn the
    /// group. Returns `false` (and binds nothing) when this node does not
    /// hold live participant state for `id` — the caller should drop the
    /// payload, since the group has already failed here.
    pub fn bind_fail_on_send(&mut self, id: FuseId, to: PeerAddr) -> bool {
        if !self.is_participant(id) {
            return false;
        }
        self.send_bound.entry(id).or_default().insert(to);
        true
    }

    /// Declares `id` failed with the given evidence: the member/root halves
    /// of `SignalFailure`, shared by the explicit API and fail-on-send.
    fn declare_failed(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        id: FuseId,
        reason: NotifyReason,
    ) {
        let Some(g) = self.groups.get(&id) else {
            return; // Already failed; handler already ran.
        };
        match &g.role {
            RoleState::Root(_) => self.group_failed_at_root(cx, ov, id, None, reason),
            RoleState::Member(_) => {
                let root = g.root.proc;
                let seq = g.seq;
                self.obs.record(Event::HardSent { n: 1 });
                cx.send_fuse(root, FuseMsg::HardNotification { id, seq, reason });
                self.fail_locally(cx, ov, id, reason);
            }
            RoleState::Delegate => {
                // Only participants may signal; a delegate-only node has no
                // registered application handler for the group.
            }
        }
    }

    // ---- Message handling --------------------------------------------------

    /// Handles a FUSE message from `from`.
    pub(crate) fn on_message(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        from: PeerAddr,
        msg: FuseMsg,
    ) {
        match msg {
            FuseMsg::GroupCreateRequest { id, root, members } => {
                self.on_create_request(cx, ov, from, id, root, members);
            }
            FuseMsg::GroupCreateReply { id, ok } => {
                self.on_create_reply(cx, ov, from, id, ok);
            }
            FuseMsg::SoftNotification { id, seq } => {
                self.on_soft(cx, ov, from, id, seq);
            }
            FuseMsg::HardNotification { id, seq, reason } => {
                self.on_hard(cx, ov, from, id, seq, reason);
            }
            FuseMsg::NeedRepair { id, .. } => {
                if self
                    .groups
                    .get(&id)
                    .map(|g| matches!(g.role, RoleState::Root(_)))
                    == Some(true)
                {
                    self.request_repair(cx, id);
                } else if !self.groups.contains_key(&id) && !self.creating.contains_key(&id) {
                    // The group already failed here; burn the fuse back.
                    cx.send_fuse(
                        from,
                        FuseMsg::HardNotification {
                            id,
                            seq: u64::MAX,
                            reason: NotifyReason::UnknownGroup,
                        },
                    );
                }
            }
            FuseMsg::GroupRepairRequest { id, seq, root } => {
                self.on_repair_request(cx, ov, from, id, seq, root);
            }
            FuseMsg::GroupRepairReply { id, seq, ok } => {
                self.on_repair_reply(cx, ov, from, id, seq, ok);
            }
            FuseMsg::ReconcileRequest { links } => {
                let mine = self.links_with(from);
                cx.send_fuse(from, FuseMsg::ReconcileReply { links: mine });
                self.reconcile(cx, ov, from, &links);
            }
            FuseMsg::ReconcileReply { links } => {
                self.reconcile(cx, ov, from, &links);
            }
        }
    }

    fn on_create_request(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        from: PeerAddr,
        id: FuseId,
        root: NodeInfo,
        _members: Vec<NodeInfo>,
    ) {
        let now = cx.now();
        match self.groups.get_mut(&id) {
            Some(g) => {
                // A delegate branch for this group was installed before our
                // own create request arrived; upgrade to member.
                if matches!(g.role, RoleState::Delegate) {
                    g.role = RoleState::Member(MemberState { repair_wait: None });
                    g.root = root.clone();
                    g.created_at = now;
                }
            }
            None => {
                self.groups.insert(
                    id,
                    Group {
                        seq: 0,
                        root: root.clone(),
                        role: RoleState::Member(MemberState { repair_wait: None }),
                        created_at: now,
                        links: DetHashMap::default(),
                    },
                );
            }
        }
        cx.send_fuse(from, FuseMsg::GroupCreateReply { id, ok: true });
        self.route_install_checking(cx, ov, id, 0, root);
    }

    fn route_install_checking(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        id: FuseId,
        seq: u64,
        root: NodeInfo,
    ) {
        if root.proc == self.me.proc {
            return;
        }
        let ic = InstallChecking {
            id,
            seq,
            member: self.me.clone(),
            root: root.clone(),
        };
        let payload = self.ebuf.encode_to_bytes(&ic);
        let start = cx.ov(ov, |ov, ocx| ov.route_client(ocx, &root.name, payload));
        match start {
            RouteStart::Sent { next } => {
                self.add_link(cx, ov, id, next);
            }
            RouteStart::SelfIsTarget => {}
            RouteStart::NoRoute => {
                // No overlay path right now: fall back on root-driven repair.
                self.initiate_member_repair(cx, id);
            }
        }
    }

    fn on_create_reply(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        from: PeerAddr,
        id: FuseId,
        ok: bool,
    ) {
        let Some(attempt) = self.creating.get_mut(&id) else {
            return; // Late reply for an already-failed creation.
        };
        if !ok {
            self.create_failed(cx, id, CreateError::Refused);
            return;
        }
        attempt.awaiting.remove(&from);
        if !attempt.awaiting.is_empty() {
            return;
        }
        // Blocking create complete: every member answered.
        let attempt = self.creating.remove(&id).expect("attempt present");
        cx.cancel_fuse_timer(attempt.timer);
        let install_missing: DetHashSet<PeerAddr> =
            attempt.members.iter().map(|m| m.proc).collect();
        let install_timer =
            Some(cx.set_fuse_timer(self.cfg.install_wait, FuseTimer::InstallWait { id }));
        let now = cx.now();
        self.groups.insert(
            id,
            Group {
                seq: 0,
                root: self.me.clone(),
                role: RoleState::Root(RootState {
                    members: attempt.members,
                    install_missing,
                    install_timer,
                    repair: None,
                    kick: None,
                    dirty: false,
                    backoff: self.new_backoff(),
                }),
                created_at: now,
                links: DetHashMap::default(),
            },
        );
        self.obs.record(Event::GroupCreated);
        cx.app(FuseEvent::Created {
            ticket: CreateTicket::new(id),
            result: Ok(GroupHandle {
                id,
                role: Role::Root,
                created_at: now,
            }),
        });
        // Process InstallChecking arrivals that raced ahead.
        for (member, prev) in attempt.early_ics {
            self.install_arrived_at_root(cx, ov, id, 0, member, prev);
        }
    }

    fn create_failed(&mut self, cx: &mut CoreCx<'_>, id: FuseId, err: CreateError) {
        let Some(attempt) = self.creating.remove(&id) else {
            return;
        };
        cx.cancel_fuse_timer(attempt.timer);
        self.obs.record(Event::CreateFailed);
        // Best effort: tear down any member state already installed.
        for m in &attempt.members {
            self.obs.record(Event::HardSent { n: 1 });
            cx.send_fuse(
                m.proc,
                FuseMsg::HardNotification {
                    id,
                    seq: 0,
                    reason: NotifyReason::CreateFailed,
                },
            );
        }
        cx.app(FuseEvent::Created {
            ticket: CreateTicket::new(id),
            result: Err(err),
        });
    }

    fn on_soft(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        from: PeerAddr,
        id: FuseId,
        seq: u64,
    ) {
        let Some(g) = self.groups.get(&id) else {
            return;
        };
        if seq < g.seq {
            return; // Stale notification from before a completed repair.
        }
        // Forward along the tree, away from the originator, then drop the
        // damaged tree locally.
        let peers: Vec<PeerAddr> = g.links.keys().copied().filter(|&p| p != from).collect();
        for p in peers {
            self.obs.record(Event::SoftSent);
            cx.send_fuse(p, FuseMsg::SoftNotification { id, seq });
        }
        self.clear_links(cx, ov, id);
        match &self.groups.get(&id).expect("group present").role {
            RoleState::Delegate => {
                self.groups.remove(&id);
            }
            RoleState::Member(_) => self.initiate_member_repair(cx, id),
            RoleState::Root(_) => self.request_repair(cx, id),
        }
    }

    fn on_hard(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        from: PeerAddr,
        id: FuseId,
        _seq: u64,
        reason: NotifyReason,
    ) {
        if self.creating.contains_key(&id) {
            // A member installed state and failed before creation finished.
            self.create_failed(cx, id, CreateError::Refused);
            return;
        }
        let Some(g) = self.groups.get(&id) else {
            return; // Already failed here; handler already ran.
        };
        if matches!(g.role, RoleState::Root(_)) {
            self.group_failed_at_root(cx, ov, id, Some(from), reason);
        } else {
            self.fail_locally(cx, ov, id, reason);
        }
    }

    fn on_repair_request(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        from: PeerAddr,
        id: FuseId,
        seq: u64,
        root: NodeInfo,
    ) {
        match self.groups.get_mut(&id) {
            None => {
                // "If a repair message ever encounters a member that no
                // longer has knowledge of the group, it fails and signals a
                // HardNotification" (§6.5). Crash recovery lands here.
                cx.send_fuse(from, FuseMsg::GroupRepairReply { id, seq, ok: false });
            }
            Some(g) => {
                if seq <= g.seq {
                    // Stale repair (we already advanced); still acknowledge.
                    cx.send_fuse(from, FuseMsg::GroupRepairReply { id, seq, ok: true });
                    return;
                }
                g.seq = seq;
                if matches!(g.role, RoleState::Delegate) {
                    // A delegate that happens to also be addressed as a
                    // member (stale root view); treat conservatively as
                    // unknown membership.
                    cx.send_fuse(from, FuseMsg::GroupRepairReply { id, seq, ok: false });
                    return;
                }
                if let RoleState::Member(ms) = &mut g.role {
                    if let Some(h) = ms.repair_wait.take() {
                        cx.cancel_fuse_timer(h);
                    }
                }
                cx.send_fuse(from, FuseMsg::GroupRepairReply { id, seq, ok: true });
                self.clear_links(cx, ov, id);
                self.route_install_checking(cx, ov, id, seq, root);
            }
        }
    }

    fn on_repair_reply(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        from: PeerAddr,
        id: FuseId,
        seq: u64,
        ok: bool,
    ) {
        let Some(g) = self.groups.get_mut(&id) else {
            return;
        };
        let RoleState::Root(rs) = &mut g.role else {
            return;
        };
        let Some(round) = &mut rs.repair else {
            return;
        };
        if round.seq != seq {
            return;
        }
        if !ok {
            self.group_failed_at_root(cx, ov, id, None, NotifyReason::RepairFailed);
            return;
        }
        round.awaiting.remove(&from);
        if !round.awaiting.is_empty() {
            return;
        }
        // Round succeeded.
        let round = rs.repair.take().expect("round present");
        cx.cancel_fuse_timer(round.timer);
        rs.install_missing = rs.members.iter().map(|m| m.proc).collect();
        if let Some(h) = rs.install_timer.take() {
            cx.cancel_fuse_timer(h);
        }
        rs.install_timer =
            Some(cx.set_fuse_timer(self.cfg.install_wait, FuseTimer::InstallWait { id }));
        if rs.dirty {
            rs.dirty = false;
            self.request_repair(cx, id);
        } else {
            rs.backoff.reset();
        }
    }

    // ---- Overlay upcalls ----------------------------------------------------

    /// Handles an upcall from the overlay beneath.
    pub(crate) fn on_overlay_upcall(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        up: OverlayUpcall,
    ) {
        match up {
            OverlayUpcall::PingHash { peer, hash } => self.on_ping_hash(cx, peer, hash),
            OverlayUpcall::LinkUp { .. } => {}
            OverlayUpcall::LinkDown { peer, .. } => {
                // Dead or rerouted link: every group monitoring it soft-fails
                // that branch and repairs.
                for id in self.subs.subscribers(peer) {
                    self.local_link_failed(cx, ov, id, peer);
                }
            }
            OverlayUpcall::ProbeAcked { peer, nonce, .. } => {
                if self.cfg.shared_plane {
                    self.drive_detector(cx, ov, |det, lcx| det.on_ack(lcx, peer, nonce));
                }
            }
            OverlayUpcall::Delivered { src, prev, payload } => {
                if let Ok(ic) = InstallChecking::from_bytes(&payload) {
                    self.install_delivered(cx, ov, ic, src.proc, prev);
                }
            }
            OverlayUpcall::Forwarded {
                prev,
                next,
                payload,
                ..
            } => {
                if let Ok(ic) = InstallChecking::from_bytes(&payload) {
                    self.install_forwarded(cx, ov, ic, prev, next);
                }
            }
            OverlayUpcall::RouteStuck { payload, .. } => {
                if let Ok(ic) = InstallChecking::from_bytes(&payload) {
                    // Our InstallChecking could not reach the root.
                    if ic.member.proc == self.me.proc {
                        self.initiate_member_repair(cx, ic.id);
                    }
                }
            }
        }
    }

    fn install_delivered(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        ic: InstallChecking,
        src: PeerAddr,
        prev: PeerAddr,
    ) {
        if ic.root.proc != self.me.proc {
            // Routed to us although we are not the root: stale name tables.
            return;
        }
        if self.creating.contains_key(&ic.id) {
            let attempt = self.creating.get_mut(&ic.id).expect("attempt");
            attempt.early_ics.push((src, prev));
            return;
        }
        if !self.groups.contains_key(&ic.id) {
            // Group already failed: burn the fuse back toward the member.
            self.obs.record(Event::HardSent { n: 1 });
            cx.send_fuse(
                src,
                FuseMsg::HardNotification {
                    id: ic.id,
                    seq: ic.seq,
                    reason: NotifyReason::UnknownGroup,
                },
            );
            return;
        }
        self.install_arrived_at_root(cx, ov, ic.id, ic.seq, src, prev);
    }

    fn install_arrived_at_root(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        id: FuseId,
        seq: u64,
        member: PeerAddr,
        prev: PeerAddr,
    ) {
        let Some(g) = self.groups.get_mut(&id) else {
            return;
        };
        if seq < g.seq {
            return; // Stale branch from before a repair.
        }
        if let RoleState::Root(rs) = &mut g.role {
            rs.install_missing.remove(&member);
            if rs.install_missing.is_empty() {
                if let Some(h) = rs.install_timer.take() {
                    cx.cancel_fuse_timer(h);
                }
            }
        }
        if prev != self.me.proc {
            self.add_link(cx, ov, id, prev);
        }
    }

    fn install_forwarded(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        ic: InstallChecking,
        prev: PeerAddr,
        next: PeerAddr,
    ) {
        let now = cx.now();
        match self.groups.get_mut(&ic.id) {
            Some(g) => {
                if ic.seq < g.seq {
                    return;
                }
                g.seq = g.seq.max(ic.seq);
            }
            None => {
                self.groups.insert(
                    ic.id,
                    Group {
                        seq: ic.seq,
                        root: ic.root.clone(),
                        role: RoleState::Delegate,
                        created_at: now,
                        links: DetHashMap::default(),
                    },
                );
            }
        }
        if prev != self.me.proc {
            self.add_link(cx, ov, ic.id, prev);
        }
        if next != self.me.proc {
            self.add_link(cx, ov, ic.id, next);
        }
    }

    fn on_ping_hash(&mut self, cx: &mut CoreCx<'_>, peer: PeerAddr, hash: Digest) {
        let mine = self.hash_for(peer);
        if mine == hash {
            // Agreement: refresh every (group, link) timer this hash covers.
            // (In shared-plane mode links carry no timers and this loop
            // no-ops; the detector's probe rounds are the refresh.)
            for id in self.subs.subscribers(peer) {
                self.reset_link_timer(cx, id, peer);
            }
        } else {
            // Disagreement: exchange lists (§6.3).
            self.obs.record(Event::Reconciled);
            let links = self.links_with(peer);
            cx.send_fuse(peer, FuseMsg::ReconcileRequest { links });
        }
    }

    fn reconcile(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        peer: PeerAddr,
        theirs: &[(FuseId, u64)],
    ) {
        let their_ids: DetHashSet<FuseId> = theirs.iter().map(|&(id, _)| id).collect();
        let mine = self.subs.subscribers(peer);
        let now = cx.now();
        for id in mine {
            if their_ids.contains(&id) {
                // Agreed link: treat like a refresh.
                self.reset_link_timer(cx, id, peer);
            } else {
                // They do not monitor this tree with us. Outside the grace
                // period (creation race, §6.3) the disagreeing tree is torn
                // down and repaired.
                let fresh = self
                    .groups
                    .get(&id)
                    .and_then(|g| g.links.get(&peer))
                    .map(|l| now.since(l.installed_at) < self.cfg.reconcile_grace)
                    .unwrap_or(true);
                if !fresh {
                    self.local_link_failed(cx, ov, id, peer);
                }
            }
        }
    }

    // ---- Timers ---------------------------------------------------------------

    /// Handles a FUSE timer.
    pub(crate) fn on_timer(&mut self, cx: &mut CoreCx<'_>, ov: &mut OverlayNode, tag: FuseTimer) {
        match tag {
            FuseTimer::LinkExpired { id, peer } => {
                self.obs.record(Event::LinkExpired);
                self.local_link_failed(cx, ov, id, peer);
            }
            FuseTimer::CreateTimeout { id } => {
                self.create_failed(cx, id, CreateError::MemberUnreachable);
            }
            FuseTimer::InstallWait { id } => {
                let needs = match self.groups.get_mut(&id) {
                    Some(Group {
                        role: RoleState::Root(rs),
                        ..
                    }) => {
                        rs.install_timer = None;
                        !rs.install_missing.is_empty()
                    }
                    _ => false,
                };
                if needs {
                    self.request_repair(cx, id);
                }
            }
            FuseTimer::MemberRepairWait { id } => {
                let give_up = match self.groups.get_mut(&id) {
                    Some(Group {
                        role: RoleState::Member(ms),
                        ..
                    }) => {
                        ms.repair_wait = None;
                        true
                    }
                    _ => false,
                };
                if give_up {
                    // "If the timer fires, it signals a failure notification
                    // to the FUSE client application, sends a
                    // HardNotification message to the root, and cleans up"
                    // (§6.5).
                    let (root, seq) = {
                        let g = self.groups.get(&id).expect("member state");
                        (g.root.proc, g.seq)
                    };
                    self.obs.record(Event::HardSent { n: 1 });
                    cx.send_fuse(
                        root,
                        FuseMsg::HardNotification {
                            id,
                            seq,
                            reason: NotifyReason::LivenessExpired,
                        },
                    );
                    self.fail_locally(cx, ov, id, NotifyReason::LivenessExpired);
                }
            }
            FuseTimer::RepairRound { id, seq } => {
                let failed = matches!(
                    self.groups.get(&id),
                    Some(Group {
                        role: RoleState::Root(RootState {
                            repair: Some(r),
                            ..
                        }),
                        ..
                    }) if r.seq == seq && !r.awaiting.is_empty()
                );
                if failed {
                    self.group_failed_at_root(cx, ov, id, None, NotifyReason::RepairFailed);
                }
            }
            FuseTimer::RepairKick { id } => {
                self.start_repair_round(cx, id);
            }
        }
    }

    /// Handles a shared-plane detector timer (a `NS_LIVENESS` key resolved
    /// by the stack). Ignored when the shared plane is off.
    pub(crate) fn on_liveness_timer(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        t: LivenessTimer,
    ) {
        if self.cfg.shared_plane {
            self.drive_detector(cx, ov, |det, lcx| det.on_timer(lcx, t));
        }
    }

    /// Handles a transport-level broken connection (direct messages).
    pub(crate) fn on_link_broken(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        peer: PeerAddr,
    ) {
        // Creation attempts waiting on this peer fail immediately.
        let failed_creates: Vec<FuseId> = self
            .creating
            .iter()
            .filter(|(_, a)| a.awaiting.contains(&peer))
            .map(|(&id, _)| id)
            .collect();
        for id in failed_creates {
            self.create_failed(cx, id, CreateError::ConnectionBroken);
        }
        // Repair rounds waiting on this peer fail the group.
        let failed_repairs: Vec<FuseId> = self
            .groups
            .iter()
            .filter(|(_, g)| match &g.role {
                RoleState::Root(RootState {
                    repair: Some(r), ..
                }) => r.awaiting.contains(&peer),
                _ => false,
            })
            .map(|(&id, _)| id)
            .collect();
        for id in failed_repairs {
            self.group_failed_at_root(cx, ov, id, None, NotifyReason::ConnectionBroken);
        }
        // §3.4 fail-on-send: groups whose data path to this peer just broke
        // are declared failed, exactly as if the sender had signalled.
        let mut bound: Vec<FuseId> = self
            .send_bound
            .iter()
            .filter(|(_, peers)| peers.contains(&peer))
            .map(|(&id, _)| id)
            .collect();
        bound.sort_unstable();
        for id in bound {
            self.declare_failed(cx, ov, id, NotifyReason::ConnectionBroken);
        }
        // Liveness-tree links to this peer are gone.
        for id in self.subs.subscribers(peer) {
            self.local_link_failed(cx, ov, id, peer);
        }
    }

    // ---- Shared liveness plane --------------------------------------------------

    /// Runs one detector entry point through a scratch [`LivenessCx`], then
    /// translates its effects: probes become overlay messages carrying the
    /// link's piggyback digest, timer commands pass through, and verdicts
    /// are applied *after* the drain (the cascade a `Dead` verdict starts
    /// emits behind the detector's own sends, exactly as before).
    ///
    /// The relay pool is the overlay neighbor set (minus this node) — wider
    /// than the subscribed-peer set on purpose: a node whose groups all
    /// ride one link still gets relays, so a lossy (or adversarially
    /// dropped) direct path cannot manufacture a false kill on its own.
    fn drive_detector(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        f: impl FnOnce(&mut Detector, &mut LivenessCx<'_>),
    ) {
        let me = self.me.proc;
        let neighbors: Vec<PeerAddr> = ov.neighbors().into_iter().filter(|&p| p != me).collect();
        let mut effects: VecDeque<LivenessEffect> = VecDeque::new();
        {
            let mut lcx = LivenessCx::new(cx.now, cx.rng, cx.liv_timers, &neighbors, &mut effects);
            f(&mut self.detector, &mut lcx);
        }
        let mut verdicts = Vec::new();
        while let Some(eff) = effects.pop_front() {
            match eff {
                LivenessEffect::Probe { to, nonce } => {
                    let hash = self.hash_cache.get(&to).copied();
                    cx.send_overlay(to, OverlayMsg::Probe { nonce, hash });
                }
                LivenessEffect::Indirect {
                    relay,
                    target,
                    nonce,
                } => {
                    cx.send_overlay(
                        relay,
                        OverlayMsg::IndirectProbe {
                            origin: me,
                            target,
                            nonce,
                        },
                    );
                }
                LivenessEffect::SetTimer { key, after } => {
                    cx.out.push_back(Output::SetTimer { key, after });
                }
                LivenessEffect::CancelTimer { key } => {
                    cx.out.push_back(Output::CancelTimer { key });
                }
                LivenessEffect::Verdict { peer, verdict } => verdicts.push((peer, verdict)),
            }
        }
        for (peer, v) in verdicts {
            self.apply_verdict(cx, ov, peer, v);
        }
    }

    /// Applies one shared-plane verdict. `Dead` burns exactly the groups
    /// subscribed to the peer, through the *identical* cascade a per-group
    /// `LinkExpired` fires (soft-notify the rest of the tree, then member
    /// repair give-up or root-driven repair) — that is what keeps the
    /// per-group notification guarantees intact under amortization.
    /// `Suspected` burns nothing: refutation may still arrive.
    fn apply_verdict(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        peer: PeerAddr,
        v: Verdict,
    ) {
        match v {
            Verdict::Suspected => self.obs.record(Event::PeerSuspected),
            Verdict::Refuted => self.obs.record(Event::PeerRefuted),
            Verdict::Dead => {
                self.obs.record(Event::PeerDead);
                for id in self.subs.subscribers(peer) {
                    self.local_link_failed(cx, ov, id, peer);
                }
            }
        }
    }

    /// The embedded shared-plane detector (visibility for tests and the
    /// liveness bench).
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// The verdict-subscription registry (visibility for tests and the
    /// liveness bench).
    pub fn subscriptions(&self) -> &SubscriptionRegistry<FuseId> {
        &self.subs
    }

    // ---- Failure machinery ------------------------------------------------------

    fn local_link_failed(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        id: FuseId,
        peer: PeerAddr,
    ) {
        let Some(g) = self.groups.get_mut(&id) else {
            return;
        };
        let Some(link) = g.links.remove(&peer) else {
            return;
        };
        if let Some(t) = link.timer {
            cx.cancel_fuse_timer(t);
        }
        let seq = g.seq;
        let others: Vec<PeerAddr> = g.links.keys().copied().collect();
        self.unindex_link(cx, ov, id, peer);
        for p in others {
            self.obs.record(Event::SoftSent);
            cx.send_fuse(p, FuseMsg::SoftNotification { id, seq });
        }
        match &self.groups.get(&id).expect("group present").role {
            RoleState::Delegate => {
                if self.groups.get(&id).expect("present").links.is_empty() {
                    self.groups.remove(&id);
                }
            }
            RoleState::Member(_) => self.initiate_member_repair(cx, id),
            RoleState::Root(_) => self.request_repair(cx, id),
        }
    }

    fn initiate_member_repair(&mut self, cx: &mut CoreCx<'_>, id: FuseId) {
        let Some(g) = self.groups.get_mut(&id) else {
            return;
        };
        let root = g.root.proc;
        let seq = g.seq;
        let RoleState::Member(ms) = &mut g.role else {
            return;
        };
        if ms.repair_wait.is_some() {
            return;
        }
        cx.send_fuse(root, FuseMsg::NeedRepair { id, seq });
        ms.repair_wait = Some(cx.set_fuse_timer(
            self.cfg.member_repair_timeout,
            FuseTimer::MemberRepairWait { id },
        ));
    }

    fn request_repair(&mut self, cx: &mut CoreCx<'_>, id: FuseId) {
        let Some(g) = self.groups.get_mut(&id) else {
            return;
        };
        let RoleState::Root(rs) = &mut g.role else {
            return;
        };
        if rs.repair.is_some() {
            rs.dirty = true;
            return;
        }
        if rs.kick.is_some() {
            return;
        }
        let delay = Duration(rs.backoff.next_delay());
        rs.kick = Some(cx.set_fuse_timer(delay, FuseTimer::RepairKick { id }));
    }

    fn start_repair_round(&mut self, cx: &mut CoreCx<'_>, id: FuseId) {
        let Some(g) = self.groups.get_mut(&id) else {
            return;
        };
        let RoleState::Root(rs) = &mut g.role else {
            return;
        };
        rs.kick = None;
        if rs.repair.is_some() {
            rs.dirty = true;
            return;
        }
        g.seq += 1;
        let seq = g.seq;
        let awaiting: DetHashSet<PeerAddr> = rs.members.iter().map(|m| m.proc).collect();
        if awaiting.is_empty() {
            return;
        }
        self.obs.record(Event::RepairStarted);
        for m in rs.members.clone() {
            cx.send_fuse(
                m.proc,
                FuseMsg::GroupRepairRequest {
                    id,
                    seq,
                    root: self.me.clone(),
                },
            );
        }
        let timer = cx.set_fuse_timer(
            self.cfg.root_repair_timeout,
            FuseTimer::RepairRound { id, seq },
        );
        let Some(g) = self.groups.get_mut(&id) else {
            return;
        };
        let RoleState::Root(rs) = &mut g.role else {
            return;
        };
        rs.repair = Some(RepairRound {
            seq,
            awaiting,
            timer,
        });
    }

    fn group_failed_at_root(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        id: FuseId,
        except: Option<PeerAddr>,
        reason: NotifyReason,
    ) {
        self.obs.record(Event::RepairFailed);
        if let Some(Group {
            role: RoleState::Root(rs),
            ..
        }) = self.groups.get(&id)
        {
            let seq = self.groups.get(&id).expect("present").seq;
            let mut sent = 0u64;
            for m in &rs.members {
                if Some(m.proc) != except {
                    cx.send_fuse(m.proc, FuseMsg::HardNotification { id, seq, reason });
                    sent += 1;
                }
            }
            self.obs.record(Event::HardSent { n: sent });
        }
        self.fail_locally(cx, ov, id, reason);
    }

    /// Tears down all local state for `id` and invokes the application
    /// handler when this node is a participant. Exactly-once: state presence
    /// gates the upcall.
    fn fail_locally(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        id: FuseId,
        reason: NotifyReason,
    ) {
        let Some(g) = self.groups.get(&id) else {
            return;
        };
        let seq = g.seq;
        let created_at = g.created_at;
        let role = match g.role {
            RoleState::Root(_) => Some(Role::Root),
            RoleState::Member(_) => Some(Role::Member),
            RoleState::Delegate => None,
        };
        // Clean the liveness tree below us.
        let peers: Vec<PeerAddr> = g.links.keys().copied().collect();
        for p in &peers {
            self.obs.record(Event::SoftSent);
            cx.send_fuse(*p, FuseMsg::SoftNotification { id, seq });
        }
        self.clear_links(cx, ov, id);
        let g = self.groups.remove(&id).expect("group present");
        match g.role {
            RoleState::Root(rs) => {
                if let Some(h) = rs.install_timer {
                    cx.cancel_fuse_timer(h);
                }
                if let Some(h) = rs.kick {
                    cx.cancel_fuse_timer(h);
                }
                if let Some(r) = rs.repair {
                    cx.cancel_fuse_timer(r.timer);
                }
            }
            RoleState::Member(ms) => {
                if let Some(h) = ms.repair_wait {
                    cx.cancel_fuse_timer(h);
                }
            }
            RoleState::Delegate => {}
        }
        let ctx = self.handlers.remove(&id);
        self.send_bound.remove(&id);
        if let Some(role) = role {
            self.obs.record(Event::Notified {
                reason: reason.kind(),
                at_nanos: cx.now().nanos(),
                seq,
            });
            cx.app(FuseEvent::Notified(Notification {
                id,
                reason,
                role,
                seq,
                created_at,
                ctx,
            }));
        }
    }

    // ---- Link bookkeeping -------------------------------------------------------

    fn add_link(&mut self, cx: &mut CoreCx<'_>, ov: &mut OverlayNode, id: FuseId, peer: PeerAddr) {
        debug_assert_ne!(peer, self.me.proc);
        let now = cx.now();
        let timeout = self.cfg.link_failure_timeout;
        let shared = self.cfg.shared_plane;
        let Some(g) = self.groups.get_mut(&id) else {
            return;
        };
        match g.links.get_mut(&peer) {
            Some(link) => {
                if let Some(t) = link.timer.take() {
                    cx.cancel_fuse_timer(t);
                }
                link.timer = (!shared)
                    .then(|| cx.set_fuse_timer(timeout, FuseTimer::LinkExpired { id, peer }));
            }
            None => {
                let timer = (!shared)
                    .then(|| cx.set_fuse_timer(timeout, FuseTimer::LinkExpired { id, peer }));
                g.links.insert(
                    peer,
                    Link {
                        timer,
                        installed_at: now,
                    },
                );
                let first = self.subs.subscribe(peer, id);
                if first && shared {
                    self.drive_detector(cx, ov, |det, lcx| det.add_peer(lcx, peer));
                }
                self.push_hash(ov, peer);
            }
        }
    }

    fn reset_link_timer(&mut self, cx: &mut CoreCx<'_>, id: FuseId, peer: PeerAddr) {
        let timeout = self.cfg.link_failure_timeout;
        if let Some(g) = self.groups.get_mut(&id) {
            if let Some(link) = g.links.get_mut(&peer) {
                // Shared-plane links carry no timer (`None`): nothing to
                // refresh, the node-level detector owns the peer's liveness.
                if let Some(t) = link.timer.take() {
                    cx.cancel_fuse_timer(t);
                    link.timer =
                        Some(cx.set_fuse_timer(timeout, FuseTimer::LinkExpired { id, peer }));
                }
            }
        }
    }

    fn unindex_link(
        &mut self,
        cx: &mut CoreCx<'_>,
        ov: &mut OverlayNode,
        id: FuseId,
        peer: PeerAddr,
    ) {
        let last = self.subs.unsubscribe(peer, id);
        if last && self.cfg.shared_plane {
            self.drive_detector(cx, ov, |det, lcx| det.remove_peer(lcx, peer));
        }
        self.push_hash(ov, peer);
    }

    fn clear_links(&mut self, cx: &mut CoreCx<'_>, ov: &mut OverlayNode, id: FuseId) {
        let peers: Vec<PeerAddr> = self
            .groups
            .get(&id)
            .map(|g| g.links.keys().copied().collect())
            .unwrap_or_default();
        for peer in peers {
            if let Some(g) = self.groups.get_mut(&id) {
                if let Some(link) = g.links.remove(&peer) {
                    if let Some(t) = link.timer {
                        cx.cancel_fuse_timer(t);
                    }
                }
            }
            self.unindex_link(cx, ov, id, peer);
        }
    }

    /// The piggyback digest for one link, from the cache. The digest covers
    /// the sorted FUSE IDs jointly monitored on the link (paper §6.1: a
    /// 20-byte hash encoding "all the FUSE groups that use this overlay
    /// link"); [`push_hash`] refreshes the cache whenever the monitored set
    /// changes, so every `PingHash` arrival is a pure lookup.
    ///
    /// [`push_hash`]: FuseLayer::push_hash
    fn hash_for(&self, peer: PeerAddr) -> Digest {
        self.hash_cache
            .get(&peer)
            .copied()
            .unwrap_or_else(Digest::of_empty)
    }

    /// Recomputes the digest from scratch (cache fill and the consistency
    /// check in tests).
    fn recompute_hash(&self, peer: PeerAddr) -> Digest {
        let ids = self.subs.subscribers(peer);
        if ids.is_empty() {
            return Digest::of_empty();
        }
        let mut h = Sha1::new();
        for id in ids {
            h.update(&id.0.to_be_bytes());
        }
        h.finalize()
    }

    /// Whether every cached digest equals a fresh recomputation and no
    /// stale entries linger — the invariant behind taking SHA-1 off the
    /// per-ping path (test hook).
    pub fn hash_cache_consistent(&self) -> bool {
        self.subs
            .peers()
            .iter()
            .all(|&p| self.hash_cache.get(&p) == Some(&self.recompute_hash(p)))
            && self.hash_cache.keys().all(|&p| self.subs.has_peer(p))
    }

    fn push_hash(&mut self, ov: &mut OverlayNode, peer: PeerAddr) {
        let hash = if self.subs.has_peer(peer) {
            self.obs.record(Event::HashComputed);
            let d = self.recompute_hash(peer);
            self.hash_cache.insert(peer, d);
            Some(d)
        } else {
            self.hash_cache.remove(&peer);
            None
        };
        ov.set_link_hash(peer, hash);
    }

    fn links_with(&self, peer: PeerAddr) -> Vec<(FuseId, u64)> {
        self.subs
            .subscribers(peer)
            .into_iter()
            .filter_map(|id| self.groups.get(&id).map(|g| (id, g.seq)))
            .collect()
    }

    fn new_backoff(&self) -> Backoff {
        Backoff::new(
            self.cfg.repair_backoff_base.nanos(),
            self.cfg.repair_backoff_cap.nanos(),
        )
    }
}
