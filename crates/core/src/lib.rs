//! FUSE: lightweight guaranteed distributed failure notification.
//!
//! This crate is the paper's primary contribution: the **FUSE group**
//! abstraction with *distributed one-way agreement* semantics. An
//! application creates a group over an immutable set of nodes
//! ([`FuseApi::create_group`]); thereafter, whenever the group is declared
//! failed — explicitly by any member ([`FuseApi::signal_failure`]) or
//! implicitly by FUSE's liveness checking — **every live member hears
//! exactly one failure notification within a bounded time**, under node
//! crashes and arbitrary network failures. "Failure notifications never
//! fail."
//!
//! The implementation follows the paper's §6:
//!
//! * **Creation** is blocking: the root contacts every member directly in
//!   parallel; members install state, reply, and route `InstallChecking`
//!   messages to the root through the overlay, arming per-hop delegate
//!   timers.
//! * **Steady state** costs nothing beyond overlay maintenance: every
//!   overlay ping piggybacks a 20-byte SHA-1 hash of the FUSE IDs jointly
//!   monitored on that link; a matching hash refreshes all their timers, a
//!   mismatch triggers reconciliation (with a short grace period for
//!   creation races).
//! * **Failures** burn like a fuse: any broken or expired link produces
//!   `SoftNotification`s through the liveness tree and repair attempts
//!   (root-driven, direct, sequence-numbered, exponentially backed off);
//!   unrepairable groups produce `HardNotification`s that invoke the
//!   application handler exactly once per node.
//!
//! The [`stack`] module composes overlay ↔ FUSE ↔ application into a single
//! **sans-io** state machine, [`FuseStack`]: drivers feed it
//! `(now, `[`Input`]`)` and drain [`Output`]s — there is no transport or
//! clock in this crate. The simulation kernel and the real-socket
//! `fuse-node` binary are both thin drivers over this one surface (see the
//! `fuse_simdriver` crate and the `fuse-node` package).

pub mod layer;
pub mod messages;
pub mod stack;
pub mod types;

pub use layer::{FuseLayer, FuseStats};
pub use messages::{FuseMsg, InstallChecking};
pub use stack::{
    AppCall, FuseApi, FuseApp, FuseStack, Input, Output, StackMsg, NS_APP, NS_FUSE, NS_LIVENESS,
    NS_OVERLAY,
};
pub use types::{
    ConfigError, CreateError, CreateTicket, FuseConfig, FuseConfigBuilder, FuseEvent, FuseId,
    FuseTimer, GroupHandle, Notification, NotifyReason, Role,
};
