//! Core FUSE types: identifiers, configuration, timers and the typed
//! client-facing event model (`CreateTicket` / `GroupHandle` /
//! [`FuseEvent`]).

use fuse_liveness::LivenessConfig;
use fuse_util::{Duration, PeerAddr, Time};
use fuse_wire::{Decode, DecodeError, Encode, Reader, Writer};

/// A FUSE group identifier.
///
/// "Not bound to a process or machine" (§2): just a unique opaque token the
/// application can associate with any distributed state. Uniqueness comes
/// from mixing the creator's node tag with a local counter through a 64-bit
/// bijection (see `fuse_util::idgen`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuseId(pub u64);

impl Encode for FuseId {
    fn encode(&self, w: &mut dyn Writer) {
        self.0.encode(w);
    }

    fn size_hint(&self) -> usize {
        self.0.size_hint()
    }
}

impl Decode for FuseId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(FuseId(u64::decode(r)?))
    }
}

impl std::fmt::Display for FuseId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fuse:{:016x}", self.0)
    }
}

/// FUSE protocol configuration, defaulting to the paper's constants.
///
/// Construct via [`FuseConfig::default`] or, for anything non-default,
/// through [`FuseConfig::builder`] — the builder is the only supported way
/// to assemble a custom configuration, and [`FuseConfigBuilder::build`]
/// validates the timer-period relationships and the shared-plane relay
/// fan-out before handing the config out. The struct is `#[non_exhaustive]`
/// precisely so downstream code cannot bypass that validation with a
/// struct literal. Field *reads* are unrestricted.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct FuseConfig {
    /// Root-side timeout for the blocking group creation attempt.
    pub create_timeout: Duration,
    /// Root-side wait for `InstallChecking` arrivals after create/repair.
    pub install_wait: Duration,
    /// Member-side wait for the root to react to `NeedRepair` before
    /// declaring the group failed (paper §7.4: members time out after one
    /// minute with no repair response).
    pub member_repair_timeout: Duration,
    /// Root-side wait for repair replies before declaring the group failed
    /// (paper §7.4: the root times out after two minutes).
    pub root_repair_timeout: Duration,
    /// Per-(group, link) liveness timer: expires when no matching piggyback
    /// hash refreshes the link. Set above ping period + ping timeout so the
    /// pinging side's 20 s timeout normally detects failures first.
    pub link_failure_timeout: Duration,
    /// Grace period before hash-mismatch reconciliation may tear down a
    /// freshly installed liveness tree (paper §6.3: 5 seconds).
    pub reconcile_grace: Duration,
    /// First-retry delay of the per-group repair backoff.
    pub repair_backoff_base: Duration,
    /// Cap of the per-group repair backoff (paper §6.5: 40 seconds).
    pub repair_backoff_cap: Duration,
    /// Liveness mode switch: `false` (default) keeps the paper's
    /// per-(group, link) expiry timers; `true` amortizes liveness into the
    /// shared node-level failure-detector plane (`fuse_liveness`), where a
    /// `Dead` verdict on a peer burns exactly the groups subscribed to it.
    pub shared_plane: bool,
    /// Tuning of the shared failure detector (only read when
    /// `shared_plane` is set).
    pub liveness: LivenessConfig,
}

impl Default for FuseConfig {
    fn default() -> Self {
        FuseConfig {
            create_timeout: Duration::from_secs(10),
            install_wait: Duration::from_secs(30),
            member_repair_timeout: Duration::from_secs(60),
            root_repair_timeout: Duration::from_secs(120),
            link_failure_timeout: Duration::from_secs(90),
            reconcile_grace: Duration::from_secs(5),
            repair_backoff_base: Duration::from_secs(1),
            repair_backoff_cap: Duration::from_secs(40),
            shared_plane: false,
            liveness: LivenessConfig::default(),
        }
    }
}

impl FuseConfig {
    /// Starts a builder seeded with the paper's default constants.
    pub fn builder() -> FuseConfigBuilder {
        FuseConfigBuilder {
            cfg: FuseConfig::default(),
        }
    }
}

/// A rejected [`FuseConfigBuilder::build`]: which cross-field invariant the
/// requested configuration violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A duration that the protocol divides by or waits on was zero.
    ZeroDuration(&'static str),
    /// `repair_backoff_base` exceeds `repair_backoff_cap`, so the capped
    /// exponential backoff could never emit its base delay.
    BackoffInverted,
    /// `member_repair_timeout` exceeds `root_repair_timeout`: members would
    /// give up on groups *after* the root has already declared them dead,
    /// making the member wait pure latency with no repair opportunity.
    RepairWindowInverted,
    /// `reconcile_grace` is not shorter than `link_failure_timeout`: a
    /// freshly installed tree would stay immune to reconciliation for
    /// longer than the liveness timer that protects it.
    GraceExceedsLinkTimeout,
    /// Shared-plane mode with `k_indirect == 0`: no indirect relays means
    /// one lossy direct path can manufacture a false kill on its own.
    NoIndirectRelays,
    /// Shared-plane mode with `probe_timeout >= probe_period`: the suspect
    /// re-probe cadence (one per `probe_timeout`) would be no faster than
    /// the ordinary round cadence, leaving a recovered peer no extra
    /// refutation opportunities inside the suspicion window.
    ProbeTimeoutExceedsPeriod,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroDuration(field) => write!(f, "{field} must be non-zero"),
            ConfigError::BackoffInverted => {
                f.write_str("repair_backoff_base must not exceed repair_backoff_cap")
            }
            ConfigError::RepairWindowInverted => {
                f.write_str("member_repair_timeout must not exceed root_repair_timeout")
            }
            ConfigError::GraceExceedsLinkTimeout => {
                f.write_str("reconcile_grace must be shorter than link_failure_timeout")
            }
            ConfigError::NoIndirectRelays => {
                f.write_str("shared_plane requires liveness.k_indirect >= 1")
            }
            ConfigError::ProbeTimeoutExceedsPeriod => {
                f.write_str("shared_plane requires liveness.probe_timeout < probe_period")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`FuseConfig`]: starts from the paper's defaults, lets each
/// knob be overridden, and [`build`](FuseConfigBuilder::build) checks the
/// cross-field invariants the protocol machinery assumes.
#[derive(Debug, Clone)]
pub struct FuseConfigBuilder {
    cfg: FuseConfig,
}

impl FuseConfigBuilder {
    /// Root-side timeout for the blocking group creation attempt.
    pub fn create_timeout(mut self, d: Duration) -> Self {
        self.cfg.create_timeout = d;
        self
    }

    /// Root-side wait for `InstallChecking` arrivals after create/repair.
    pub fn install_wait(mut self, d: Duration) -> Self {
        self.cfg.install_wait = d;
        self
    }

    /// Member-side wait for the root to react to `NeedRepair`.
    pub fn member_repair_timeout(mut self, d: Duration) -> Self {
        self.cfg.member_repair_timeout = d;
        self
    }

    /// Root-side wait for repair replies.
    pub fn root_repair_timeout(mut self, d: Duration) -> Self {
        self.cfg.root_repair_timeout = d;
        self
    }

    /// Per-(group, link) liveness expiry.
    pub fn link_failure_timeout(mut self, d: Duration) -> Self {
        self.cfg.link_failure_timeout = d;
        self
    }

    /// Grace period shielding freshly installed trees from reconciliation.
    pub fn reconcile_grace(mut self, d: Duration) -> Self {
        self.cfg.reconcile_grace = d;
        self
    }

    /// First-retry delay of the per-group repair backoff.
    pub fn repair_backoff_base(mut self, d: Duration) -> Self {
        self.cfg.repair_backoff_base = d;
        self
    }

    /// Cap of the per-group repair backoff.
    pub fn repair_backoff_cap(mut self, d: Duration) -> Self {
        self.cfg.repair_backoff_cap = d;
        self
    }

    /// Switches liveness to the shared node-level detector plane.
    pub fn shared_plane(mut self, on: bool) -> Self {
        self.cfg.shared_plane = on;
        self
    }

    /// Tuning of the shared failure detector.
    pub fn liveness(mut self, l: LivenessConfig) -> Self {
        self.cfg.liveness = l;
        self
    }

    /// Validates the assembled configuration and returns it.
    pub fn build(self) -> Result<FuseConfig, ConfigError> {
        let c = &self.cfg;
        for (d, name) in [
            (c.create_timeout, "create_timeout"),
            (c.install_wait, "install_wait"),
            (c.member_repair_timeout, "member_repair_timeout"),
            (c.root_repair_timeout, "root_repair_timeout"),
            (c.link_failure_timeout, "link_failure_timeout"),
            (c.repair_backoff_base, "repair_backoff_base"),
            (c.repair_backoff_cap, "repair_backoff_cap"),
        ] {
            if d == Duration::ZERO {
                return Err(ConfigError::ZeroDuration(name));
            }
        }
        if c.repair_backoff_base > c.repair_backoff_cap {
            return Err(ConfigError::BackoffInverted);
        }
        if c.member_repair_timeout > c.root_repair_timeout {
            return Err(ConfigError::RepairWindowInverted);
        }
        if c.reconcile_grace >= c.link_failure_timeout {
            return Err(ConfigError::GraceExceedsLinkTimeout);
        }
        if c.shared_plane {
            if c.liveness.k_indirect == 0 {
                return Err(ConfigError::NoIndirectRelays);
            }
            for (d, name) in [
                (c.liveness.probe_period, "liveness.probe_period"),
                (c.liveness.probe_timeout, "liveness.probe_timeout"),
                (c.liveness.indirect_timeout, "liveness.indirect_timeout"),
                (c.liveness.suspect_timeout, "liveness.suspect_timeout"),
            ] {
                if d == Duration::ZERO {
                    return Err(ConfigError::ZeroDuration(name));
                }
            }
            if c.liveness.probe_timeout >= c.liveness.probe_period {
                return Err(ConfigError::ProbeTimeoutExceedsPeriod);
            }
        }
        Ok(self.cfg)
    }
}

/// Why a blocking group creation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateError {
    /// Some member did not answer within the creation timeout.
    MemberUnreachable,
    /// A member's transport connection broke during creation.
    ConnectionBroken,
    /// A member explicitly refused (e.g. shutting down).
    Refused,
}

/// Why a group was declared failed — the evidence class behind a
/// [`Notification`].
///
/// The layer threads the *real* local cause into every notification, and
/// `HardNotification` carries the originator's reason on the wire, so the
/// cause a member observes is the cause the declaring node actually saw
/// (per-cause latency breakdowns, Figures 8/9/12, depend on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NotifyReason {
    /// A participant called `SignalFailure` — including the §3.4
    /// fail-on-send idiom (`group_send` on a broken connection).
    ExplicitSignal,
    /// Group creation did not complete; state already installed on members
    /// is burned back.
    CreateFailed,
    /// Liveness checking expired and no repair arrived in time (member-side
    /// give-up, §6.5).
    LivenessExpired,
    /// A root-driven repair round failed: a member lost its state, or the
    /// round timed out (§6.5).
    RepairFailed,
    /// A transport connection underneath the group broke (TCP gave up).
    ConnectionBroken,
    /// The group is unknown on this node — it already failed here, or never
    /// existed (immediate callback on `RegisterFailureHandler`, §3.1).
    UnknownGroup,
}

impl NotifyReason {
    /// Every variant, in a fixed order (per-reason tallies index by this).
    pub const ALL: [NotifyReason; 6] = [
        NotifyReason::ExplicitSignal,
        NotifyReason::CreateFailed,
        NotifyReason::LivenessExpired,
        NotifyReason::RepairFailed,
        NotifyReason::ConnectionBroken,
        NotifyReason::UnknownGroup,
    ];

    /// Short label for renders and logs.
    pub fn label(self) -> &'static str {
        match self {
            NotifyReason::ExplicitSignal => "explicit-signal",
            NotifyReason::CreateFailed => "create-failed",
            NotifyReason::LivenessExpired => "liveness-expired",
            NotifyReason::RepairFailed => "repair-failed",
            NotifyReason::ConnectionBroken => "connection-broken",
            NotifyReason::UnknownGroup => "unknown-group",
        }
    }

    /// The payload-free observability-plane mirror of this reason
    /// ([`fuse_obs::ReasonKind`]): what recorded events and cross-plane
    /// comparisons carry instead of wire enums or string labels.
    pub fn kind(self) -> fuse_obs::ReasonKind {
        match self {
            NotifyReason::ExplicitSignal => fuse_obs::ReasonKind::ExplicitSignal,
            NotifyReason::CreateFailed => fuse_obs::ReasonKind::CreateFailed,
            NotifyReason::LivenessExpired => fuse_obs::ReasonKind::LivenessExpired,
            NotifyReason::RepairFailed => fuse_obs::ReasonKind::RepairFailed,
            NotifyReason::ConnectionBroken => fuse_obs::ReasonKind::ConnectionBroken,
            NotifyReason::UnknownGroup => fuse_obs::ReasonKind::UnknownGroup,
        }
    }
}

impl std::fmt::Display for NotifyReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

const REASON_SIGNAL: u8 = 1;
const REASON_CREATE: u8 = 2;
const REASON_LIVENESS: u8 = 3;
const REASON_REPAIR: u8 = 4;
const REASON_CONN: u8 = 5;
const REASON_UNKNOWN: u8 = 6;

impl Encode for NotifyReason {
    fn encode(&self, w: &mut dyn Writer) {
        let tag = match self {
            NotifyReason::ExplicitSignal => REASON_SIGNAL,
            NotifyReason::CreateFailed => REASON_CREATE,
            NotifyReason::LivenessExpired => REASON_LIVENESS,
            NotifyReason::RepairFailed => REASON_REPAIR,
            NotifyReason::ConnectionBroken => REASON_CONN,
            NotifyReason::UnknownGroup => REASON_UNKNOWN,
        };
        tag.encode(w);
    }

    fn size_hint(&self) -> usize {
        1
    }
}

impl Decode for NotifyReason {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            REASON_SIGNAL => Ok(NotifyReason::ExplicitSignal),
            REASON_CREATE => Ok(NotifyReason::CreateFailed),
            REASON_LIVENESS => Ok(NotifyReason::LivenessExpired),
            REASON_REPAIR => Ok(NotifyReason::RepairFailed),
            REASON_CONN => Ok(NotifyReason::ConnectionBroken),
            REASON_UNKNOWN => Ok(NotifyReason::UnknownGroup),
            _ => Err(DecodeError::Invalid("notify reason tag")),
        }
    }
}

/// A node's relationship to a group at notification time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// The creator and repair coordinator.
    Root,
    /// A participant that is not the root.
    Member,
    /// Not a participant: the node only registered a handler (the immediate
    /// unknown-group callback fires with this role).
    Observer,
}

/// Ticket identifying one `create_group` call.
///
/// Returned synchronously by `create_group` and echoed in the matching
/// [`FuseEvent::Created`]; replaces the old caller-supplied `token: u64`.
/// The ticket *is* the provisionally assigned group id — ids are unique per
/// creation attempt, so no separate correlation counter exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CreateTicket(FuseId);

impl CreateTicket {
    /// Wraps the provisional id of a creation attempt (layer-internal;
    /// applications receive tickets, they never forge them).
    pub(crate) fn new(id: FuseId) -> Self {
        CreateTicket(id)
    }

    /// The group id this ticket resolves to if creation succeeds.
    pub fn id(self) -> FuseId {
        self.0
    }
}

/// A successfully created group, as seen by the local node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupHandle {
    /// The group's identity (what travels on the wire and in app state).
    pub id: FuseId,
    /// This node's role in the group.
    pub role: Role,
    /// Local time the group state was installed here.
    pub created_at: Time,
}

/// One failure notification: the payload of [`FuseEvent::Notified`].
///
/// Fires exactly once per participant per group; `reason` is the evidence
/// that burned the fuse, `role`/`seq`/`created_at` are the local group
/// facts at that instant, and `ctx` returns whatever the application
/// registered through `register_handler`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Notification {
    /// The failed group.
    pub id: FuseId,
    /// Why the group failed, as observed here (or carried by the
    /// notification that reached us).
    pub reason: NotifyReason,
    /// This node's role at notification time.
    pub role: Role,
    /// The group's repair sequence number when it failed.
    pub seq: u64,
    /// When this node installed the group (`io.now()` for unknown groups).
    pub created_at: Time,
    /// Application context registered via `register_handler`, if any.
    pub ctx: Option<u64>,
}

/// Events FUSE delivers to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuseEvent {
    /// A blocking `create_group` call completed.
    Created {
        /// The ticket returned by the `create_group` call.
        ticket: CreateTicket,
        /// The new group's handle, or why creation failed.
        result: Result<GroupHandle, CreateError>,
    },
    /// The failure handler fired (exactly once per node per group).
    Notified(Notification),
}

impl FuseEvent {
    /// The notification payload, when this is a `Notified` event.
    pub fn notification(&self) -> Option<&Notification> {
        match self {
            FuseEvent::Notified(n) => Some(n),
            FuseEvent::Created { .. } => None,
        }
    }
}

/// FUSE timer tags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuseTimer {
    /// Per-(group, link) liveness expiry.
    LinkExpired {
        /// The group.
        id: FuseId,
        /// The liveness-tree neighbor.
        peer: PeerAddr,
    },
    /// Root-side creation attempt timeout.
    CreateTimeout {
        /// The group being created.
        id: FuseId,
    },
    /// Root-side wait for `InstallChecking` arrivals.
    InstallWait {
        /// The group.
        id: FuseId,
    },
    /// Member-side wait for the root after `NeedRepair`.
    MemberRepairWait {
        /// The group.
        id: FuseId,
    },
    /// Root-side repair round timeout.
    RepairRound {
        /// The group.
        id: FuseId,
        /// Sequence number of the round.
        seq: u64,
    },
    /// Root-side delayed (backed-off) repair start.
    RepairKick {
        /// The group.
        id: FuseId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuse_wire::{Decode, Encode};

    #[test]
    fn fuse_id_roundtrips() {
        let id = FuseId(0xdead_beef_1234_5678);
        let b = id.to_bytes();
        assert_eq!(FuseId::from_bytes(&b).unwrap(), id);
    }

    #[test]
    fn notify_reason_roundtrips() {
        for r in NotifyReason::ALL {
            let b = r.to_bytes();
            assert_eq!(NotifyReason::from_bytes(&b).unwrap(), r);
        }
        assert!(NotifyReason::from_bytes(&[99]).is_err());
    }

    #[test]
    fn reason_labels_are_distinct() {
        let mut labels: Vec<&str> = NotifyReason::ALL.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), NotifyReason::ALL.len());
    }

    #[test]
    fn defaults_match_paper_constants() {
        let c = FuseConfig::default();
        assert_eq!(c.member_repair_timeout, Duration::from_secs(60));
        assert_eq!(c.root_repair_timeout, Duration::from_secs(120));
        assert_eq!(c.reconcile_grace, Duration::from_secs(5));
        assert_eq!(c.repair_backoff_cap, Duration::from_secs(40));
        assert!(
            c.link_failure_timeout > Duration::from_secs(80),
            "link expiry must exceed ping period + ping timeout"
        );
        assert!(
            !c.shared_plane,
            "the paper's per-group liveness path must stay the default"
        );
    }

    #[test]
    fn builder_defaults_build_clean() {
        let built = FuseConfig::builder().build().expect("defaults are valid");
        assert_eq!(built, FuseConfig::default());
    }

    #[test]
    fn builder_rejects_zero_durations() {
        let err = FuseConfig::builder()
            .create_timeout(Duration::ZERO)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroDuration("create_timeout"));
    }

    #[test]
    fn builder_rejects_inverted_backoff() {
        let err = FuseConfig::builder()
            .repair_backoff_base(Duration::from_secs(50))
            .repair_backoff_cap(Duration::from_secs(40))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::BackoffInverted);
    }

    #[test]
    fn builder_rejects_inverted_repair_windows() {
        let err = FuseConfig::builder()
            .member_repair_timeout(Duration::from_secs(200))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::RepairWindowInverted);
    }

    #[test]
    fn builder_rejects_grace_at_or_above_link_timeout() {
        let err = FuseConfig::builder()
            .reconcile_grace(Duration::from_secs(90))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::GraceExceedsLinkTimeout);
    }

    #[test]
    fn builder_checks_liveness_only_under_shared_plane() {
        let lax = LivenessConfig {
            k_indirect: 0,
            ..LivenessConfig::default()
        };
        // Without the shared plane, the detector config is dormant.
        assert!(FuseConfig::builder().liveness(lax.clone()).build().is_ok());
        let err = FuseConfig::builder()
            .shared_plane(true)
            .liveness(lax)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::NoIndirectRelays);

        let slow_probe = LivenessConfig {
            probe_timeout: Duration::from_secs(60),
            ..LivenessConfig::default()
        };
        let err = FuseConfig::builder()
            .shared_plane(true)
            .liveness(slow_probe)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ProbeTimeoutExceedsPeriod);
    }

    #[test]
    fn config_errors_display_distinctly() {
        let errs: [ConfigError; 6] = [
            ConfigError::ZeroDuration("install_wait"),
            ConfigError::BackoffInverted,
            ConfigError::RepairWindowInverted,
            ConfigError::GraceExceedsLinkTimeout,
            ConfigError::NoIndirectRelays,
            ConfigError::ProbeTimeoutExceedsPeriod,
        ];
        let mut msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        msgs.sort_unstable();
        msgs.dedup();
        assert_eq!(msgs.len(), errs.len());
    }
}
