//! Core FUSE types: identifiers, configuration, timers and upcalls.

use fuse_sim::{ProcId, SimDuration};
use fuse_wire::{Decode, DecodeError, Encode, Reader, Writer};

/// A FUSE group identifier.
///
/// "Not bound to a process or machine" (§2): just a unique opaque token the
/// application can associate with any distributed state. Uniqueness comes
/// from mixing the creator's node tag with a local counter through a 64-bit
/// bijection (see `fuse_util::idgen`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuseId(pub u64);

impl Encode for FuseId {
    fn encode(&self, w: &mut dyn Writer) {
        self.0.encode(w);
    }
}

impl Decode for FuseId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(FuseId(u64::decode(r)?))
    }
}

impl std::fmt::Display for FuseId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fuse:{:016x}", self.0)
    }
}

/// FUSE protocol configuration, defaulting to the paper's constants.
#[derive(Debug, Clone)]
pub struct FuseConfig {
    /// Root-side timeout for the blocking group creation attempt.
    pub create_timeout: SimDuration,
    /// Root-side wait for `InstallChecking` arrivals after create/repair.
    pub install_wait: SimDuration,
    /// Member-side wait for the root to react to `NeedRepair` before
    /// declaring the group failed (paper §7.4: members time out after one
    /// minute with no repair response).
    pub member_repair_timeout: SimDuration,
    /// Root-side wait for repair replies before declaring the group failed
    /// (paper §7.4: the root times out after two minutes).
    pub root_repair_timeout: SimDuration,
    /// Per-(group, link) liveness timer: expires when no matching piggyback
    /// hash refreshes the link. Set above ping period + ping timeout so the
    /// pinging side's 20 s timeout normally detects failures first.
    pub link_failure_timeout: SimDuration,
    /// Grace period before hash-mismatch reconciliation may tear down a
    /// freshly installed liveness tree (paper §6.3: 5 seconds).
    pub reconcile_grace: SimDuration,
    /// First-retry delay of the per-group repair backoff.
    pub repair_backoff_base: SimDuration,
    /// Cap of the per-group repair backoff (paper §6.5: 40 seconds).
    pub repair_backoff_cap: SimDuration,
}

impl Default for FuseConfig {
    fn default() -> Self {
        FuseConfig {
            create_timeout: SimDuration::from_secs(10),
            install_wait: SimDuration::from_secs(30),
            member_repair_timeout: SimDuration::from_secs(60),
            root_repair_timeout: SimDuration::from_secs(120),
            link_failure_timeout: SimDuration::from_secs(90),
            reconcile_grace: SimDuration::from_secs(5),
            repair_backoff_base: SimDuration::from_secs(1),
            repair_backoff_cap: SimDuration::from_secs(40),
        }
    }
}

/// Why a blocking group creation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateError {
    /// Some member did not answer within the creation timeout.
    MemberUnreachable,
    /// A member's transport connection broke during creation.
    ConnectionBroken,
    /// A member explicitly refused (e.g. shutting down).
    Refused,
}

/// FUSE timer tags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuseTimer {
    /// Per-(group, link) liveness expiry.
    LinkExpired {
        /// The group.
        id: FuseId,
        /// The liveness-tree neighbor.
        peer: ProcId,
    },
    /// Root-side creation attempt timeout.
    CreateTimeout {
        /// The group being created.
        id: FuseId,
    },
    /// Root-side wait for `InstallChecking` arrivals.
    InstallWait {
        /// The group.
        id: FuseId,
    },
    /// Member-side wait for the root after `NeedRepair`.
    MemberRepairWait {
        /// The group.
        id: FuseId,
    },
    /// Root-side repair round timeout.
    RepairRound {
        /// The group.
        id: FuseId,
        /// Sequence number of the round.
        seq: u64,
    },
    /// Root-side delayed (backed-off) repair start.
    RepairKick {
        /// The group.
        id: FuseId,
    },
}

/// Events FUSE delivers to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuseUpcall {
    /// A blocking `create_group` call completed.
    Created {
        /// The caller-supplied token identifying the request.
        token: u64,
        /// The new group's ID, or why creation failed.
        result: Result<FuseId, CreateError>,
    },
    /// The failure handler for `id` fired (exactly once per node per group).
    Failure {
        /// The failed group.
        id: FuseId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuse_wire::{Decode, Encode};

    #[test]
    fn fuse_id_roundtrips() {
        let id = FuseId(0xdead_beef_1234_5678);
        let b = id.to_bytes();
        assert_eq!(FuseId::from_bytes(&b).unwrap(), id);
    }

    #[test]
    fn defaults_match_paper_constants() {
        let c = FuseConfig::default();
        assert_eq!(c.member_repair_timeout, SimDuration::from_secs(60));
        assert_eq!(c.root_repair_timeout, SimDuration::from_secs(120));
        assert_eq!(c.reconcile_grace, SimDuration::from_secs(5));
        assert_eq!(c.repair_backoff_cap, SimDuration::from_secs(40));
        assert!(
            c.link_failure_timeout > SimDuration::from_secs(80),
            "link expiry must exceed ping period + ping timeout"
        );
    }
}
