//! FUSE wire messages (§6.2–§6.5 of the paper).
//!
//! Creation, repair and hard notifications travel *directly* between the
//! root and the members (the design choice §6 motivates with rapid failure
//! detection); `InstallChecking` travels through the overlay inside a routed
//! client envelope; `SoftNotification`s travel hop-by-hop along the liveness
//! tree.

use fuse_wire::{Decode, DecodeError, Encode, Reader, Writer};

use fuse_overlay::NodeInfo;

use crate::types::{FuseId, NotifyReason};

/// FUSE protocol messages exchanged directly between processes.
#[derive(Debug, Clone, PartialEq)]
pub enum FuseMsg {
    /// Root → member: join this new group (blocking creation, §6.2).
    GroupCreateRequest {
        /// The new group.
        id: FuseId,
        /// The creating node (root of the liveness tree).
        root: NodeInfo,
        /// The immutable participant list.
        members: Vec<NodeInfo>,
    },
    /// Member → root: group state installed.
    GroupCreateReply {
        /// The group.
        id: FuseId,
        /// Whether the member accepted.
        ok: bool,
    },
    /// Member/root → tree neighbor: the liveness tree is damaged; clean up
    /// delegate state and (on members/root) trigger repair. Never surfaces
    /// to the application (§6.4).
    SoftNotification {
        /// The group.
        id: FuseId,
        /// Sequence number; stale notifications are discarded.
        seq: u64,
    },
    /// Group failure: invoke the application handler. Travels member → root
    /// → all members (§6.4).
    HardNotification {
        /// The group.
        id: FuseId,
        /// Sequence number (informational; hard notifications always fire).
        seq: u64,
        /// The failure cause observed by the node that burned the fuse;
        /// receivers surface it in their [`NotifyReason`]-carrying
        /// notification.
        reason: NotifyReason,
    },
    /// Member → root: my liveness checking broke, please repair (§6.5).
    NeedRepair {
        /// The group.
        id: FuseId,
        /// The member's current sequence number.
        seq: u64,
    },
    /// Root → member: rebuild liveness checking with this new sequence
    /// number (§6.5).
    GroupRepairRequest {
        /// The group.
        id: FuseId,
        /// The new sequence number.
        seq: u64,
        /// Root identity (recovered members may have lost it).
        root: NodeInfo,
    },
    /// Member → root: repair acknowledged (`ok=false` when the member no
    /// longer knows the group — which fails the repair and hard-notifies).
    GroupRepairReply {
        /// The group.
        id: FuseId,
        /// Echoed sequence number.
        seq: u64,
        /// Whether the member still holds group state.
        ok: bool,
    },
    /// Neighbor hash mismatch: here is my list of (group, seq) monitored on
    /// our shared link (§6.3).
    ReconcileRequest {
        /// Monitored groups on this link.
        links: Vec<(FuseId, u64)>,
    },
    /// Answer to reconciliation with the responder's list.
    ReconcileReply {
        /// Monitored groups on this link.
        links: Vec<(FuseId, u64)>,
    },
}

/// Payload of the `InstallChecking` message routed through the overlay
/// (§6.2): installs per-hop delegate state from the member toward the root.
#[derive(Debug, Clone, PartialEq)]
pub struct InstallChecking {
    /// The group.
    pub id: FuseId,
    /// Tree sequence number (incremented by repair).
    pub seq: u64,
    /// The member whose branch this is.
    pub member: NodeInfo,
    /// The root the branch leads to.
    pub root: NodeInfo,
}

impl Encode for InstallChecking {
    fn encode(&self, w: &mut dyn Writer) {
        self.id.encode(w);
        self.seq.encode(w);
        self.member.encode(w);
        self.root.encode(w);
    }

    fn size_hint(&self) -> usize {
        self.id.size_hint() + self.seq.size_hint() + self.member.size_hint() + self.root.size_hint()
    }
}

impl Decode for InstallChecking {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(InstallChecking {
            id: FuseId::decode(r)?,
            seq: u64::decode(r)?,
            member: NodeInfo::decode(r)?,
            root: NodeInfo::decode(r)?,
        })
    }
}

const TAG_CREATE_REQ: u8 = 1;
const TAG_CREATE_REPLY: u8 = 2;
const TAG_SOFT: u8 = 3;
const TAG_HARD: u8 = 4;
const TAG_NEED_REPAIR: u8 = 5;
const TAG_REPAIR_REQ: u8 = 6;
const TAG_REPAIR_REPLY: u8 = 7;
const TAG_RECONCILE_REQ: u8 = 8;
const TAG_RECONCILE_REPLY: u8 = 9;

impl Encode for FuseMsg {
    fn encode(&self, w: &mut dyn Writer) {
        match self {
            FuseMsg::GroupCreateRequest { id, root, members } => {
                TAG_CREATE_REQ.encode(w);
                id.encode(w);
                root.encode(w);
                members.encode(w);
            }
            FuseMsg::GroupCreateReply { id, ok } => {
                TAG_CREATE_REPLY.encode(w);
                id.encode(w);
                ok.encode(w);
            }
            FuseMsg::SoftNotification { id, seq } => {
                TAG_SOFT.encode(w);
                id.encode(w);
                seq.encode(w);
            }
            FuseMsg::HardNotification { id, seq, reason } => {
                TAG_HARD.encode(w);
                id.encode(w);
                seq.encode(w);
                reason.encode(w);
            }
            FuseMsg::NeedRepair { id, seq } => {
                TAG_NEED_REPAIR.encode(w);
                id.encode(w);
                seq.encode(w);
            }
            FuseMsg::GroupRepairRequest { id, seq, root } => {
                TAG_REPAIR_REQ.encode(w);
                id.encode(w);
                seq.encode(w);
                root.encode(w);
            }
            FuseMsg::GroupRepairReply { id, seq, ok } => {
                TAG_REPAIR_REPLY.encode(w);
                id.encode(w);
                seq.encode(w);
                ok.encode(w);
            }
            FuseMsg::ReconcileRequest { links } => {
                TAG_RECONCILE_REQ.encode(w);
                links.encode(w);
            }
            FuseMsg::ReconcileReply { links } => {
                TAG_RECONCILE_REPLY.encode(w);
                links.encode(w);
            }
        }
    }

    fn size_hint(&self) -> usize {
        1 + match self {
            FuseMsg::GroupCreateRequest { id, root, members } => {
                id.size_hint() + root.size_hint() + members.size_hint()
            }
            FuseMsg::GroupCreateReply { id, ok } => id.size_hint() + ok.size_hint(),
            FuseMsg::SoftNotification { id, seq } | FuseMsg::NeedRepair { id, seq } => {
                id.size_hint() + seq.size_hint()
            }
            FuseMsg::HardNotification { id, seq, reason } => {
                id.size_hint() + seq.size_hint() + reason.size_hint()
            }
            FuseMsg::GroupRepairRequest { id, seq, root } => {
                id.size_hint() + seq.size_hint() + root.size_hint()
            }
            FuseMsg::GroupRepairReply { id, seq, ok } => {
                id.size_hint() + seq.size_hint() + ok.size_hint()
            }
            FuseMsg::ReconcileRequest { links } | FuseMsg::ReconcileReply { links } => {
                links.size_hint()
            }
        }
    }
}

impl Decode for FuseMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            TAG_CREATE_REQ => Ok(FuseMsg::GroupCreateRequest {
                id: FuseId::decode(r)?,
                root: NodeInfo::decode(r)?,
                members: Vec::decode(r)?,
            }),
            TAG_CREATE_REPLY => Ok(FuseMsg::GroupCreateReply {
                id: FuseId::decode(r)?,
                ok: bool::decode(r)?,
            }),
            TAG_SOFT => Ok(FuseMsg::SoftNotification {
                id: FuseId::decode(r)?,
                seq: u64::decode(r)?,
            }),
            TAG_HARD => Ok(FuseMsg::HardNotification {
                id: FuseId::decode(r)?,
                seq: u64::decode(r)?,
                reason: NotifyReason::decode(r)?,
            }),
            TAG_NEED_REPAIR => Ok(FuseMsg::NeedRepair {
                id: FuseId::decode(r)?,
                seq: u64::decode(r)?,
            }),
            TAG_REPAIR_REQ => Ok(FuseMsg::GroupRepairRequest {
                id: FuseId::decode(r)?,
                seq: u64::decode(r)?,
                root: NodeInfo::decode(r)?,
            }),
            TAG_REPAIR_REPLY => Ok(FuseMsg::GroupRepairReply {
                id: FuseId::decode(r)?,
                seq: u64::decode(r)?,
                ok: bool::decode(r)?,
            }),
            TAG_RECONCILE_REQ => Ok(FuseMsg::ReconcileRequest {
                links: Vec::decode(r)?,
            }),
            TAG_RECONCILE_REPLY => Ok(FuseMsg::ReconcileReply {
                links: Vec::decode(r)?,
            }),
            _ => Err(DecodeError::Invalid("fuse message tag")),
        }
    }
}

impl FuseMsg {
    /// Metrics class label.
    pub fn class_label(&self) -> &'static str {
        match self {
            FuseMsg::GroupCreateRequest { .. } | FuseMsg::GroupCreateReply { .. } => "fuse.create",
            FuseMsg::SoftNotification { .. } => "fuse.soft",
            FuseMsg::HardNotification { .. } => "fuse.hard",
            FuseMsg::NeedRepair { .. }
            | FuseMsg::GroupRepairRequest { .. }
            | FuseMsg::GroupRepairReply { .. } => "fuse.repair",
            FuseMsg::ReconcileRequest { .. } | FuseMsg::ReconcileReply { .. } => "fuse.reconcile",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuse_overlay::NodeName;

    fn info(i: usize) -> NodeInfo {
        NodeInfo::new(i as u32, NodeName::numbered(i))
    }

    fn roundtrip(m: FuseMsg) {
        let b = m.to_bytes();
        assert_eq!(b.len(), m.wire_size());
        assert_eq!(FuseMsg::from_bytes(&b).unwrap(), m);
    }

    #[test]
    fn all_variants_roundtrip() {
        let id = FuseId(42);
        roundtrip(FuseMsg::GroupCreateRequest {
            id,
            root: info(0),
            members: vec![info(0), info(1), info(2)],
        });
        roundtrip(FuseMsg::GroupCreateReply { id, ok: true });
        roundtrip(FuseMsg::SoftNotification { id, seq: 3 });
        for reason in NotifyReason::ALL {
            roundtrip(FuseMsg::HardNotification { id, seq: 3, reason });
        }
        roundtrip(FuseMsg::NeedRepair { id, seq: 1 });
        roundtrip(FuseMsg::GroupRepairRequest {
            id,
            seq: 2,
            root: info(0),
        });
        roundtrip(FuseMsg::GroupRepairReply {
            id,
            seq: 2,
            ok: false,
        });
        roundtrip(FuseMsg::ReconcileRequest {
            links: vec![(id, 1), (FuseId(7), 0)],
        });
        roundtrip(FuseMsg::ReconcileReply { links: vec![] });
    }

    #[test]
    fn install_checking_roundtrips() {
        let ic = InstallChecking {
            id: FuseId(9),
            seq: 4,
            member: info(1),
            root: info(0),
        };
        let b = ic.to_bytes();
        assert_eq!(InstallChecking::from_bytes(&b).unwrap(), ic);
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(FuseMsg::from_bytes(&[200]).is_err());
    }
}
