//! The sans-io node stack: overlay ↔ FUSE composed as one pure state
//! machine.
//!
//! [`FuseStack`] is the driver-facing surface of this crate. It owns the
//! overlay, the FUSE layer, their timer tables and an output queue — and
//! nothing else. A driver feeds it `(now, rng, `[`Input`]`)` and drains
//! [`Output`]s; the stack never touches a socket, a clock or an event
//! queue. The same stack runs unchanged under the deterministic simulation
//! kernel (`fuse_simdriver`) and over real TCP sockets (the `fuse-node`
//! binary): only the driver differs.
//!
//! Application code hangs off the driver, not the stack: when the driver
//! pops [`Output::App`], it invokes its application callback with a
//! [`FuseApi`] built over the stack ([`FuseStack::api`]). Outputs the
//! callback generates append to the tail of the same queue, which preserves
//! the overlay → FUSE → application ordering the deterministic traces rely
//! on.
//!
//! # Example: a full group lifecycle with no driver at all
//!
//! ```
//! use fuse_core::{AppCall, FuseConfig, FuseEvent, FuseStack, Input, Output};
//! use fuse_overlay::{NodeInfo, NodeName, OverlayConfig};
//! use fuse_util::Time;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let me = NodeInfo::new(1, NodeName::numbered(1));
//! let mut stack = FuseStack::new(me, None, OverlayConfig::default(), FuseConfig::default());
//! let mut rng = StdRng::seed_from_u64(7);
//! let now = Time::ZERO;
//!
//! stack.handle(now, &mut rng, Input::Boot);
//! let mut result = None;
//! while let Some(out) = stack.poll_output() {
//!     match out {
//!         Output::App(AppCall::Boot) => {
//!             // Driver-side application code runs against the API.
//!             let mut api = stack.api(now, &mut rng);
//!             api.create_group(Vec::new()); // singleton group: root-only
//!         }
//!         Output::App(AppCall::Event(ev)) => result = Some(ev),
//!         _ => {} // Send / SetTimer / CancelTimer go to the transport
//!     }
//! }
//! assert!(matches!(result, Some(FuseEvent::Created { result: Ok(_), .. })));
//! ```

use std::collections::VecDeque;

use bytes::Bytes;

use fuse_liveness::LivenessTimer;
use fuse_overlay::{
    NodeInfo, OverlayConfig, OverlayCx, OverlayEffect, OverlayMsg, OverlayNode, OverlayTimer,
    OverlayUpcall,
};
use fuse_util::{Duration, KeyedTimers, PeerAddr, Time, TimerKey};
use fuse_wire::{Decode, DecodeError, Encode, Reader, Writer};
use rand::rngs::StdRng;

use crate::layer::{CoreCx, FuseLayer};
use crate::messages::FuseMsg;
use crate::types::{CreateTicket, FuseConfig, FuseEvent, FuseId, FuseTimer};

/// Timer-key namespace of the overlay's table.
pub const NS_OVERLAY: u8 = 0;
/// Timer-key namespace of the FUSE layer's table.
pub const NS_FUSE: u8 = 1;
/// Timer-key namespace of the shared-plane failure detector's table.
pub const NS_LIVENESS: u8 = 2;
/// Timer-key namespace of application timers.
pub const NS_APP: u8 = 3;

/// Union message type carried between node stacks.
#[derive(Debug, Clone)]
pub enum StackMsg {
    /// Overlay maintenance and routed envelopes.
    Overlay(OverlayMsg),
    /// FUSE protocol messages.
    Fuse(FuseMsg),
    /// Opaque application payloads.
    App(Bytes),
}

impl fuse_util::Payload for StackMsg {
    fn size_bytes(&self) -> usize {
        // One tag byte plus the exact encoded size of the inner message.
        // `wire_size` is single-pass arithmetic (the codec's exact size
        // hints), so per-send byte accounting costs no counting encode.
        1 + match self {
            StackMsg::Overlay(m) => m.wire_size(),
            StackMsg::Fuse(m) => m.wire_size(),
            StackMsg::App(b) => b.len(),
        }
    }

    fn class(&self) -> &'static str {
        match self {
            StackMsg::Overlay(m) => m.class_label(),
            StackMsg::Fuse(m) => m.class_label(),
            StackMsg::App(_) => "app",
        }
    }
}

const STACK_OVERLAY: u8 = 0;
const STACK_FUSE: u8 = 1;
const STACK_APP: u8 = 2;

impl Encode for StackMsg {
    fn encode(&self, w: &mut dyn Writer) {
        match self {
            StackMsg::Overlay(m) => {
                STACK_OVERLAY.encode(w);
                m.encode(w);
            }
            StackMsg::Fuse(m) => {
                STACK_FUSE.encode(w);
                m.encode(w);
            }
            StackMsg::App(b) => {
                STACK_APP.encode(w);
                b.encode(w);
            }
        }
    }

    fn size_hint(&self) -> usize {
        1 + match self {
            StackMsg::Overlay(m) => m.size_hint(),
            StackMsg::Fuse(m) => m.size_hint(),
            StackMsg::App(b) => b.size_hint(),
        }
    }
}

impl Decode for StackMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            STACK_OVERLAY => Ok(StackMsg::Overlay(OverlayMsg::decode(r)?)),
            STACK_FUSE => Ok(StackMsg::Fuse(FuseMsg::decode(r)?)),
            STACK_APP => Ok(StackMsg::App(Bytes::decode(r)?)),
            _ => Err(DecodeError::Invalid("stack message tag")),
        }
    }
}

/// One event a driver feeds into the stack.
#[derive(Debug, Clone)]
pub enum Input {
    /// The node just started; fires exactly once, first.
    Boot,
    /// A message arrived from a peer.
    Message {
        /// Sending peer.
        from: PeerAddr,
        /// The message.
        msg: StackMsg,
    },
    /// A previously requested timer expired. Feeding a stale key
    /// (cancelled or superseded) is harmless: it resolves to nothing, so
    /// lazy-cancel drivers need no bookkeeping.
    Timer(TimerKey),
    /// The transport declared the connection to `peer` broken (e.g. TCP
    /// gave up). Feeds overlay eviction and the §3.4 fail-on-send path.
    LinkBroken {
        /// The unreachable peer.
        peer: PeerAddr,
    },
}

/// One command the stack asks its driver to perform, in queue order.
#[derive(Debug, Clone)]
pub enum Output {
    /// Transmit `msg` to `to`.
    Send {
        /// Destination peer.
        to: PeerAddr,
        /// The message.
        msg: StackMsg,
    },
    /// Schedule `key` to be fed back as [`Input::Timer`] `after` from now.
    SetTimer {
        /// The timer's identity.
        key: TimerKey,
        /// Relative deadline.
        after: Duration,
    },
    /// Drop a scheduled wakeup. Optional: drivers that deliver the expiry
    /// anyway stay correct (stale keys resolve to nothing), this is purely
    /// a scheduling-load optimization.
    CancelTimer {
        /// The cancelled timer.
        key: TimerKey,
    },
    /// Invoke the driver-side application callback. Outputs produced by
    /// the callback (through [`FuseApi`]) append behind everything already
    /// queued.
    App(AppCall),
}

/// Which application callback [`Output::App`] asks the driver to run.
#[derive(Debug, Clone)]
pub enum AppCall {
    /// The node booted (`FuseApp::on_boot` in the drivers).
    Boot,
    /// A FUSE event: creation completed or a failure notification.
    Event(FuseEvent),
    /// An opaque application payload from a peer.
    Message {
        /// Sending peer.
        from: PeerAddr,
        /// The payload.
        payload: Bytes,
    },
    /// An application timer (armed via [`FuseApi::set_app_timer`]) fired.
    Timer(u64),
}

/// The composed sans-io protocol stack: overlay + FUSE, one per node.
pub struct FuseStack {
    /// The overlay layer.
    pub overlay: OverlayNode,
    /// The FUSE layer.
    pub fuse: FuseLayer,
    ov_timers: KeyedTimers<OverlayTimer>,
    fuse_timers: KeyedTimers<FuseTimer>,
    liv_timers: KeyedTimers<LivenessTimer>,
    app_timers: KeyedTimers<u64>,
    /// Scratch buffer for overlay effects; drained empty inside every
    /// entry point.
    ov_effects: VecDeque<OverlayEffect>,
    /// Overlay upcalls awaiting the FUSE layer.
    ov_upcalls: Vec<OverlayUpcall>,
    out: VecDeque<Output>,
}

impl FuseStack {
    /// Builds a stack for `me`, joining through `bootstrap` (or starting a
    /// fresh ring when `None`).
    pub fn new(
        me: NodeInfo,
        bootstrap: Option<PeerAddr>,
        ov_cfg: OverlayConfig,
        fuse_cfg: FuseConfig,
    ) -> Self {
        FuseStack {
            overlay: OverlayNode::new(me.clone(), bootstrap, ov_cfg),
            fuse: FuseLayer::new(me, fuse_cfg),
            ov_timers: KeyedTimers::new(NS_OVERLAY),
            fuse_timers: KeyedTimers::new(NS_FUSE),
            liv_timers: KeyedTimers::new(NS_LIVENESS),
            app_timers: KeyedTimers::new(NS_APP),
            ov_effects: VecDeque::new(),
            ov_upcalls: Vec::new(),
            out: VecDeque::new(),
        }
    }

    /// This node's overlay identity.
    pub fn me(&self) -> &NodeInfo {
        self.overlay.info()
    }

    /// Processes one input. All resulting commands land on the output
    /// queue; drain it with [`poll_output`](FuseStack::poll_output).
    pub fn handle(&mut self, now: Time, rng: &mut StdRng, input: Input) {
        match input {
            Input::Boot => {
                self.with_overlay(now, rng, |ov, ocx| ov.boot(ocx));
                self.drain_upcalls(now, rng);
                self.out.push_back(Output::App(AppCall::Boot));
            }
            Input::Message { from, msg } => match msg {
                StackMsg::Overlay(m) => {
                    self.with_overlay(now, rng, |ov, ocx| ov.on_message(ocx, from, m));
                    self.drain_upcalls(now, rng);
                }
                StackMsg::Fuse(m) => {
                    self.with_core(now, rng, |fuse, ov, cx| fuse.on_message(cx, ov, from, m));
                    self.drain_upcalls(now, rng);
                }
                StackMsg::App(payload) => {
                    self.out
                        .push_back(Output::App(AppCall::Message { from, payload }));
                }
            },
            Input::Timer(key) => match key.ns {
                NS_OVERLAY => {
                    if let Some(t) = self.ov_timers.fire(key) {
                        self.with_overlay(now, rng, |ov, ocx| ov.on_timer(ocx, t));
                        self.drain_upcalls(now, rng);
                    }
                }
                NS_FUSE => {
                    if let Some(t) = self.fuse_timers.fire(key) {
                        self.with_core(now, rng, |fuse, ov, cx| fuse.on_timer(cx, ov, t));
                        self.drain_upcalls(now, rng);
                    }
                }
                NS_LIVENESS => {
                    if let Some(t) = self.liv_timers.fire(key) {
                        self.with_core(now, rng, |fuse, ov, cx| fuse.on_liveness_timer(cx, ov, t));
                        self.drain_upcalls(now, rng);
                    }
                }
                NS_APP => {
                    if let Some(tag) = self.app_timers.fire(key) {
                        self.out.push_back(Output::App(AppCall::Timer(tag)));
                    }
                }
                _ => {}
            },
            Input::LinkBroken { peer } => {
                self.with_overlay(now, rng, |ov, ocx| ov.on_link_broken(ocx, peer));
                self.with_core(now, rng, |fuse, ov, cx| fuse.on_link_broken(cx, ov, peer));
                self.drain_upcalls(now, rng);
            }
        }
    }

    /// Pops the oldest queued command. Single-pop (rather than a drain
    /// iterator) so the driver can reborrow the stack between commands —
    /// which is exactly what [`Output::App`] callbacks need.
    pub fn poll_output(&mut self) -> Option<Output> {
        self.out.pop_front()
    }

    /// Builds the application-facing API over this stack. Drivers call
    /// this when an [`Output::App`] pops, and for scripted calls from
    /// experiments.
    pub fn api<'a>(&'a mut self, now: Time, rng: &'a mut StdRng) -> FuseApi<'a> {
        FuseApi {
            stack: self,
            now,
            rng,
        }
    }

    /// Runs `f` against the overlay and drains its effects onto the output
    /// queue.
    fn with_overlay<R>(
        &mut self,
        now: Time,
        rng: &mut StdRng,
        f: impl FnOnce(&mut OverlayNode, &mut OverlayCx<'_>) -> R,
    ) -> R {
        let r = {
            let mut ocx = OverlayCx::new(
                now,
                rng,
                &mut self.ov_timers,
                &mut self.ov_effects,
                &mut self.ov_upcalls,
            );
            f(&mut self.overlay, &mut ocx)
        };
        while let Some(eff) = self.ov_effects.pop_front() {
            match eff {
                OverlayEffect::Send { to, msg } => self.out.push_back(Output::Send {
                    to,
                    msg: StackMsg::Overlay(msg),
                }),
                OverlayEffect::SetTimer { key, after } => {
                    self.out.push_back(Output::SetTimer { key, after });
                }
                OverlayEffect::CancelTimer { key } => {
                    self.out.push_back(Output::CancelTimer { key });
                }
            }
        }
        r
    }

    /// Runs `f` against the FUSE layer through a [`CoreCx`] over this
    /// stack's state.
    fn with_core<R>(
        &mut self,
        now: Time,
        rng: &mut StdRng,
        f: impl FnOnce(&mut FuseLayer, &mut OverlayNode, &mut CoreCx<'_>) -> R,
    ) -> R {
        let mut cx = CoreCx {
            now,
            rng,
            fuse_timers: &mut self.fuse_timers,
            liv_timers: &mut self.liv_timers,
            ov_timers: &mut self.ov_timers,
            ov_effects: &mut self.ov_effects,
            ov_upcalls: &mut self.ov_upcalls,
            out: &mut self.out,
        };
        f(&mut self.fuse, &mut self.overlay, &mut cx)
    }

    /// Replays buffered overlay upcalls through the FUSE layer until
    /// quiescent (processing one batch may produce another).
    fn drain_upcalls(&mut self, now: Time, rng: &mut StdRng) {
        while !self.ov_upcalls.is_empty() {
            let batch: Vec<OverlayUpcall> = std::mem::take(&mut self.ov_upcalls);
            for up in batch {
                self.with_core(now, rng, |fuse, ov, cx| fuse.on_overlay_upcall(cx, ov, up));
            }
        }
    }
}

/// What the application sees: the FUSE API of the paper's Figure 1, plus
/// app-level messaging and timers. Built by [`FuseStack::api`]; everything
/// it does lands on the stack's output queue behind the commands already
/// there.
pub struct FuseApi<'a> {
    stack: &'a mut FuseStack,
    now: Time,
    rng: &'a mut StdRng,
}

impl FuseApi<'_> {
    /// Current time (driver-provided).
    pub fn now(&self) -> Time {
        self.now
    }

    /// This node's overlay identity.
    pub fn me(&self) -> NodeInfo {
        self.stack.overlay.info().clone()
    }

    /// `CreateGroup` (Figure 1): asynchronous-blocking creation. The
    /// returned [`CreateTicket`] is echoed by the completion event,
    /// [`FuseEvent::Created`].
    pub fn create_group(&mut self, others: Vec<NodeInfo>) -> CreateTicket {
        let t = self.stack.with_core(self.now, self.rng, |fuse, _ov, cx| {
            fuse.create_group(cx, others)
        });
        self.stack.drain_upcalls(self.now, self.rng);
        t
    }

    /// `RegisterFailureHandler` (Figure 1): attaches `ctx` to the group's
    /// failure handler; it comes back inside the
    /// [`Notification`](crate::types::Notification). Unknown groups fire
    /// immediately (§3.1).
    pub fn register_handler(&mut self, id: FuseId, ctx: u64) {
        self.stack.with_core(self.now, self.rng, |fuse, _ov, cx| {
            fuse.register_handler(cx, id, ctx);
        });
        self.stack.drain_upcalls(self.now, self.rng);
    }

    /// `SignalFailure` (Figure 1).
    pub fn signal_failure(&mut self, id: FuseId) {
        self.stack.with_core(self.now, self.rng, |fuse, ov, cx| {
            fuse.signal_failure(cx, ov, id);
        });
        self.stack.drain_upcalls(self.now, self.rng);
    }

    /// Sends `payload` to `to` under group `id`'s fate-sharing contract —
    /// the §3.4 fail-on-send idiom as a first-class API. If the transport
    /// later reports the connection to `to` broken, the group is declared
    /// failed (reason `ConnectionBroken`) without any application-level
    /// plumbing. Returns `false` and drops the payload when this node no
    /// longer holds live participant state for `id` (the group already
    /// failed here; the handler has already run).
    pub fn group_send(&mut self, id: FuseId, to: PeerAddr, payload: Bytes) -> bool {
        if !self.stack.fuse.bind_fail_on_send(id, to) {
            return false;
        }
        self.stack.out.push_back(Output::Send {
            to,
            msg: StackMsg::App(payload),
        });
        true
    }

    /// Sends an opaque application payload to a peer (no fate sharing; see
    /// [`group_send`](FuseApi::group_send) for the fail-on-send variant).
    pub fn send_app(&mut self, to: PeerAddr, payload: Bytes) {
        self.stack.out.push_back(Output::Send {
            to,
            msg: StackMsg::App(payload),
        });
    }

    /// Arms an application timer; it comes back as
    /// [`AppCall::Timer`]`(tag)`.
    pub fn set_app_timer(&mut self, after: Duration, tag: u64) -> TimerKey {
        let key = self.stack.app_timers.arm(tag);
        self.stack.out.push_back(Output::SetTimer { key, after });
        key
    }

    /// Cancels any timer key (whatever namespace it belongs to).
    pub fn cancel_timer(&mut self, key: TimerKey) {
        let live = match key.ns {
            NS_OVERLAY => self.stack.ov_timers.cancel(key),
            NS_FUSE => self.stack.fuse_timers.cancel(key),
            NS_LIVENESS => self.stack.liv_timers.cancel(key),
            NS_APP => self.stack.app_timers.cancel(key),
            _ => false,
        };
        if live {
            self.stack.out.push_back(Output::CancelTimer { key });
        }
    }

    /// Deterministic randomness (driver-provided).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Read access to the FUSE layer (state introspection).
    pub fn fuse(&self) -> &FuseLayer {
        &self.stack.fuse
    }

    /// Read access to the overlay (routing-table visibility, §6.1).
    pub fn overlay(&self) -> &OverlayNode {
        &self.stack.overlay
    }
}

/// A FUSE application: receives the API plus FUSE events. Drivers (the sim
/// kernel's `NodeStack`, the `fuse-node` binary) dispatch [`AppCall`]s to
/// these methods.
pub trait FuseApp: Sized {
    /// Called once at process start.
    fn on_boot(&mut self, api: &mut FuseApi<'_>) {
        let _ = api;
    }

    /// A FUSE event (creation completed, or a failure notification).
    fn on_fuse_event(&mut self, api: &mut FuseApi<'_>, ev: FuseEvent);

    /// An application payload from a peer.
    fn on_app_message(&mut self, api: &mut FuseApi<'_>, from: PeerAddr, payload: Bytes) {
        let _ = (api, from, payload);
    }

    /// An application timer fired.
    fn on_app_timer(&mut self, api: &mut FuseApi<'_>, tag: u64) {
        let _ = (api, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuse_overlay::NodeName;
    use rand::SeedableRng;

    fn stack(i: usize) -> FuseStack {
        FuseStack::new(
            NodeInfo::new(i as PeerAddr, NodeName::numbered(i)),
            None,
            OverlayConfig::default(),
            FuseConfig::default(),
        )
    }

    #[test]
    fn boot_emits_app_boot_last() {
        let mut s = stack(1);
        let mut rng = StdRng::seed_from_u64(1);
        s.handle(Time::ZERO, &mut rng, Input::Boot);
        let mut outs = Vec::new();
        while let Some(o) = s.poll_output() {
            outs.push(o);
        }
        assert!(
            matches!(outs.last(), Some(Output::App(AppCall::Boot))),
            "boot callback must trail the overlay's own boot effects"
        );
    }

    #[test]
    fn stale_timer_keys_are_inert() {
        let mut s = stack(1);
        let mut rng = StdRng::seed_from_u64(1);
        s.handle(Time::ZERO, &mut rng, Input::Boot);
        while s.poll_output().is_some() {}
        // A key that was never armed (wrong generation) does nothing.
        let bogus = TimerKey {
            ns: NS_FUSE,
            slot: 0,
            gen: 99,
        };
        s.handle(Time(1), &mut rng, Input::Timer(bogus));
        assert!(s.poll_output().is_none());
    }

    #[test]
    fn app_timer_roundtrip() {
        let mut s = stack(1);
        let mut rng = StdRng::seed_from_u64(1);
        s.handle(Time::ZERO, &mut rng, Input::Boot);
        while s.poll_output().is_some() {}
        let key = s.api(Time(1), &mut rng).set_app_timer(Duration(5), 42);
        assert!(matches!(
            s.poll_output(),
            Some(Output::SetTimer { key: k, after: Duration(5) }) if k == key
        ));
        s.handle(Time(6), &mut rng, Input::Timer(key));
        assert!(matches!(
            s.poll_output(),
            Some(Output::App(AppCall::Timer(42)))
        ));
        // Firing consumed the key; replaying it is inert.
        s.handle(Time(7), &mut rng, Input::Timer(key));
        assert!(s.poll_output().is_none());
    }

    #[test]
    fn app_payloads_surface_as_app_calls() {
        let mut s = stack(1);
        let mut rng = StdRng::seed_from_u64(1);
        s.handle(Time::ZERO, &mut rng, Input::Boot);
        while s.poll_output().is_some() {}
        s.handle(
            Time(1),
            &mut rng,
            Input::Message {
                from: 9,
                msg: StackMsg::App(Bytes::from_static(b"hi")),
            },
        );
        match s.poll_output() {
            Some(Output::App(AppCall::Message { from, payload })) => {
                assert_eq!(from, 9);
                assert_eq!(&payload[..], b"hi");
            }
            other => panic!("expected app message, got {other:?}"),
        }
    }

    #[test]
    fn stack_msg_roundtrips_on_the_wire() {
        let msgs = [
            StackMsg::Fuse(FuseMsg::SoftNotification {
                id: FuseId(7),
                seq: 3,
            }),
            StackMsg::App(Bytes::from_static(b"payload")),
        ];
        for m in msgs {
            let bytes = m.to_bytes();
            assert_eq!(bytes.len(), m.size_hint());
            let back = StackMsg::from_bytes(&bytes).expect("decodes");
            match (&m, &back) {
                (StackMsg::Fuse(_), StackMsg::Fuse(_)) => {}
                (StackMsg::App(a), StackMsg::App(b)) => assert_eq!(a, b),
                _ => panic!("variant changed across the wire"),
            }
        }
        assert!(StackMsg::from_bytes(&[9]).is_err());
    }
}
