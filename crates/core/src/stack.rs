//! The node stack: transport ↔ overlay ↔ FUSE ↔ application, as one
//! simulated process.
//!
//! The stack is the "base messaging layer" glue the paper swaps between its
//! simulator and its cluster: protocol layers never touch the kernel
//! directly — a private `Shim` implementing [`OverlayIo`] and [`FuseIo`]
//! adapts the kernel's handler context, buffers inter-layer upcalls, and
//! replays them in order (overlay → FUSE → application).

use bytes::Bytes;

use fuse_overlay::{
    NodeInfo, OverlayConfig, OverlayIo, OverlayMsg, OverlayNode, OverlayTimer, OverlayUpcall,
};
use fuse_sim::process::Ctx;
use fuse_sim::{Payload, ProcId, Process, SimDuration, SimTime, TimerHandle};
use fuse_wire::Encode;

use crate::layer::{FuseIo, FuseLayer};
use crate::messages::FuseMsg;
use crate::types::{CreateTicket, FuseConfig, FuseEvent, FuseId, FuseTimer};

/// Union message type carried between node stacks.
#[derive(Debug, Clone)]
pub enum StackMsg {
    /// Overlay maintenance and routed envelopes.
    Overlay(OverlayMsg),
    /// FUSE protocol messages.
    Fuse(FuseMsg),
    /// Opaque application payloads.
    App(Bytes),
}

impl Payload for StackMsg {
    fn size_bytes(&self) -> usize {
        // One tag byte plus the exact encoded size of the inner message.
        // `wire_size` is single-pass arithmetic (the codec's exact size
        // hints), so per-send byte accounting costs no counting encode.
        1 + match self {
            StackMsg::Overlay(m) => m.wire_size(),
            StackMsg::Fuse(m) => m.wire_size(),
            StackMsg::App(b) => b.len(),
        }
    }

    fn class(&self) -> &'static str {
        match self {
            StackMsg::Overlay(m) => m.class_label(),
            StackMsg::Fuse(m) => m.class_label(),
            StackMsg::App(_) => "app",
        }
    }
}

/// Union timer tag.
#[derive(Debug, Clone)]
pub enum StackTimer {
    /// Overlay timers (pings, maintenance, join).
    Overlay(OverlayTimer),
    /// FUSE timers (liveness, create, repair).
    Fuse(FuseTimer),
    /// Application timers.
    App(u64),
}

/// The adapter the protocol layers see instead of the kernel.
struct Shim<'a, 'b> {
    ctx: &'a mut Ctx<'b, StackMsg, StackTimer>,
    ov_up: &'a mut Vec<OverlayUpcall>,
    app_up: &'a mut Vec<FuseEvent>,
}

impl OverlayIo for Shim<'_, '_> {
    fn now(&self) -> SimTime {
        self.ctx.now
    }

    fn rng(&mut self) -> &mut rand::rngs::StdRng {
        self.ctx.rng()
    }

    fn send(&mut self, to: ProcId, msg: OverlayMsg) {
        self.ctx.send(to, StackMsg::Overlay(msg));
    }

    fn set_timer(&mut self, after: SimDuration, tag: OverlayTimer) -> TimerHandle {
        self.ctx.set_timer(after, StackTimer::Overlay(tag))
    }

    fn cancel_timer(&mut self, h: TimerHandle) {
        self.ctx.cancel_timer(h);
    }

    fn upcall(&mut self, ev: OverlayUpcall) {
        self.ov_up.push(ev);
    }
}

impl FuseIo for Shim<'_, '_> {
    fn send_fuse(&mut self, to: ProcId, msg: FuseMsg) {
        self.ctx.send(to, StackMsg::Fuse(msg));
    }

    fn set_fuse_timer(&mut self, after: SimDuration, tag: FuseTimer) -> TimerHandle {
        self.ctx.set_timer(after, StackTimer::Fuse(tag))
    }

    fn app(&mut self, ev: FuseEvent) {
        self.app_up.push(ev);
    }
}

/// What the application sees: the FUSE API of the paper's Figure 1, plus
/// app-level messaging and timers.
pub struct FuseApi<'a, 'b, 'c> {
    fuse: &'a mut FuseLayer,
    overlay: &'a mut OverlayNode,
    io: Shim<'a, 'c>,
    _marker: std::marker::PhantomData<&'b ()>,
}

impl FuseApi<'_, '_, '_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.io.now()
    }

    /// This node's overlay identity.
    pub fn me(&self) -> NodeInfo {
        self.overlay.info().clone()
    }

    /// `CreateGroup` (Figure 1): asynchronous-blocking creation. The
    /// returned [`CreateTicket`] is echoed by the completion event,
    /// [`FuseEvent::Created`].
    pub fn create_group(&mut self, others: Vec<NodeInfo>) -> CreateTicket {
        self.fuse.create_group(&mut self.io, others)
    }

    /// `RegisterFailureHandler` (Figure 1): attaches `ctx` to the group's
    /// failure handler; it comes back inside the
    /// [`Notification`](crate::types::Notification). Unknown groups fire
    /// immediately (§3.1).
    pub fn register_handler(&mut self, id: FuseId, ctx: u64) {
        self.fuse.register_handler(&mut self.io, id, ctx);
    }

    /// `SignalFailure` (Figure 1).
    pub fn signal_failure(&mut self, id: FuseId) {
        self.fuse.signal_failure(&mut self.io, self.overlay, id);
    }

    /// Sends `payload` to `to` under group `id`'s fate-sharing contract —
    /// the §3.4 fail-on-send idiom as a first-class API. If the transport
    /// later reports the connection to `to` broken, the group is declared
    /// failed (reason `ConnectionBroken`) without any application-level
    /// plumbing. Returns `false` and drops the payload when this node no
    /// longer holds live participant state for `id` (the group already
    /// failed here; the handler has already run).
    pub fn group_send(&mut self, id: FuseId, to: ProcId, payload: Bytes) -> bool {
        if !self.fuse.bind_fail_on_send(id, to) {
            return false;
        }
        self.io.ctx.send(to, StackMsg::App(payload));
        true
    }

    /// Sends an opaque application payload to a peer (no fate sharing; see
    /// [`group_send`](FuseApi::group_send) for the fail-on-send variant).
    pub fn send_app(&mut self, to: ProcId, payload: Bytes) {
        self.io.ctx.send(to, StackMsg::App(payload));
    }

    /// Arms an application timer.
    pub fn set_app_timer(&mut self, after: SimDuration, tag: u64) -> TimerHandle {
        self.io.ctx.set_timer(after, StackTimer::App(tag))
    }

    /// Cancels any timer handle.
    pub fn cancel_timer(&mut self, h: TimerHandle) {
        self.io.ctx.cancel_timer(h);
    }

    /// Deterministic randomness.
    pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
        self.io.ctx.rng()
    }

    /// Read access to the FUSE layer (state introspection).
    pub fn fuse(&self) -> &FuseLayer {
        self.fuse
    }

    /// Read access to the overlay (routing-table visibility, §6.1).
    pub fn overlay(&self) -> &OverlayNode {
        self.overlay
    }
}

/// A FUSE application: receives the API plus FUSE events.
pub trait FuseApp: Sized {
    /// Called once at process start.
    fn on_boot(&mut self, api: &mut FuseApi<'_, '_, '_>) {
        let _ = api;
    }

    /// A FUSE event (creation completed, or a failure notification).
    fn on_fuse_event(&mut self, api: &mut FuseApi<'_, '_, '_>, ev: FuseEvent);

    /// An application payload from a peer.
    fn on_app_message(&mut self, api: &mut FuseApi<'_, '_, '_>, from: ProcId, payload: Bytes) {
        let _ = (api, from, payload);
    }

    /// An application timer fired.
    fn on_app_timer(&mut self, api: &mut FuseApi<'_, '_, '_>, tag: u64) {
        let _ = (api, tag);
    }
}

/// The composed per-process protocol stack.
pub struct NodeStack<A> {
    /// The overlay layer.
    pub overlay: OverlayNode,
    /// The FUSE layer.
    pub fuse: FuseLayer,
    /// The application layer.
    pub app: A,
}

impl<A: FuseApp> NodeStack<A> {
    /// Builds a stack for `me`, joining through `bootstrap` (or starting a
    /// fresh ring when `None`).
    pub fn new(
        me: NodeInfo,
        bootstrap: Option<ProcId>,
        ov_cfg: OverlayConfig,
        fuse_cfg: FuseConfig,
        app: A,
    ) -> Self {
        NodeStack {
            overlay: OverlayNode::new(me.clone(), bootstrap, ov_cfg),
            fuse: FuseLayer::new(me, fuse_cfg),
            app,
        }
    }

    /// Runs `f` with the application API — the entry point for scripted
    /// calls (`CreateGroup`, `SignalFailure`, sends) from experiments.
    pub fn with_api<R>(
        &mut self,
        ctx: &mut Ctx<'_, StackMsg, StackTimer>,
        f: impl FnOnce(&mut FuseApi<'_, '_, '_>, &mut A) -> R,
    ) -> R {
        let mut ov_up = Vec::new();
        let mut app_up = Vec::new();
        let r = {
            let mut api = FuseApi {
                fuse: &mut self.fuse,
                overlay: &mut self.overlay,
                io: Shim {
                    ctx,
                    ov_up: &mut ov_up,
                    app_up: &mut app_up,
                },
                _marker: std::marker::PhantomData,
            };
            f(&mut api, &mut self.app)
        };
        self.pump(ctx, ov_up, app_up);
        r
    }

    /// Replays buffered upcalls through the layers until quiescent.
    fn pump(
        &mut self,
        ctx: &mut Ctx<'_, StackMsg, StackTimer>,
        mut ov_up: Vec<OverlayUpcall>,
        mut app_up: Vec<FuseEvent>,
    ) {
        loop {
            // Overlay upcalls feed the FUSE layer.
            while !ov_up.is_empty() {
                let batch = std::mem::take(&mut ov_up);
                for up in batch {
                    let mut shim = Shim {
                        ctx,
                        ov_up: &mut ov_up,
                        app_up: &mut app_up,
                    };
                    self.fuse
                        .on_overlay_upcall(&mut shim, &mut self.overlay, up);
                }
            }
            // FUSE upcalls feed the application (which may call back in).
            if app_up.is_empty() {
                break;
            }
            let batch = std::mem::take(&mut app_up);
            for ev in batch {
                let mut api = FuseApi {
                    fuse: &mut self.fuse,
                    overlay: &mut self.overlay,
                    io: Shim {
                        ctx,
                        ov_up: &mut ov_up,
                        app_up: &mut app_up,
                    },
                    _marker: std::marker::PhantomData,
                };
                self.app.on_fuse_event(&mut api, ev);
            }
        }
    }
}

impl<A: FuseApp> Process for NodeStack<A> {
    type Msg = StackMsg;
    type Timer = StackTimer;

    fn on_boot(&mut self, ctx: &mut Ctx<'_, StackMsg, StackTimer>) {
        let mut ov_up = Vec::new();
        let mut app_up = Vec::new();
        {
            let mut shim = Shim {
                ctx,
                ov_up: &mut ov_up,
                app_up: &mut app_up,
            };
            self.overlay.boot(&mut shim);
        }
        self.pump(ctx, ov_up, app_up);
        self.with_api(ctx, |api, app| app.on_boot(api));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, StackMsg, StackTimer>, from: ProcId, msg: StackMsg) {
        let mut ov_up = Vec::new();
        let mut app_up = Vec::new();
        match msg {
            StackMsg::Overlay(m) => {
                let mut shim = Shim {
                    ctx,
                    ov_up: &mut ov_up,
                    app_up: &mut app_up,
                };
                self.overlay.on_message(&mut shim, from, m);
            }
            StackMsg::Fuse(m) => {
                let mut shim = Shim {
                    ctx,
                    ov_up: &mut ov_up,
                    app_up: &mut app_up,
                };
                self.fuse.on_message(&mut shim, &mut self.overlay, from, m);
            }
            StackMsg::App(payload) => {
                self.pump(ctx, ov_up, app_up);
                self.with_api(ctx, |api, app| app.on_app_message(api, from, payload));
                return;
            }
        }
        self.pump(ctx, ov_up, app_up);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, StackMsg, StackTimer>, tag: StackTimer) {
        let mut ov_up = Vec::new();
        let mut app_up = Vec::new();
        match tag {
            StackTimer::Overlay(t) => {
                let mut shim = Shim {
                    ctx,
                    ov_up: &mut ov_up,
                    app_up: &mut app_up,
                };
                self.overlay.on_timer(&mut shim, t);
            }
            StackTimer::Fuse(t) => {
                let mut shim = Shim {
                    ctx,
                    ov_up: &mut ov_up,
                    app_up: &mut app_up,
                };
                self.fuse.on_timer(&mut shim, &mut self.overlay, t);
            }
            StackTimer::App(t) => {
                self.pump(ctx, ov_up, app_up);
                self.with_api(ctx, |api, app| app.on_app_timer(api, t));
                return;
            }
        }
        self.pump(ctx, ov_up, app_up);
    }

    fn on_link_broken(&mut self, ctx: &mut Ctx<'_, StackMsg, StackTimer>, peer: ProcId) {
        let mut ov_up = Vec::new();
        let mut app_up = Vec::new();
        {
            let mut shim = Shim {
                ctx,
                ov_up: &mut ov_up,
                app_up: &mut app_up,
            };
            self.overlay.on_link_broken(&mut shim, peer);
        }
        {
            let mut shim = Shim {
                ctx,
                ov_up: &mut ov_up,
                app_up: &mut app_up,
            };
            self.fuse.on_link_broken(&mut shim, &mut self.overlay, peer);
        }
        self.pump(ctx, ov_up, app_up);
    }
}
