//! Negative-path matrix for [`FuseConfig::builder`]: one test per
//! [`ConfigError`] variant, the zero-duration check over *every* validated
//! field, the documented validation precedence, and a proptest showing
//! that any configuration the builder accepts re-validates when fed back
//! through the builder (validation is a fixpoint, not a one-shot filter).

use fuse_core::{ConfigError, FuseConfig};
use fuse_liveness::LivenessConfig;
use fuse_util::Duration;
use proptest::prelude::*;

const Z: Duration = Duration::ZERO;

fn secs(s: u64) -> Duration {
    Duration::from_secs(s)
}

/// A valid shared-plane liveness tuning to perturb from.
fn live_ok() -> LivenessConfig {
    LivenessConfig::default()
}

#[test]
fn default_and_empty_builder_validate() {
    assert!(FuseConfig::builder().build().is_ok());
    // The builder starts from Default, so the two must agree.
    assert_eq!(
        FuseConfig::builder().build().unwrap(),
        FuseConfig::default()
    );
}

#[test]
fn every_base_duration_field_rejects_zero() {
    // (setter, reported field name) — one row per duration the base
    // validation loop walks, in its declared order.
    let cases: [(&dyn Fn() -> Result<FuseConfig, ConfigError>, &str); 7] = [
        (
            &|| FuseConfig::builder().create_timeout(Z).build(),
            "create_timeout",
        ),
        (
            &|| FuseConfig::builder().install_wait(Z).build(),
            "install_wait",
        ),
        (
            &|| FuseConfig::builder().member_repair_timeout(Z).build(),
            "member_repair_timeout",
        ),
        (
            &|| FuseConfig::builder().root_repair_timeout(Z).build(),
            "root_repair_timeout",
        ),
        (
            &|| FuseConfig::builder().link_failure_timeout(Z).build(),
            "link_failure_timeout",
        ),
        (
            &|| FuseConfig::builder().repair_backoff_base(Z).build(),
            "repair_backoff_base",
        ),
        (
            &|| FuseConfig::builder().repair_backoff_cap(Z).build(),
            "repair_backoff_cap",
        ),
    ];
    for (build, field) in cases {
        assert_eq!(
            build(),
            Err(ConfigError::ZeroDuration(field)),
            "zeroing {field} must name that field"
        );
    }
}

#[test]
fn every_liveness_duration_rejects_zero_under_shared_plane() {
    let fields: [(&dyn Fn(&mut LivenessConfig), &str); 4] = [
        (&|l| l.probe_period = Z, "liveness.probe_period"),
        (&|l| l.probe_timeout = Z, "liveness.probe_timeout"),
        (&|l| l.indirect_timeout = Z, "liveness.indirect_timeout"),
        (&|l| l.suspect_timeout = Z, "liveness.suspect_timeout"),
    ];
    for (zero, name) in fields {
        let mut l = live_ok();
        zero(&mut l);
        let shared = FuseConfig::builder()
            .shared_plane(true)
            .liveness(l.clone())
            .build();
        assert_eq!(
            shared,
            Err(ConfigError::ZeroDuration(name)),
            "shared-plane mode must validate {name}"
        );
        // The same broken tuning is *accepted* without the shared plane:
        // the per-group timer mode never reads it.
        let private = FuseConfig::builder().liveness(l).build();
        assert!(
            private.is_ok(),
            "{name} is dead config off the shared plane"
        );
    }
}

#[test]
fn backoff_inversion_is_rejected_and_equality_allowed() {
    let err = FuseConfig::builder()
        .repair_backoff_base(secs(41))
        .repair_backoff_cap(secs(40))
        .build();
    assert_eq!(err, Err(ConfigError::BackoffInverted));
    let eq = FuseConfig::builder()
        .repair_backoff_base(secs(40))
        .repair_backoff_cap(secs(40))
        .build();
    assert!(
        eq.is_ok(),
        "base == cap degenerates to constant backoff, legal"
    );
}

#[test]
fn repair_window_inversion_is_rejected_and_equality_allowed() {
    let err = FuseConfig::builder()
        .member_repair_timeout(secs(121))
        .root_repair_timeout(secs(120))
        .build();
    assert_eq!(err, Err(ConfigError::RepairWindowInverted));
    let eq = FuseConfig::builder()
        .member_repair_timeout(secs(120))
        .root_repair_timeout(secs(120))
        .build();
    assert!(eq.is_ok(), "member == root window is legal");
}

#[test]
fn grace_must_stay_strictly_below_link_timeout() {
    // `>=` (unlike the two inversions above): equality is already broken,
    // because a fresh tree would be reconcile-immune for its whole
    // liveness window.
    let eq = FuseConfig::builder()
        .reconcile_grace(secs(90))
        .link_failure_timeout(secs(90))
        .build();
    assert_eq!(eq, Err(ConfigError::GraceExceedsLinkTimeout));
    let above = FuseConfig::builder()
        .reconcile_grace(secs(91))
        .link_failure_timeout(secs(90))
        .build();
    assert_eq!(above, Err(ConfigError::GraceExceedsLinkTimeout));
    let below = FuseConfig::builder()
        .reconcile_grace(secs(89))
        .link_failure_timeout(secs(90))
        .build();
    assert!(below.is_ok());
}

#[test]
fn shared_plane_requires_indirect_relays() {
    let mut l = live_ok();
    l.k_indirect = 0;
    let err = FuseConfig::builder()
        .shared_plane(true)
        .liveness(l.clone())
        .build();
    assert_eq!(err, Err(ConfigError::NoIndirectRelays));
    assert!(
        FuseConfig::builder().liveness(l).build().is_ok(),
        "k_indirect is unread without the shared plane"
    );
}

#[test]
fn shared_plane_probe_timeout_must_beat_probe_period() {
    let mut l = live_ok();
    l.probe_timeout = l.probe_period;
    let err = FuseConfig::builder().shared_plane(true).liveness(l).build();
    assert_eq!(err, Err(ConfigError::ProbeTimeoutExceedsPeriod));
    let mut l = live_ok();
    l.probe_timeout = secs(61);
    l.probe_period = secs(60);
    let err = FuseConfig::builder().shared_plane(true).liveness(l).build();
    assert_eq!(err, Err(ConfigError::ProbeTimeoutExceedsPeriod));
}

#[test]
fn zero_durations_are_reported_before_inversions() {
    // A config that is simultaneously zero-duration AND backoff-inverted
    // AND window-inverted: the zero must win, in field-declaration order.
    let err = FuseConfig::builder()
        .create_timeout(Z)
        .repair_backoff_base(secs(100))
        .repair_backoff_cap(secs(1))
        .member_repair_timeout(secs(500))
        .build();
    assert_eq!(err, Err(ConfigError::ZeroDuration("create_timeout")));
    // With the zero fixed, the first inversion in validation order
    // (backoff) surfaces next.
    let err = FuseConfig::builder()
        .repair_backoff_base(secs(100))
        .repair_backoff_cap(secs(1))
        .member_repair_timeout(secs(500))
        .build();
    assert_eq!(err, Err(ConfigError::BackoffInverted));
}

/// Any duration in [0, 200] seconds — zero included, so the strategy
/// exercises rejection paths too.
fn arb_secs() -> impl Strategy<Value = Duration> {
    (0u64..=200).prop_map(Duration::from_secs)
}

type BaseDurations = (
    Duration,
    Duration,
    Duration,
    Duration,
    Duration,
    Duration,
    Duration,
    Duration,
);

/// The eight builder durations as one strategy (the vendored proptest
/// macro caps parameter tuples at arity 10).
fn arb_base() -> impl Strategy<Value = BaseDurations> {
    (
        arb_secs(),
        arb_secs(),
        arb_secs(),
        arb_secs(),
        arb_secs(),
        arb_secs(),
        arb_secs(),
        arb_secs(),
    )
}

proptest! {
    /// Round-trip fixpoint: whenever a random assembly builds, feeding
    /// every field of the result back through the builder builds again
    /// and reproduces the identical config.
    #[test]
    fn accepted_configs_revalidate_identically(
        base8 in arb_base(),
        shared in any::<bool>(),
        probe_period in arb_secs(),
        probe_timeout in arb_secs(),
        k_indirect in 0usize..4,
    ) {
        let (create, install, member, root, link, grace, base, cap) = base8;
        let mut l = live_ok();
        l.probe_period = probe_period;
        l.probe_timeout = probe_timeout;
        l.k_indirect = k_indirect;
        let attempt = FuseConfig::builder()
            .create_timeout(create)
            .install_wait(install)
            .member_repair_timeout(member)
            .root_repair_timeout(root)
            .link_failure_timeout(link)
            .reconcile_grace(grace)
            .repair_backoff_base(base)
            .repair_backoff_cap(cap)
            .shared_plane(shared)
            .liveness(l)
            .build();
        if let Ok(cfg) = attempt {
            // Spot-check the invariants the builder claims to enforce.
            prop_assert!(cfg.repair_backoff_base <= cfg.repair_backoff_cap);
            prop_assert!(cfg.member_repair_timeout <= cfg.root_repair_timeout);
            prop_assert!(cfg.reconcile_grace < cfg.link_failure_timeout);
            if cfg.shared_plane {
                prop_assert!(cfg.liveness.k_indirect > 0);
                prop_assert!(cfg.liveness.probe_timeout < cfg.liveness.probe_period);
            }
            // Fixpoint: the accepted config re-validates byte-for-byte.
            let again = FuseConfig::builder()
                .create_timeout(cfg.create_timeout)
                .install_wait(cfg.install_wait)
                .member_repair_timeout(cfg.member_repair_timeout)
                .root_repair_timeout(cfg.root_repair_timeout)
                .link_failure_timeout(cfg.link_failure_timeout)
                .reconcile_grace(cfg.reconcile_grace)
                .repair_backoff_base(cfg.repair_backoff_base)
                .repair_backoff_cap(cfg.repair_backoff_cap)
                .shared_plane(cfg.shared_plane)
                .liveness(cfg.liveness.clone())
                .build();
            prop_assert_eq!(again, Ok(cfg));
        }
    }
}
