//! Differential encode tests for the FUSE protocol messages: the
//! single-pass codec (exact `size_hint`, reusable `EncodeBuf`) must be
//! bit-identical to the preserved two-pass reference path on
//! proptest-generated messages of **every** variant, and every encoding
//! must round-trip through `Decode`.

use fuse_core::{FuseId, FuseMsg, InstallChecking, NotifyReason};
use fuse_overlay::{NodeInfo, NodeName};
use fuse_wire::codec::twopass;
use fuse_wire::{Decode, Encode, EncodeBuf};
use proptest::prelude::*;

fn arb_info() -> impl Strategy<Value = NodeInfo> {
    (any::<u32>(), 0usize..100_000)
        .prop_map(|(proc, name)| NodeInfo::new(proc, NodeName::numbered(name)))
}

fn arb_reason() -> impl Strategy<Value = NotifyReason> {
    prop::sample::select(NotifyReason::ALL.to_vec())
}

fn arb_msg() -> impl Strategy<Value = FuseMsg> {
    let id = any::<u64>().prop_map(FuseId);
    prop_oneof![
        (
            id.clone(),
            arb_info(),
            prop::collection::vec(arb_info(), 0..8)
        )
            .prop_map(|(id, root, members)| FuseMsg::GroupCreateRequest {
                id,
                root,
                members
            }),
        (id.clone(), any::<bool>()).prop_map(|(id, ok)| FuseMsg::GroupCreateReply { id, ok }),
        (id.clone(), any::<u64>()).prop_map(|(id, seq)| FuseMsg::SoftNotification { id, seq }),
        (id.clone(), any::<u64>(), arb_reason())
            .prop_map(|(id, seq, reason)| FuseMsg::HardNotification { id, seq, reason }),
        (id.clone(), any::<u64>()).prop_map(|(id, seq)| FuseMsg::NeedRepair { id, seq }),
        (id.clone(), any::<u64>(), arb_info())
            .prop_map(|(id, seq, root)| FuseMsg::GroupRepairRequest { id, seq, root }),
        (id, any::<u64>(), any::<bool>()).prop_map(|(id, seq, ok)| FuseMsg::GroupRepairReply {
            id,
            seq,
            ok
        }),
        prop::collection::vec((any::<u64>().prop_map(FuseId), any::<u64>()), 0..24)
            .prop_map(|links| FuseMsg::ReconcileRequest { links }),
        prop::collection::vec((any::<u64>().prop_map(FuseId), any::<u64>()), 0..24)
            .prop_map(|links| FuseMsg::ReconcileReply { links }),
    ]
}

fn check_equivalence<T: Encode>(v: &T) -> Result<(), TestCaseError> {
    let single = v.to_bytes();
    prop_assert_eq!(
        &single[..],
        &twopass::to_bytes(v)[..],
        "single-pass bytes != two-pass bytes"
    );
    prop_assert_eq!(single.len(), twopass::counted_size(v));
    prop_assert_eq!(v.size_hint(), single.len(), "size_hint must be exact");
    prop_assert_eq!(v.wire_size(), single.len());
    let mut buf = EncodeBuf::new();
    prop_assert_eq!(buf.encode(v), &single[..]);
    Ok(())
}

proptest! {
    /// Every FuseMsg variant: old two-pass output == new single-pass
    /// output, exact hints, and decode round-trips.
    #[test]
    fn fuse_msg_single_pass_equals_two_pass(msg in arb_msg()) {
        check_equivalence(&msg)?;
        prop_assert_eq!(FuseMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
    }

    /// Same for the overlay-routed InstallChecking payload (the message the
    /// layer encodes through its owned EncodeBuf).
    #[test]
    fn install_checking_single_pass_equals_two_pass(
        id in any::<u64>().prop_map(FuseId),
        seq in any::<u64>(),
        member in arb_info(),
        root in arb_info(),
    ) {
        let ic = InstallChecking { id, seq, member, root };
        check_equivalence(&ic)?;
        prop_assert_eq!(InstallChecking::from_bytes(&ic.to_bytes()).unwrap(), ic);
    }

    /// Fixed-size leaf types stake the "exact for fixed-size types" corner
    /// of the contract explicitly.
    #[test]
    fn fixed_size_types_have_constant_exact_hints(reason in arb_reason(), raw in any::<u64>()) {
        prop_assert_eq!(reason.size_hint(), 1);
        prop_assert_eq!(reason.to_bytes().len(), 1);
        let id = FuseId(raw);
        prop_assert_eq!(id.size_hint(), id.to_bytes().len());
    }
}
