//! SV-tree world construction and the §4 FUSE-group census.
//!
//! "Simulating a 2000 subscriber tree on a 16,000 node overlay required an
//! average of 2.9 members per FUSE group with a maximum size of 13. We also
//! verified that the maximum and mean FUSE group sizes depend very little on
//! the size of the multicast tree, and increase slowly with the size of the
//! overlay" (§4). [`run_census`] regenerates those numbers.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use fuse_core::FuseConfig;
use fuse_obs::Reservoir;
use fuse_overlay::{build_oracle_tables, NodeInfo, NodeName, OverlayConfig};
use fuse_sim::{PerfectMedium, ProcId, Sim, SimDuration};
use fuse_simdriver::NodeStack;

use crate::{SvApp, SvConfig};

/// Census parameters.
#[derive(Debug, Clone)]
pub struct CensusParams {
    /// Overlay size.
    pub overlay_nodes: usize,
    /// Number of subscribers (tree size).
    pub subscribers: usize,
    /// Fraction of non-subscribers that volunteer to forward.
    pub volunteer_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Census output.
#[derive(Debug, Clone)]
pub struct CensusResult {
    /// Number of link groups created.
    pub groups: usize,
    /// Mean group size (members including the creator).
    pub mean_size: f64,
    /// Largest group.
    pub max_size: f64,
    /// Fraction of subscribers that reached the tree.
    pub linked_fraction: f64,
}

/// Builds an SV-tree world, joins all subscribers, and reports the sizes of
/// the per-link FUSE groups.
pub fn run_census(p: &CensusParams) -> CensusResult {
    let mut rng = rand::rngs::StdRng::seed_from_u64(p.seed);
    let n = p.overlay_nodes;
    let infos: Vec<NodeInfo> = (0..n)
        .map(|i| NodeInfo::new(i as ProcId, NodeName::numbered(i)))
        .collect();
    let ov_cfg = OverlayConfig::default();
    let tables = build_oracle_tables(&infos, &ov_cfg);
    let topic = NodeName(String::from("svtree-topic-1"));

    let mut ids: Vec<usize> = (0..n).collect();
    ids.shuffle(&mut rng);
    let sub_set: std::collections::BTreeSet<usize> =
        ids.iter().copied().take(p.subscribers).collect();

    let mut sim: Sim<NodeStack<SvApp>, PerfectMedium> =
        Sim::new(p.seed, PerfectMedium::new(SimDuration::from_millis(20)));
    for (i, (info, (cw, ccw, rt))) in infos.iter().zip(tables).enumerate() {
        // Everyone boots as a bystander; subscriptions are staggered below
        // so the tree grows incrementally, as real trees do.
        let mut cfg = SvConfig::bystander(topic.clone());
        if !sub_set.contains(&i) {
            cfg.volunteer = rand::Rng::gen_bool(&mut rng, p.volunteer_fraction);
        }
        let mut stack = NodeStack::new(
            info.clone(),
            None,
            ov_cfg.clone(),
            FuseConfig::default(),
            SvApp::new(cfg),
        );
        stack.overlay.preload_tables(cw, ccw, rt);
        sim.add_process(stack);
    }

    // Staggered joins: each subscriber attaches to the tree built so far.
    let subs_in_order: Vec<usize> = ids.iter().copied().take(p.subscribers).collect();
    for &i in &subs_in_order {
        sim.run_for(SimDuration::from_millis(150));
        sim.with_proc(i as ProcId, |stack, ctx| {
            stack.with_api(ctx, |api, app| app.subscribe_now(api))
        });
    }
    // Let the last joins settle.
    sim.run_for(SimDuration::from_secs(60));

    let mut sizes = Reservoir::new();
    let mut linked = 0usize;
    for i in 0..n as ProcId {
        let app = &sim.proc(i).expect("alive").app;
        for &s in &app.link_group_sizes {
            sizes.add(s as f64);
        }
        if sub_set.contains(&(i as usize)) && app.on_tree() {
            linked += 1;
        }
    }
    CensusResult {
        groups: sizes.len(),
        mean_size: sizes.mean().unwrap_or(0.0),
        max_size: sizes.max().unwrap_or(0.0),
        linked_fraction: linked as f64 / p.subscribers.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_census_links_everyone_with_small_groups() {
        let r = run_census(&CensusParams {
            overlay_nodes: 128,
            subscribers: 24,
            volunteer_fraction: 0.0,
            seed: 5,
        });
        assert!(r.linked_fraction > 0.95, "linked {}", r.linked_fraction);
        assert!(
            r.groups >= 24,
            "every subscriber creates at least one group"
        );
        assert!(
            (2.0..=6.0).contains(&r.mean_size),
            "mean group size {} out of band",
            r.mean_size
        );
        assert!(r.max_size <= 16.0, "max {}", r.max_size);
    }

    #[test]
    fn volunteers_shrink_bypass_sets() {
        let base = run_census(&CensusParams {
            overlay_nodes: 128,
            subscribers: 24,
            volunteer_fraction: 0.0,
            seed: 6,
        });
        let vols = run_census(&CensusParams {
            overlay_nodes: 128,
            subscribers: 24,
            volunteer_fraction: 1.0,
            seed: 6,
        });
        assert!(
            vols.mean_size <= base.mean_size,
            "volunteers {} vs base {}",
            vols.mean_size,
            base.mean_size
        );
        // With every bystander volunteering, links rarely bypass anyone
        // (only subscribers still mid-join can be bypassed): groups are
        // close to the minimal {subscriber, parent}.
        assert!(vols.mean_size <= 2.5, "mean {}", vols.mean_size);
    }
}
