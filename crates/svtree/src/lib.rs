//! Subscriber/Volunteer multicast trees built on FUSE groups (paper §4).
//!
//! SV trees deliver events to subscribers over **content-forwarding links**
//! that route around non-interested overlay nodes: a subscriber's join
//! request walks the reverse-path-forwarding (RPF) route toward the tree
//! root, and the first on-tree node it meets becomes its content parent.
//! The RPF nodes *bypassed* by that content link join a per-link **FUSE
//! group** together with the link's endpoints, so that any failure or
//! overlay route change invalidating the link garbage-collects all of its
//! distributed state at once — the paper's "simple design pattern: garbage
//! collect out-of-date state using FUSE and retry".
//!
//! Version stamps on subscriptions handle the races FUSE does not eliminate
//! (§3.3): a late failure notification can never tear down a newer link.
//!
//! The crate implements the application as a [`fuse_core::FuseApp`], plus
//! the group-size census behind the §4 table (avg 2.9 members, max 13 for a
//! 2000-subscriber tree on a 16,000-node overlay).

pub mod census;

use bytes::Bytes;

use fuse_core::{CreateTicket, FuseApi, FuseApp, FuseEvent, FuseId, Notification};
use fuse_overlay::{NodeInfo, NodeName};
use fuse_sim::{ProcId, SimDuration, SimTime};
use fuse_util::DetHashSet;
use fuse_wire::{Decode, DecodeError, Encode, Reader, Writer};

/// SV-tree application messages (carried as opaque app payloads).
#[derive(Debug, Clone, PartialEq)]
pub enum SvMsg {
    /// Join request walking the RPF path toward the tree root.
    Subscribe {
        /// The joining node.
        subscriber: NodeInfo,
        /// Subscription version (bumped on every (re-)join).
        version: u64,
        /// RPF nodes traversed so far (the prospective bypass set).
        path: Vec<NodeInfo>,
    },
    /// An on-tree node offers to become the subscriber's content parent.
    LinkAccept {
        /// The prospective parent.
        parent: NodeInfo,
        /// Echoed subscription version.
        version: u64,
        /// The bypassed RPF nodes between subscriber and parent.
        path: Vec<NodeInfo>,
    },
    /// The subscriber confirms the link, carrying its guarding FUSE group.
    LinkConfirm {
        /// The confirmed child.
        subscriber: NodeInfo,
        /// Echoed subscription version.
        version: u64,
        /// The FUSE group guarding this content link.
        id: FuseId,
    },
    /// Content flowing down the tree.
    Publish {
        /// Event identifier.
        event: u64,
    },
}

const TAG_SUBSCRIBE: u8 = 1;
const TAG_ACCEPT: u8 = 2;
const TAG_CONFIRM: u8 = 3;
const TAG_PUBLISH: u8 = 4;

impl Encode for SvMsg {
    fn encode(&self, w: &mut dyn Writer) {
        match self {
            SvMsg::Subscribe {
                subscriber,
                version,
                path,
            } => {
                TAG_SUBSCRIBE.encode(w);
                subscriber.encode(w);
                version.encode(w);
                path.encode(w);
            }
            SvMsg::LinkAccept {
                parent,
                version,
                path,
            } => {
                TAG_ACCEPT.encode(w);
                parent.encode(w);
                version.encode(w);
                path.encode(w);
            }
            SvMsg::LinkConfirm {
                subscriber,
                version,
                id,
            } => {
                TAG_CONFIRM.encode(w);
                subscriber.encode(w);
                version.encode(w);
                id.encode(w);
            }
            SvMsg::Publish { event } => {
                TAG_PUBLISH.encode(w);
                event.encode(w);
            }
        }
    }

    fn size_hint(&self) -> usize {
        1 + match self {
            SvMsg::Subscribe {
                subscriber,
                version,
                path,
            } => subscriber.size_hint() + version.size_hint() + path.size_hint(),
            SvMsg::LinkAccept {
                parent,
                version,
                path,
            } => parent.size_hint() + version.size_hint() + path.size_hint(),
            SvMsg::LinkConfirm {
                subscriber,
                version,
                id,
            } => subscriber.size_hint() + version.size_hint() + id.size_hint(),
            SvMsg::Publish { event } => event.size_hint(),
        }
    }
}

impl Decode for SvMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            TAG_SUBSCRIBE => Ok(SvMsg::Subscribe {
                subscriber: NodeInfo::decode(r)?,
                version: u64::decode(r)?,
                path: Vec::decode(r)?,
            }),
            TAG_ACCEPT => Ok(SvMsg::LinkAccept {
                parent: NodeInfo::decode(r)?,
                version: u64::decode(r)?,
                path: Vec::decode(r)?,
            }),
            TAG_CONFIRM => Ok(SvMsg::LinkConfirm {
                subscriber: NodeInfo::decode(r)?,
                version: u64::decode(r)?,
                id: FuseId::decode(r)?,
            }),
            TAG_PUBLISH => Ok(SvMsg::Publish {
                event: u64::decode(r)?,
            }),
            _ => Err(DecodeError::Invalid("sv message tag")),
        }
    }
}

/// SV-tree node configuration.
#[derive(Debug, Clone)]
pub struct SvConfig {
    /// The multicast topic; its owner in name space is the tree root.
    pub topic: NodeName,
    /// Whether this node wants the content (subscribes at boot).
    pub subscribe: bool,
    /// Whether this node volunteers to forward content it does not want
    /// (the "V" of SV trees): a volunteer hit by a join request grafts
    /// itself onto the tree instead of being bypassed.
    pub volunteer: bool,
    /// Delay before a failed or invalidated join is retried.
    pub rejoin_delay: SimDuration,
    /// Watchdog: if a join request goes unanswered this long (lost to a
    /// stale route or a dying hop), it is retried with a fresh version.
    pub join_retry: SimDuration,
}

impl SvConfig {
    /// A plain subscriber of `topic`.
    pub fn subscriber(topic: NodeName) -> Self {
        SvConfig {
            topic,
            subscribe: true,
            volunteer: false,
            rejoin_delay: SimDuration::from_secs(1),
            join_retry: SimDuration::from_secs(10),
        }
    }

    /// A non-subscribing node (potential bypass or volunteer).
    pub fn bystander(topic: NodeName) -> Self {
        SvConfig {
            topic,
            subscribe: false,
            volunteer: false,
            rejoin_delay: SimDuration::from_secs(1),
            join_retry: SimDuration::from_secs(10),
        }
    }
}

struct Uplink {
    parent: NodeInfo,
    group: FuseId,
}

struct PendingJoin {
    parent: NodeInfo,
    version: u64,
    ticket: CreateTicket,
}

struct Child {
    info: NodeInfo,
    group: FuseId,
}

/// The Subscriber/Volunteer tree application.
pub struct SvApp {
    cfg: SvConfig,
    version: u64,
    /// Whether this node is on the content tree (root, linked subscriber,
    /// or grafted volunteer).
    on_tree: bool,
    is_root: bool,
    uplink: Option<Uplink>,
    pending: Option<PendingJoin>,
    children: Vec<Child>,
    /// A volunteer that accepted a child while off-tree must climb onto the
    /// tree even though it neither subscribes nor has confirmed children
    /// yet.
    grafting: bool,
    seen_events: DetHashSet<u64>,
    /// Events delivered to this (subscribing) node.
    pub deliveries: Vec<(SimTime, u64)>,
    /// Sizes (member count incl. creator) of every link group this node
    /// created — the raw data of the §4 census.
    pub link_group_sizes: Vec<usize>,
    /// Join attempts made (including retries after failures).
    pub join_attempts: u64,
}

const TIMER_REJOIN: u64 = 1;

impl SvApp {
    /// Creates the application with the given configuration.
    pub fn new(cfg: SvConfig) -> Self {
        SvApp {
            cfg,
            version: 0,
            on_tree: false,
            is_root: false,
            uplink: None,
            pending: None,
            children: Vec::new(),
            grafting: false,
            seen_events: DetHashSet::default(),
            deliveries: Vec::new(),
            link_group_sizes: Vec::new(),
            join_attempts: 0,
        }
    }

    /// Whether this node currently forwards content (root or linked).
    pub fn on_tree(&self) -> bool {
        self.on_tree
    }

    /// Whether this node is the tree root (owner of the topic name).
    pub fn is_root(&self) -> bool {
        self.is_root
    }

    /// Number of active content children.
    pub fn child_count(&self) -> usize {
        self.children.len()
    }

    /// The current content parent, if linked.
    pub fn parent(&self) -> Option<ProcId> {
        self.uplink.as_ref().map(|u| u.parent.proc)
    }

    /// Publishes an event from this node (meaningful on the root).
    pub fn publish(&mut self, api: &mut FuseApi<'_>, event: u64) {
        self.accept_event(api, event);
    }

    /// Turns a bystander into a subscriber and joins the tree now. Trees in
    /// practice grow incrementally; workloads use this to stagger joins
    /// instead of stampeding at boot.
    pub fn subscribe_now(&mut self, api: &mut FuseApi<'_>) {
        self.cfg.subscribe = true;
        self.start_join(api);
    }

    /// Leaves the tree voluntarily: signals the groups that would have been
    /// signalled had this node failed (§4's non-failure use of FUSE).
    pub fn leave(&mut self, api: &mut FuseApi<'_>) {
        self.cfg.subscribe = false;
        self.grafting = false;
        if let Some(up) = self.uplink.take() {
            api.signal_failure(up.group);
        }
        let children = std::mem::take(&mut self.children);
        for c in children {
            api.signal_failure(c.group);
        }
        self.on_tree = self.is_root;
    }

    fn start_join(&mut self, api: &mut FuseApi<'_>) {
        if self.on_tree || self.pending.is_some() || !self.wants_tree() {
            return;
        }
        self.version += 1;
        self.join_attempts += 1;
        let me = api.me();
        match api.overlay().next_hop(&self.cfg.topic) {
            None => {
                // We own the topic name: we are the root.
                self.is_root = true;
                self.on_tree = true;
            }
            Some(next) => {
                let msg = SvMsg::Subscribe {
                    subscriber: me,
                    version: self.version,
                    path: Vec::new(),
                };
                api.send_app(next, msg.to_bytes());
                // Watchdog: joins can vanish into stale routes while the
                // overlay is still repairing; retry until linked.
                api.set_app_timer(self.cfg.join_retry, TIMER_REJOIN);
            }
        }
    }

    fn schedule_rejoin(&mut self, api: &mut FuseApi<'_>) {
        if self.wants_tree() && !self.on_tree && self.pending.is_none() {
            api.set_app_timer(self.cfg.rejoin_delay, TIMER_REJOIN);
        }
    }

    /// Whether this node needs to be on the tree (subscriber, grafting
    /// volunteer, or forwarder with children).
    fn wants_tree(&self) -> bool {
        self.cfg.subscribe || self.grafting || !self.children.is_empty()
    }

    fn accept_event(&mut self, api: &mut FuseApi<'_>, event: u64) {
        if !self.seen_events.insert(event) {
            return;
        }
        if self.cfg.subscribe {
            self.deliveries.push((api.now(), event));
        }
        let msg = SvMsg::Publish { event };
        let payload = msg.to_bytes();
        for c in &self.children {
            // Content flows under the link group's fate-sharing contract
            // (§3.4 fail-on-send): a broken delivery burns the group and
            // garbage-collects the link on every party.
            api.group_send(c.group, c.info.proc, payload.clone());
        }
    }

    fn on_subscribe(
        &mut self,
        api: &mut FuseApi<'_>,
        subscriber: NodeInfo,
        version: u64,
        mut path: Vec<NodeInfo>,
    ) {
        let me = api.me();
        if api.overlay().next_hop(&self.cfg.topic).is_none() {
            self.is_root = true;
            self.on_tree = true;
        }
        if self.on_tree {
            // Offer to become the parent.
            let msg = SvMsg::LinkAccept {
                parent: me,
                version,
                path,
            };
            api.send_app(subscriber.proc, msg.to_bytes());
            return;
        }
        if self.cfg.volunteer {
            // Graft: accept the child and climb onto the tree ourselves.
            let msg = SvMsg::LinkAccept {
                parent: me,
                version,
                path,
            };
            api.send_app(subscriber.proc, msg.to_bytes());
            self.grafting = true;
            self.start_join(api);
            return;
        }
        // Bypassed RPF node: record ourselves and pass the request along.
        path.push(me);
        match api.overlay().next_hop(&self.cfg.topic) {
            Some(next) => {
                let msg = SvMsg::Subscribe {
                    subscriber,
                    version,
                    path,
                };
                api.send_app(next, msg.to_bytes());
            }
            None => unreachable!("ownership checked above"),
        }
    }

    fn on_link_accept(
        &mut self,
        api: &mut FuseApi<'_>,
        parent: NodeInfo,
        version: u64,
        path: Vec<NodeInfo>,
    ) {
        if version != self.version || self.on_tree || self.pending.is_some() {
            return; // Stale offer (version-stamp race handling, §4).
        }
        // The link's fate-sharing set: parent + bypassed RPF nodes, with the
        // subscriber as creator.
        let mut others: Vec<NodeInfo> = vec![parent.clone()];
        others.extend(path.into_iter().filter(|p| p.proc != parent.proc));
        self.link_group_sizes.push(others.len() + 1);
        let ticket = api.create_group(others);
        self.pending = Some(PendingJoin {
            parent,
            version,
            ticket,
        });
    }

    fn on_link_confirm(
        &mut self,
        api: &mut FuseApi<'_>,
        subscriber: NodeInfo,
        version: u64,
        id: FuseId,
    ) {
        api.register_handler(id, version);
        self.children.push(Child {
            info: subscriber,
            group: id,
        });
    }

    fn on_created(
        &mut self,
        api: &mut FuseApi<'_>,
        ticket: CreateTicket,
        result: Result<fuse_core::GroupHandle, fuse_core::CreateError>,
    ) {
        let Some(p) = &self.pending else {
            return;
        };
        if p.ticket != ticket {
            return;
        }
        let pending = self.pending.take().expect("pending present");
        match result {
            Ok(handle) => {
                let id = handle.id;
                debug_assert_eq!(id, pending.ticket.id());
                api.register_handler(id, pending.version);
                let msg = SvMsg::LinkConfirm {
                    subscriber: api.me(),
                    version: pending.version,
                    id,
                };
                api.send_app(pending.parent.proc, msg.to_bytes());
                self.uplink = Some(Uplink {
                    parent: pending.parent,
                    group: id,
                });
                self.on_tree = true;
            }
            Err(_) => {
                // Some party died mid-join; retry along fresh routes.
                self.schedule_rejoin(api);
            }
        }
    }

    fn on_failure(&mut self, api: &mut FuseApi<'_>, n: Notification) {
        let id = n.id;
        // Uplink gone: garbage-collect and rejoin (we are the link creator).
        if self.uplink.as_ref().map(|u| u.group) == Some(id) {
            self.uplink = None;
            self.on_tree = self.is_root;
            self.schedule_rejoin(api);
        }
        // A child link gone: the child re-creates it if still alive.
        self.children.retain(|c| c.group != id);
        // Pending join invalidated before creation completed.
        if self.pending.as_ref().map(|p| p.ticket.id()) == Some(id) {
            self.pending = None;
            self.schedule_rejoin(api);
        }
    }
}

impl FuseApp for SvApp {
    fn on_boot(&mut self, api: &mut FuseApi<'_>) {
        if api.overlay().next_hop(&self.cfg.topic).is_none() {
            self.is_root = true;
            self.on_tree = true;
        }
        if self.cfg.subscribe && !self.on_tree {
            self.start_join(api);
        }
    }

    fn on_fuse_event(&mut self, api: &mut FuseApi<'_>, ev: FuseEvent) {
        match ev {
            FuseEvent::Created { ticket, result } => self.on_created(api, ticket, result),
            FuseEvent::Notified(n) => self.on_failure(api, n),
        }
    }

    fn on_app_message(&mut self, api: &mut FuseApi<'_>, _from: ProcId, payload: Bytes) {
        let Ok(msg) = SvMsg::from_bytes(&payload) else {
            return;
        };
        match msg {
            SvMsg::Subscribe {
                subscriber,
                version,
                path,
            } => self.on_subscribe(api, subscriber, version, path),
            SvMsg::LinkAccept {
                parent,
                version,
                path,
            } => self.on_link_accept(api, parent, version, path),
            SvMsg::LinkConfirm {
                subscriber,
                version,
                id,
            } => self.on_link_confirm(api, subscriber, version, id),
            SvMsg::Publish { event } => self.accept_event(api, event),
        }
    }

    fn on_app_timer(&mut self, api: &mut FuseApi<'_>, tag: u64) {
        if tag == TIMER_REJOIN {
            self.start_join(api);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_roundtrip() {
        let info = NodeInfo::new(7, NodeName::numbered(7));
        for m in [
            SvMsg::Subscribe {
                subscriber: info.clone(),
                version: 3,
                path: vec![info.clone()],
            },
            SvMsg::LinkAccept {
                parent: info.clone(),
                version: 3,
                path: vec![],
            },
            SvMsg::LinkConfirm {
                subscriber: info.clone(),
                version: 3,
                id: FuseId(9),
            },
            SvMsg::Publish { event: 11 },
        ] {
            let b = m.to_bytes();
            assert_eq!(SvMsg::from_bytes(&b).unwrap(), m);
            // Single-pass contract: exact hint, bit-identical to the
            // two-pass reference (every SvMsg variant is covered above).
            assert_eq!(m.size_hint(), b.len(), "size_hint must be exact");
            assert_eq!(&b[..], &fuse_wire::codec::twopass::to_bytes(&m)[..]);
            assert_eq!(m.wire_size(), fuse_wire::codec::twopass::counted_size(&m));
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(SvMsg::from_bytes(&[77]).is_err());
    }
}
