//! The sim-kernel adapter: one sans-io [`FuseStack`] plus its application,
//! as a simulated process.

use std::ops::{Deref, DerefMut};

use fuse_core::{AppCall, FuseApi, FuseApp, FuseConfig, FuseStack, Input, Output, StackMsg};
use fuse_overlay::{NodeInfo, OverlayConfig};
use fuse_sim::process::Ctx;
use fuse_sim::{ProcId, Process, TimerHandle};
use fuse_util::{DetHashMap, TimerKey};

/// The composed per-process protocol stack under the simulation kernel.
///
/// Owns the sans-io [`FuseStack`] and the application, plus the map from
/// stack [`TimerKey`]s to kernel [`TimerHandle`]s that lets the driver
/// honor `CancelTimer` eagerly (the kernel's timer wheel stays small).
/// Dereferences to the inner [`FuseStack`] for state introspection
/// (`stack.fuse`, `stack.overlay`).
pub struct NodeStack<A> {
    /// The sans-io protocol stack (overlay + FUSE).
    pub stack: FuseStack,
    /// The application layer.
    pub app: A,
    pending: DetHashMap<TimerKey, TimerHandle>,
}

impl<A> Deref for NodeStack<A> {
    type Target = FuseStack;

    fn deref(&self) -> &FuseStack {
        &self.stack
    }
}

impl<A> DerefMut for NodeStack<A> {
    fn deref_mut(&mut self) -> &mut FuseStack {
        &mut self.stack
    }
}

impl<A: FuseApp> NodeStack<A> {
    /// Builds a stack for `me`, joining through `bootstrap` (or starting a
    /// fresh ring when `None`).
    pub fn new(
        me: NodeInfo,
        bootstrap: Option<ProcId>,
        ov_cfg: OverlayConfig,
        fuse_cfg: FuseConfig,
        app: A,
    ) -> Self {
        NodeStack {
            stack: FuseStack::new(me, bootstrap, ov_cfg, fuse_cfg),
            app,
            pending: DetHashMap::default(),
        }
    }

    /// Runs `f` with the application API — the entry point for scripted
    /// calls (`CreateGroup`, `SignalFailure`, sends) from experiments.
    pub fn with_api<R>(
        &mut self,
        ctx: &mut Ctx<'_, StackMsg, TimerKey>,
        f: impl FnOnce(&mut FuseApi<'_>, &mut A) -> R,
    ) -> R {
        let now = ctx.now;
        let r = {
            let mut api = self.stack.api(now, ctx.rng());
            f(&mut api, &mut self.app)
        };
        self.drain(ctx);
        r
    }

    /// Drains the stack's output queue onto the kernel: sends and timer
    /// commands become kernel actions, application calls dispatch to the
    /// embedded [`FuseApp`] (whose own outputs append behind and drain in
    /// the same loop).
    fn drain(&mut self, ctx: &mut Ctx<'_, StackMsg, TimerKey>) {
        while let Some(out) = self.stack.poll_output() {
            match out {
                Output::Send { to, msg } => ctx.send(to, msg),
                Output::SetTimer { key, after } => {
                    let h = ctx.set_timer(after, key);
                    self.pending.insert(key, h);
                }
                Output::CancelTimer { key } => {
                    if let Some(h) = self.pending.remove(&key) {
                        ctx.cancel_timer(h);
                    }
                }
                Output::App(call) => {
                    let now = ctx.now;
                    let mut api = self.stack.api(now, ctx.rng());
                    match call {
                        AppCall::Boot => self.app.on_boot(&mut api),
                        AppCall::Event(ev) => self.app.on_fuse_event(&mut api, ev),
                        AppCall::Message { from, payload } => {
                            self.app.on_app_message(&mut api, from, payload);
                        }
                        AppCall::Timer(tag) => self.app.on_app_timer(&mut api, tag),
                    }
                }
            }
        }
    }
}

impl<A: FuseApp> Process for NodeStack<A> {
    type Msg = StackMsg;
    type Timer = TimerKey;

    fn on_boot(&mut self, ctx: &mut Ctx<'_, StackMsg, TimerKey>) {
        self.stack.handle(ctx.now, ctx.rng(), Input::Boot);
        self.drain(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, StackMsg, TimerKey>, from: ProcId, msg: StackMsg) {
        self.stack
            .handle(ctx.now, ctx.rng(), Input::Message { from, msg });
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, StackMsg, TimerKey>, key: TimerKey) {
        self.pending.remove(&key);
        self.stack.handle(ctx.now, ctx.rng(), Input::Timer(key));
        self.drain(ctx);
    }

    fn on_link_broken(&mut self, ctx: &mut Ctx<'_, StackMsg, TimerKey>, peer: ProcId) {
        self.stack
            .handle(ctx.now, ctx.rng(), Input::LinkBroken { peer });
        self.drain(ctx);
    }
}
