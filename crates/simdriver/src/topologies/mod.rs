//! Alternative liveness-checking topologies (paper §5.1).
//!
//! The default FUSE implementation shares overlay maintenance pings across
//! all groups. The paper discusses three alternatives trading scalability
//! for security, all implemented here against the same notifier semantics:
//!
//! * [`alltoall`] — per-group all-to-all pinging: n² messages per group and
//!   period, robust to dropped-notification attacks from members, worst-case
//!   notification latency ≤ 2 ping intervals (this is also the reference
//!   implementation sketched in §3).
//! * [`direct`] — per-group spanning trees *without* an overlay (a star
//!   rooted at the creator): no delegates to attack, liveness cost additive
//!   in the number of groups modulo member-pair sharing.
//! * [`central`] — a central server pings all nodes: one point of trust,
//!   minimal per-member load, limited scalability.

pub mod alltoall;
pub mod central;
pub mod direct;
