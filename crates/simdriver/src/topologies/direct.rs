//! Per-group spanning trees without an overlay (§5.1's first alternative).
//!
//! Liveness checking runs directly between group participants over a star
//! rooted at the creator. There are no delegates, so delegate attacks are
//! impossible; the cost is that ping traffic can no longer be shared with
//! overlay maintenance — it is shared only between groups whose star edges
//! coincide (same root–member pair), so "the overhead of liveness checking
//! traffic may be additive in the number of FUSE groups" (§5.1).

use fuse_sim::process::Ctx;
use fuse_sim::{Payload, ProcId, Process, SimDuration, SimTime};
use fuse_util::idgen::IdGen;
use fuse_util::{DetHashMap, DetHashSet};

use fuse_core::FuseId;

/// Configuration: the paper's 60 s period and 20 s timeout by default.
#[derive(Debug, Clone)]
pub struct DirectConfig {
    /// Ping period per monitored node pair.
    pub ping_period: SimDuration,
    /// Ack timeout.
    pub ping_timeout: SimDuration,
}

impl Default for DirectConfig {
    fn default() -> Self {
        DirectConfig {
            ping_period: SimDuration::from_secs(60),
            ping_timeout: SimDuration::from_secs(20),
        }
    }
}

/// Messages of the direct-tree notifier.
#[derive(Debug, Clone)]
pub enum DirectMsg {
    /// Install group state (root → members).
    Create {
        /// The group.
        id: FuseId,
        /// The root.
        root: ProcId,
        /// The other members.
        members: Vec<ProcId>,
    },
    /// Pair-shared liveness ping: covers every group on this edge.
    Ping {
        /// Matches ack to timeout.
        nonce: u64,
    },
    /// Acknowledgment.
    Ack {
        /// Echoed nonce.
        nonce: u64,
    },
    /// Failure notification for one group.
    Notify {
        /// The group.
        id: FuseId,
    },
}

impl Payload for DirectMsg {
    fn size_bytes(&self) -> usize {
        match self {
            DirectMsg::Create { members, .. } => 9 + 5 + 1 + 4 * members.len(),
            DirectMsg::Ping { .. } | DirectMsg::Ack { .. } => 9,
            DirectMsg::Notify { .. } => 9,
        }
    }

    fn class(&self) -> &'static str {
        match self {
            DirectMsg::Create { .. } => "direct.create",
            DirectMsg::Ping { .. } => "direct.ping",
            DirectMsg::Ack { .. } => "direct.ack",
            DirectMsg::Notify { .. } => "direct.notify",
        }
    }
}

/// Timer tags.
#[derive(Debug, Clone)]
pub enum DirectTimer {
    /// Periodic ping of a monitored peer (edge-shared).
    PingDue {
        /// The peer.
        peer: ProcId,
    },
    /// Outstanding ack timeout.
    AckTimeout {
        /// The pinged peer.
        peer: ProcId,
        /// The outstanding nonce.
        nonce: u64,
    },
}

struct Group {
    root: ProcId,
    members: Vec<ProcId>,
    burnt: bool,
}

/// A node of the direct-spanning-tree FUSE variant.
pub struct DirectNode {
    cfg: DirectConfig,
    me: ProcId,
    idgen: IdGen,
    groups: DetHashMap<FuseId, Group>,
    /// Edge-shared ping machinery: peers we monitor and why.
    edges: DetHashMap<ProcId, DetHashSet<FuseId>>,
    waiting: DetHashMap<ProcId, u64>,
    ping_armed: DetHashSet<ProcId>,
    next_nonce: u64,
    /// Failure notifications delivered to the application.
    pub notified: Vec<(SimTime, FuseId)>,
    /// Liveness pings sent (for the ablation's load accounting).
    pub pings_sent: u64,
}

impl DirectNode {
    /// Creates a node with id `me` (must equal its kernel process id).
    pub fn new(me: ProcId, cfg: DirectConfig) -> Self {
        DirectNode {
            cfg,
            me,
            idgen: IdGen::new(u64::from(me) | (1 << 41)),
            groups: DetHashMap::default(),
            edges: DetHashMap::default(),
            waiting: DetHashMap::default(),
            ping_armed: DetHashSet::default(),
            next_nonce: 0,
            notified: Vec::new(),
            pings_sent: 0,
        }
    }

    /// Creates a group rooted here over `members`.
    pub fn create_group(
        &mut self,
        ctx: &mut Ctx<'_, DirectMsg, DirectTimer>,
        members: Vec<ProcId>,
    ) -> FuseId {
        let id = FuseId(self.idgen.next_id());
        let members: Vec<ProcId> = members.into_iter().filter(|&m| m != self.me).collect();
        for &m in &members {
            ctx.send(
                m,
                DirectMsg::Create {
                    id,
                    root: self.me,
                    members: members.clone(),
                },
            );
            self.watch_edge(ctx, id, m);
        }
        self.groups.insert(
            id,
            Group {
                root: self.me,
                members,
                burnt: false,
            },
        );
        id
    }

    /// Explicitly signals failure of `id`.
    pub fn signal_failure(&mut self, ctx: &mut Ctx<'_, DirectMsg, DirectTimer>, id: FuseId) {
        self.burn(ctx, id);
    }

    /// Whether this node still considers `id` healthy.
    pub fn is_live(&self, id: FuseId) -> bool {
        self.groups.get(&id).map(|g| !g.burnt).unwrap_or(false)
    }

    fn watch_edge(&mut self, ctx: &mut Ctx<'_, DirectMsg, DirectTimer>, id: FuseId, peer: ProcId) {
        self.edges.entry(peer).or_default().insert(id);
        if self.ping_armed.insert(peer) {
            let jitter = SimDuration(rand::Rng::gen_range(
                ctx.rng(),
                0..=self.cfg.ping_period.nanos(),
            ));
            ctx.set_timer(jitter, DirectTimer::PingDue { peer });
        }
    }

    /// The monitored edge to `peer` failed: every group on it burns.
    fn edge_failed(&mut self, ctx: &mut Ctx<'_, DirectMsg, DirectTimer>, peer: ProcId) {
        let ids: Vec<FuseId> = self
            .edges
            .remove(&peer)
            .map(|s| {
                let mut v: Vec<FuseId> = s.into_iter().collect();
                v.sort_unstable();
                v
            })
            .unwrap_or_default();
        self.ping_armed.remove(&peer);
        self.waiting.remove(&peer);
        for id in ids {
            self.burn(ctx, id);
        }
    }

    /// Lights the fuse: notify locally, propagate along the star, drop.
    fn burn(&mut self, ctx: &mut Ctx<'_, DirectMsg, DirectTimer>, id: FuseId) {
        let Some(g) = self.groups.get_mut(&id) else {
            return;
        };
        if g.burnt {
            return;
        }
        g.burnt = true;
        self.notified.push((ctx.now, id));
        let root = g.root;
        let fanout: Vec<ProcId> = if root == self.me {
            // Root: tell every member.
            g.members.clone()
        } else {
            // Member: tell the root, which relays.
            vec![root]
        };
        for p in fanout {
            if p != self.me {
                ctx.send(p, DirectMsg::Notify { id });
            }
        }
        // Stop watching edges for this group.
        let peers: Vec<ProcId> = self.edges.keys().copied().collect();
        for peer in peers {
            if let Some(set) = self.edges.get_mut(&peer) {
                set.remove(&id);
                if set.is_empty() {
                    self.edges.remove(&peer);
                    self.ping_armed.remove(&peer);
                }
            }
        }
    }
}

impl Process for DirectNode {
    type Msg = DirectMsg;
    type Timer = DirectTimer;

    fn on_boot(&mut self, _ctx: &mut Ctx<'_, DirectMsg, DirectTimer>) {}

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, DirectMsg, DirectTimer>,
        from: ProcId,
        msg: DirectMsg,
    ) {
        match msg {
            DirectMsg::Create { id, root, members } => {
                if self.groups.contains_key(&id) {
                    return;
                }
                self.groups.insert(
                    id,
                    Group {
                        root,
                        members,
                        burnt: false,
                    },
                );
                // Members monitor the root from their side too ("monitored
                // from both sides").
                self.watch_edge(ctx, id, root);
            }
            DirectMsg::Ping { nonce } => {
                ctx.send(from, DirectMsg::Ack { nonce });
            }
            DirectMsg::Ack { nonce } => {
                if self.waiting.get(&from) == Some(&nonce) {
                    self.waiting.remove(&from);
                }
            }
            DirectMsg::Notify { id } => {
                let relay = self
                    .groups
                    .get(&id)
                    .map(|g| g.root == self.me && !g.burnt)
                    .unwrap_or(false);
                if relay {
                    // Root relays to everyone except the originator.
                    let members: Vec<ProcId> = self
                        .groups
                        .get(&id)
                        .map(|g| g.members.clone())
                        .unwrap_or_default();
                    for m in members {
                        if m != from {
                            ctx.send(m, DirectMsg::Notify { id });
                        }
                    }
                }
                self.burn(ctx, id);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DirectMsg, DirectTimer>, tag: DirectTimer) {
        match tag {
            DirectTimer::PingDue { peer } => {
                if !self.ping_armed.contains(&peer) {
                    return;
                }
                self.next_nonce += 1;
                let nonce = self.next_nonce;
                self.waiting.insert(peer, nonce);
                self.pings_sent += 1;
                ctx.send(peer, DirectMsg::Ping { nonce });
                ctx.set_timer(
                    self.cfg.ping_timeout,
                    DirectTimer::AckTimeout { peer, nonce },
                );
                ctx.set_timer(self.cfg.ping_period, DirectTimer::PingDue { peer });
            }
            DirectTimer::AckTimeout { peer, nonce } => {
                if self.waiting.get(&peer) == Some(&nonce) {
                    self.edge_failed(ctx, peer);
                }
            }
        }
    }

    fn on_link_broken(&mut self, ctx: &mut Ctx<'_, DirectMsg, DirectTimer>, peer: ProcId) {
        self.edge_failed(ctx, peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuse_sim::{PerfectMedium, Sim};

    fn world(n: usize, seed: u64) -> Sim<DirectNode, PerfectMedium> {
        let mut sim = Sim::new(seed, PerfectMedium::new(SimDuration::from_millis(30)));
        for i in 0..n {
            sim.add_process(DirectNode::new(i as ProcId, DirectConfig::default()));
        }
        sim
    }

    #[test]
    fn quiet_group_stays_alive() {
        let mut sim = world(5, 1);
        let id = sim
            .with_proc(0, |n, ctx| n.create_group(ctx, vec![1, 2, 3]))
            .unwrap();
        sim.run_for(SimDuration::from_secs(600));
        for p in 0..4u32 {
            assert!(sim.proc(p).unwrap().is_live(id), "node {p}");
        }
    }

    #[test]
    fn member_crash_notifies_everyone() {
        let mut sim = world(5, 2);
        let id = sim
            .with_proc(0, |n, ctx| n.create_group(ctx, vec![1, 2, 3]))
            .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        sim.crash(2);
        sim.run_for(SimDuration::from_secs(200));
        for p in [0u32, 1, 3] {
            let hits = sim
                .proc(p)
                .unwrap()
                .notified
                .iter()
                .filter(|&&(_, g)| g == id)
                .count();
            assert_eq!(hits, 1, "node {p}");
        }
    }

    #[test]
    fn root_crash_notifies_members_independently() {
        let mut sim = world(5, 3);
        let _id = sim
            .with_proc(0, |n, ctx| n.create_group(ctx, vec![1, 2]))
            .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        sim.crash(0);
        sim.run_for(SimDuration::from_secs(200));
        for p in [1u32, 2] {
            assert_eq!(sim.proc(p).unwrap().notified.len(), 1, "node {p}");
        }
    }

    #[test]
    fn member_signal_reaches_all_through_root() {
        let mut sim = world(5, 4);
        let id = sim
            .with_proc(0, |n, ctx| n.create_group(ctx, vec![1, 2, 3]))
            .unwrap();
        sim.run_for(SimDuration::from_secs(2));
        sim.with_proc(3, |n, ctx| n.signal_failure(ctx, id));
        sim.run_for(SimDuration::from_secs(10));
        for p in [0u32, 1, 2, 3] {
            assert_eq!(sim.proc(p).unwrap().notified.len(), 1, "node {p}");
        }
    }

    #[test]
    fn shared_edges_ping_once_for_many_groups() {
        // Two groups with the same root-member edges: edge pinging must not
        // double.
        let mut sim = world(3, 5);
        sim.with_proc(0, |n, ctx| n.create_group(ctx, vec![1, 2]));
        sim.with_proc(0, |n, ctx| n.create_group(ctx, vec![1, 2]));
        sim.run_for(SimDuration::from_secs(600));
        let pings_two_groups = sim.proc(0).unwrap().pings_sent;

        let mut sim1 = world(3, 5);
        sim1.with_proc(0, |n, ctx| n.create_group(ctx, vec![1, 2]));
        sim1.run_for(SimDuration::from_secs(600));
        let pings_one_group = sim1.proc(0).unwrap().pings_sent;

        assert_eq!(
            pings_two_groups, pings_one_group,
            "identical membership must share liveness traffic"
        );
    }
}
