//! Per-group all-to-all pinging (§3's reference implementation, §5.1's
//! second alternative).
//!
//! Every group member pings every other member once per period. A member
//! that misses an acknowledgment notifies its application and **stops
//! acknowledging pings for that group**, converting its individual
//! observation into a group notification: every other member's next ping
//! goes unanswered, so "failure notifications are propagated to every party
//! within twice the periodic pinging interval" (§3). Cost: n² messages per
//! group per period — the trade the §5.1 ablation quantifies.

use fuse_sim::process::Ctx;
use fuse_sim::{Payload, ProcId, Process, SimDuration, SimTime};
use fuse_util::idgen::IdGen;
use fuse_util::DetHashMap;

use fuse_core::FuseId;

/// Configuration: the paper's 60 s period and 20 s timeout by default.
#[derive(Debug, Clone)]
pub struct AllToAllConfig {
    /// Ping period per (group, peer).
    pub ping_period: SimDuration,
    /// Ack timeout.
    pub ping_timeout: SimDuration,
}

impl Default for AllToAllConfig {
    fn default() -> Self {
        AllToAllConfig {
            ping_period: SimDuration::from_secs(60),
            ping_timeout: SimDuration::from_secs(20),
        }
    }
}

/// Messages of the all-to-all notifier.
#[derive(Debug, Clone)]
pub enum A2aMsg {
    /// Install group state (creator → members).
    Create {
        /// The group.
        id: FuseId,
        /// All participants (including the creator).
        members: Vec<ProcId>,
    },
    /// Liveness ping for one group.
    Ping {
        /// The group.
        id: FuseId,
        /// Matches ack to timeout.
        nonce: u64,
    },
    /// Acknowledgment (only sent while the group is healthy locally).
    Ack {
        /// The group.
        id: FuseId,
        /// Echoed nonce.
        nonce: u64,
    },
}

impl Payload for A2aMsg {
    fn size_bytes(&self) -> usize {
        match self {
            A2aMsg::Create { members, .. } => 9 + 1 + 4 * members.len(),
            A2aMsg::Ping { .. } | A2aMsg::Ack { .. } => 17,
        }
    }

    fn class(&self) -> &'static str {
        match self {
            A2aMsg::Create { .. } => "a2a.create",
            A2aMsg::Ping { .. } => "a2a.ping",
            A2aMsg::Ack { .. } => "a2a.ack",
        }
    }
}

/// Timer tags.
#[derive(Debug, Clone)]
pub enum A2aTimer {
    /// Periodic ping of `peer` for `id`.
    PingDue {
        /// The group.
        id: FuseId,
        /// The peer to ping.
        peer: ProcId,
    },
    /// Outstanding ack timeout.
    AckTimeout {
        /// The group.
        id: FuseId,
        /// The pinged peer.
        peer: ProcId,
        /// The outstanding nonce.
        nonce: u64,
    },
}

struct Group {
    members: Vec<ProcId>,
    /// Outstanding nonce per peer.
    waiting: DetHashMap<ProcId, u64>,
    /// The fuse is lit: stop acking, application already notified.
    burnt: bool,
}

/// A node of the all-to-all FUSE variant.
pub struct AllToAllNode {
    cfg: AllToAllConfig,
    me: ProcId,
    idgen: IdGen,
    groups: DetHashMap<FuseId, Group>,
    next_nonce: u64,
    /// Failure notifications delivered to the application.
    pub notified: Vec<(SimTime, FuseId)>,
    /// Groups created from this node.
    pub created: Vec<FuseId>,
}

impl AllToAllNode {
    /// Creates a node with id `me` (must equal its kernel process id).
    pub fn new(me: ProcId, cfg: AllToAllConfig) -> Self {
        AllToAllNode {
            cfg,
            me,
            idgen: IdGen::new(u64::from(me) | (1 << 40)),
            groups: DetHashMap::default(),
            next_nonce: 0,
            notified: Vec::new(),
            created: Vec::new(),
        }
    }

    /// Creates a group over `members` (the caller is added if absent).
    pub fn create_group(
        &mut self,
        ctx: &mut Ctx<'_, A2aMsg, A2aTimer>,
        mut members: Vec<ProcId>,
    ) -> FuseId {
        if !members.contains(&self.me) {
            members.push(self.me);
        }
        members.sort_unstable();
        let id = FuseId(self.idgen.next_id());
        for &m in &members {
            if m != self.me {
                ctx.send(
                    m,
                    A2aMsg::Create {
                        id,
                        members: members.clone(),
                    },
                );
            }
        }
        self.install(ctx, id, members);
        self.created.push(id);
        id
    }

    /// Explicitly lights the fuse for `id`.
    pub fn signal_failure(&mut self, ctx: &mut Ctx<'_, A2aMsg, A2aTimer>, id: FuseId) {
        self.burn(ctx, id);
    }

    /// Whether this node still considers `id` healthy.
    pub fn is_live(&self, id: FuseId) -> bool {
        self.groups.get(&id).map(|g| !g.burnt).unwrap_or(false)
    }

    fn install(&mut self, ctx: &mut Ctx<'_, A2aMsg, A2aTimer>, id: FuseId, members: Vec<ProcId>) {
        if self.groups.contains_key(&id) {
            return;
        }
        let peers: Vec<ProcId> = members.iter().copied().filter(|&m| m != self.me).collect();
        self.groups.insert(
            id,
            Group {
                members,
                waiting: DetHashMap::default(),
                burnt: false,
            },
        );
        for peer in peers {
            // Phase jitter spreads the n² ping load across the period.
            let jitter = SimDuration(rand::Rng::gen_range(
                ctx.rng(),
                0..=self.cfg.ping_period.nanos(),
            ));
            ctx.set_timer(jitter, A2aTimer::PingDue { id, peer });
        }
    }

    fn burn(&mut self, ctx: &mut Ctx<'_, A2aMsg, A2aTimer>, id: FuseId) {
        let Some(g) = self.groups.get_mut(&id) else {
            return;
        };
        if g.burnt {
            return;
        }
        g.burnt = true;
        g.waiting.clear();
        self.notified.push((ctx.now, id));
    }
}

impl Process for AllToAllNode {
    type Msg = A2aMsg;
    type Timer = A2aTimer;

    fn on_boot(&mut self, _ctx: &mut Ctx<'_, A2aMsg, A2aTimer>) {}

    fn on_message(&mut self, ctx: &mut Ctx<'_, A2aMsg, A2aTimer>, from: ProcId, msg: A2aMsg) {
        match msg {
            A2aMsg::Create { id, members } => self.install(ctx, id, members),
            A2aMsg::Ping { id, nonce } => {
                // The heart of §3: only healthy groups acknowledge.
                let healthy = self.groups.get(&id).map(|g| !g.burnt).unwrap_or(false);
                if healthy {
                    ctx.send(from, A2aMsg::Ack { id, nonce });
                }
            }
            A2aMsg::Ack { id, nonce } => {
                if let Some(g) = self.groups.get_mut(&id) {
                    if g.waiting.get(&from) == Some(&nonce) {
                        g.waiting.remove(&from);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, A2aMsg, A2aTimer>, tag: A2aTimer) {
        match tag {
            A2aTimer::PingDue { id, peer } => {
                let Some(g) = self.groups.get_mut(&id) else {
                    return;
                };
                if g.burnt {
                    return;
                }
                self.next_nonce += 1;
                let nonce = self.next_nonce;
                g.waiting.insert(peer, nonce);
                ctx.send(peer, A2aMsg::Ping { id, nonce });
                ctx.set_timer(
                    self.cfg.ping_timeout,
                    A2aTimer::AckTimeout { id, peer, nonce },
                );
                ctx.set_timer(self.cfg.ping_period, A2aTimer::PingDue { id, peer });
            }
            A2aTimer::AckTimeout { id, peer, nonce } => {
                let missed = self
                    .groups
                    .get(&id)
                    .map(|g| !g.burnt && g.waiting.get(&peer) == Some(&nonce))
                    .unwrap_or(false);
                if missed {
                    self.burn(ctx, id);
                }
            }
        }
    }

    fn on_link_broken(&mut self, ctx: &mut Ctx<'_, A2aMsg, A2aTimer>, peer: ProcId) {
        let ids: Vec<FuseId> = self
            .groups
            .iter()
            .filter(|(_, g)| !g.burnt && g.members.contains(&peer))
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            self.burn(ctx, id);
        }
    }
}

/// Messages per period for one group of size `n` (pings + acks, both
/// directions): the n² scaling of §5.1.
pub fn steady_state_messages_per_period(n: usize) -> usize {
    2 * n * (n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuse_sim::{PerfectMedium, Sim};

    fn world(n: usize, seed: u64) -> Sim<AllToAllNode, PerfectMedium> {
        let mut sim = Sim::new(seed, PerfectMedium::new(SimDuration::from_millis(30)));
        for i in 0..n {
            sim.add_process(AllToAllNode::new(i as ProcId, AllToAllConfig::default()));
        }
        sim
    }

    #[test]
    fn quiet_group_stays_alive() {
        let mut sim = world(6, 1);
        let id = sim
            .with_proc(0, |n, ctx| n.create_group(ctx, vec![1, 2, 3]))
            .unwrap();
        sim.run_for(SimDuration::from_secs(600));
        for p in 0..4u32 {
            assert!(sim.proc(p).unwrap().is_live(id), "node {p}");
        }
    }

    #[test]
    fn crash_notifies_all_within_two_ping_intervals() {
        let mut sim = world(6, 2);
        let id = sim
            .with_proc(0, |n, ctx| n.create_group(ctx, vec![1, 2, 3]))
            .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        let t0 = sim.now();
        sim.crash(2);
        sim.run_for(SimDuration::from_secs(200));
        for p in [0u32, 1, 3] {
            let n = sim.proc(p).unwrap();
            assert_eq!(n.notified.len(), 1, "node {p}");
            assert_eq!(n.notified[0].1, id);
            let dt = n.notified[0].0.since(t0);
            // §3's bound: one period to attempt a ping plus the ack timeout.
            assert!(
                dt <= SimDuration::from_secs(2 * 60 + 20),
                "node {p} took {dt}"
            );
        }
    }

    #[test]
    fn explicit_signal_propagates_by_stopped_acks() {
        let mut sim = world(5, 3);
        let id = sim
            .with_proc(0, |n, ctx| n.create_group(ctx, vec![1, 2]))
            .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        sim.with_proc(1, |n, ctx| n.signal_failure(ctx, id));
        sim.run_for(SimDuration::from_secs(200));
        for p in [0u32, 2] {
            assert_eq!(sim.proc(p).unwrap().notified.len(), 1, "node {p}");
        }
        // The signaler was notified at signal time.
        assert_eq!(sim.proc(1).unwrap().notified.len(), 1);
    }

    #[test]
    fn notification_is_exactly_once_per_node() {
        let mut sim = world(5, 4);
        let id = sim
            .with_proc(0, |n, ctx| n.create_group(ctx, vec![1, 2, 3, 4]))
            .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        sim.crash(1);
        sim.crash(2);
        sim.run_for(SimDuration::from_secs(400));
        for p in [0u32, 3, 4] {
            let hits = sim
                .proc(p)
                .unwrap()
                .notified
                .iter()
                .filter(|&&(_, g)| g == id)
                .count();
            assert_eq!(hits, 1, "node {p}");
        }
    }

    #[test]
    fn independent_groups_are_isolated() {
        let mut sim = world(6, 5);
        let a = sim
            .with_proc(0, |n, ctx| n.create_group(ctx, vec![1, 2]))
            .unwrap();
        let b = sim
            .with_proc(0, |n, ctx| n.create_group(ctx, vec![1, 2]))
            .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        sim.with_proc(2, |n, ctx| n.signal_failure(ctx, a));
        sim.run_for(SimDuration::from_secs(300));
        for p in [0u32, 1, 2] {
            let n = sim.proc(p).unwrap();
            assert!(n.notified.iter().any(|&(_, g)| g == a), "node {p} heard a");
            assert!(n.is_live(b), "node {p} must keep group b");
        }
    }

    #[test]
    fn message_cost_scales_quadratically() {
        assert_eq!(steady_state_messages_per_period(2), 4);
        assert_eq!(steady_state_messages_per_period(4), 24);
        assert_eq!(steady_state_messages_per_period(8), 112);
    }
}
