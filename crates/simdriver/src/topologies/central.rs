//! Central-server liveness checking (§5.1's third alternative).
//!
//! One trusted server pings nothing — clients ping *it* once per period (a
//! single ping covers every group the client belongs to), and the server
//! sweeps for clients that went quiet. Per-member load is minimal; all
//! traffic funnels through the server, which is the scalability bottleneck
//! and single point of trust the paper describes. Appropriate inside a data
//! center; not across administrative domains.

use fuse_sim::process::Ctx;
use fuse_sim::{Payload, ProcId, Process, SimDuration, SimTime};
use fuse_util::idgen::IdGen;
use fuse_util::{DetHashMap, DetHashSet};

use fuse_core::FuseId;

/// Configuration.
#[derive(Debug, Clone)]
pub struct CentralConfig {
    /// Client ping period.
    pub ping_period: SimDuration,
    /// Server-side allowance before a quiet client is declared dead.
    pub client_timeout: SimDuration,
    /// Server sweep granularity.
    pub sweep_period: SimDuration,
}

impl Default for CentralConfig {
    fn default() -> Self {
        CentralConfig {
            ping_period: SimDuration::from_secs(60),
            client_timeout: SimDuration::from_secs(80),
            sweep_period: SimDuration::from_secs(5),
        }
    }
}

/// Messages of the central-server notifier.
#[derive(Debug, Clone)]
pub enum CentralMsg {
    /// Client heartbeat (covers all of the client's groups).
    Heartbeat,
    /// Create a group (creator → server).
    Create {
        /// The group.
        id: FuseId,
        /// All participants (including the creator).
        members: Vec<ProcId>,
    },
    /// Server → members: you are in this group.
    Join {
        /// The group.
        id: FuseId,
    },
    /// Client → server: explicit failure signal.
    Signal {
        /// The group.
        id: FuseId,
    },
    /// Server → members: the group failed.
    Notify {
        /// The group.
        id: FuseId,
    },
}

impl Payload for CentralMsg {
    fn size_bytes(&self) -> usize {
        match self {
            CentralMsg::Heartbeat => 1,
            CentralMsg::Create { members, .. } => 9 + 1 + 4 * members.len(),
            CentralMsg::Join { .. } | CentralMsg::Signal { .. } | CentralMsg::Notify { .. } => 9,
        }
    }

    fn class(&self) -> &'static str {
        match self {
            CentralMsg::Heartbeat => "central.ping",
            CentralMsg::Create { .. } | CentralMsg::Join { .. } => "central.create",
            CentralMsg::Signal { .. } | CentralMsg::Notify { .. } => "central.notify",
        }
    }
}

/// Timer tags.
#[derive(Debug, Clone)]
pub enum CentralTimer {
    /// Client heartbeat due.
    HeartbeatDue,
    /// Server liveness sweep.
    Sweep,
}

/// A node of the central-server variant: process 0 conventionally acts as
/// the server, everyone else as clients.
pub struct CentralNode {
    cfg: CentralConfig,
    me: ProcId,
    server: ProcId,
    idgen: IdGen,
    // --- server state ---
    groups: DetHashMap<FuseId, Vec<ProcId>>,
    last_heard: DetHashMap<ProcId, SimTime>,
    // --- client state ---
    my_groups: DetHashSet<FuseId>,
    /// Failure notifications delivered to the application.
    pub notified: Vec<(SimTime, FuseId)>,
}

impl CentralNode {
    /// Creates a node; `server` names the hub process.
    pub fn new(me: ProcId, server: ProcId, cfg: CentralConfig) -> Self {
        CentralNode {
            cfg,
            me,
            server,
            idgen: IdGen::new(u64::from(me) | (1 << 42)),
            groups: DetHashMap::default(),
            last_heard: DetHashMap::default(),
            my_groups: DetHashSet::default(),
            notified: Vec::new(),
        }
    }

    fn is_server(&self) -> bool {
        self.me == self.server
    }

    /// Client API: creates a group over `members` through the server.
    pub fn create_group(
        &mut self,
        ctx: &mut Ctx<'_, CentralMsg, CentralTimer>,
        mut members: Vec<ProcId>,
    ) -> FuseId {
        if !members.contains(&self.me) {
            members.push(self.me);
        }
        members.sort_unstable();
        let id = FuseId(self.idgen.next_id());
        self.my_groups.insert(id);
        ctx.send(self.server, CentralMsg::Create { id, members });
        id
    }

    /// Client API: explicit failure signal.
    pub fn signal_failure(&mut self, ctx: &mut Ctx<'_, CentralMsg, CentralTimer>, id: FuseId) {
        if self.my_groups.remove(&id) {
            self.notified.push((ctx.now, id));
            ctx.send(self.server, CentralMsg::Signal { id });
        }
    }

    /// Whether this client still considers `id` healthy.
    pub fn is_live(&self, id: FuseId) -> bool {
        self.my_groups.contains(&id)
    }

    /// Server-side: fail one group, notifying all members.
    fn server_fail_group(&mut self, ctx: &mut Ctx<'_, CentralMsg, CentralTimer>, id: FuseId) {
        if let Some(members) = self.groups.remove(&id) {
            for m in members {
                if m != self.me {
                    ctx.send(m, CentralMsg::Notify { id });
                }
            }
        }
    }
}

impl Process for CentralNode {
    type Msg = CentralMsg;
    type Timer = CentralTimer;

    fn on_boot(&mut self, ctx: &mut Ctx<'_, CentralMsg, CentralTimer>) {
        if self.is_server() {
            ctx.set_timer(self.cfg.sweep_period, CentralTimer::Sweep);
        } else {
            let jitter = SimDuration(rand::Rng::gen_range(
                ctx.rng(),
                0..=self.cfg.ping_period.nanos(),
            ));
            ctx.set_timer(jitter, CentralTimer::HeartbeatDue);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, CentralMsg, CentralTimer>,
        from: ProcId,
        msg: CentralMsg,
    ) {
        match msg {
            CentralMsg::Heartbeat => {
                if self.is_server() {
                    self.last_heard.insert(from, ctx.now);
                }
            }
            CentralMsg::Create { id, members } => {
                if self.is_server() {
                    for &m in &members {
                        if m != self.me {
                            ctx.send(m, CentralMsg::Join { id });
                        }
                        // A client is only monitored once it has groups; seed
                        // its liveness record at creation.
                        self.last_heard.entry(m).or_insert(ctx.now);
                    }
                    self.groups.insert(id, members);
                }
            }
            CentralMsg::Join { id } => {
                self.my_groups.insert(id);
            }
            CentralMsg::Signal { id } => {
                if self.is_server() {
                    self.server_fail_group(ctx, id);
                }
            }
            CentralMsg::Notify { id } => {
                if self.my_groups.remove(&id) {
                    self.notified.push((ctx.now, id));
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, CentralMsg, CentralTimer>, tag: CentralTimer) {
        match tag {
            CentralTimer::HeartbeatDue => {
                ctx.send(self.server, CentralMsg::Heartbeat);
                ctx.set_timer(self.cfg.ping_period, CentralTimer::HeartbeatDue);
            }
            CentralTimer::Sweep => {
                debug_assert!(self.is_server());
                let now = ctx.now;
                let dead: Vec<ProcId> = self
                    .last_heard
                    .iter()
                    .filter(|(_, &t)| now.since(t) > self.cfg.client_timeout)
                    .map(|(&p, _)| p)
                    .collect();
                for d in dead {
                    self.last_heard.remove(&d);
                    let mut failed: Vec<FuseId> = self
                        .groups
                        .iter()
                        .filter(|(_, members)| members.contains(&d))
                        .map(|(&id, _)| id)
                        .collect();
                    failed.sort_unstable();
                    for id in failed {
                        self.server_fail_group(ctx, id);
                    }
                }
                ctx.set_timer(self.cfg.sweep_period, CentralTimer::Sweep);
            }
        }
    }

    fn on_link_broken(&mut self, ctx: &mut Ctx<'_, CentralMsg, CentralTimer>, peer: ProcId) {
        if self.is_server() {
            // Treat like an immediately-expired client.
            self.last_heard.remove(&peer);
            let mut failed: Vec<FuseId> = self
                .groups
                .iter()
                .filter(|(_, members)| members.contains(&peer))
                .map(|(&id, _)| id)
                .collect();
            failed.sort_unstable();
            for id in failed {
                self.server_fail_group(ctx, id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuse_sim::{PerfectMedium, Sim};

    fn world(n: usize, seed: u64) -> Sim<CentralNode, PerfectMedium> {
        let mut sim = Sim::new(seed, PerfectMedium::new(SimDuration::from_millis(5)));
        for i in 0..n {
            sim.add_process(CentralNode::new(i as ProcId, 0, CentralConfig::default()));
        }
        sim
    }

    #[test]
    fn quiet_groups_survive() {
        let mut sim = world(6, 1);
        let id = sim
            .with_proc(1, |n, ctx| n.create_group(ctx, vec![2, 3]))
            .unwrap();
        sim.run_for(SimDuration::from_secs(600));
        for p in [1u32, 2, 3] {
            assert!(sim.proc(p).unwrap().is_live(id), "node {p}");
        }
    }

    #[test]
    fn client_crash_notifies_group() {
        let mut sim = world(6, 2);
        let id = sim
            .with_proc(1, |n, ctx| n.create_group(ctx, vec![2, 3]))
            .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        sim.crash(2);
        sim.run_for(SimDuration::from_secs(200));
        for p in [1u32, 3] {
            let hits = sim
                .proc(p)
                .unwrap()
                .notified
                .iter()
                .filter(|&&(_, g)| g == id)
                .count();
            assert_eq!(hits, 1, "node {p}");
        }
    }

    #[test]
    fn explicit_signal_fans_out_through_server() {
        let mut sim = world(6, 3);
        let id = sim
            .with_proc(1, |n, ctx| n.create_group(ctx, vec![2, 3, 4]))
            .unwrap();
        sim.run_for(SimDuration::from_secs(2));
        sim.with_proc(4, |n, ctx| n.signal_failure(ctx, id));
        sim.run_for(SimDuration::from_secs(5));
        for p in [1u32, 2, 3, 4] {
            assert_eq!(sim.proc(p).unwrap().notified.len(), 1, "node {p}");
        }
    }

    #[test]
    fn unrelated_groups_survive_a_crash() {
        let mut sim = world(8, 4);
        let dying = sim
            .with_proc(1, |n, ctx| n.create_group(ctx, vec![2]))
            .unwrap();
        let healthy = sim
            .with_proc(3, |n, ctx| n.create_group(ctx, vec![4, 5]))
            .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        sim.crash(2);
        sim.run_for(SimDuration::from_secs(300));
        assert_eq!(sim.proc(1).unwrap().notified.len(), 1);
        assert!(sim.proc(1).unwrap().notified[0].1 == dying);
        for p in [3u32, 4, 5] {
            assert!(sim.proc(p).unwrap().is_live(healthy), "node {p}");
        }
    }

    #[test]
    fn per_member_load_is_one_ping_per_period() {
        // §5.1: "each group member only pings the central server during
        // each ping interval" — independent of how many groups it is in.
        let mut sim = world(4, 5);
        for _ in 0..10 {
            sim.with_proc(1, |n, ctx| n.create_group(ctx, vec![2, 3]));
        }
        sim.run_for(SimDuration::from_secs(600));
        // No assertion on exact counts here (covered by the ablation
        // bench); structural check: client 1 is in 10 groups with a single
        // heartbeat timer.
        assert_eq!(sim.proc(1).unwrap().my_groups.len(), 10);
    }
}
