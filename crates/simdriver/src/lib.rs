//! Deterministic simulation driver for the sans-io FUSE stack.
//!
//! [`NodeStack`] adapts [`fuse_core::FuseStack`] — a pure state machine
//! with an input/output-queue interface — to the simulation kernel's
//! [`fuse_sim::Process`] trait: kernel events become [`fuse_core::Input`]s,
//! queued [`fuse_core::Output`]s become kernel sends and timers, and
//! [`fuse_core::AppCall`]s dispatch to the embedded [`fuse_core::FuseApp`].
//! The drain preserves the stack's emission order, which is what keeps
//! simulated traces bit-identical to the pre-sans-io stack.
//!
//! The [`topologies`] module hosts the paper's §5.1 alternative
//! liveness-checking topologies — sim-kernel processes in their own right,
//! compared against the overlay-sharing stack by the ablation experiment.

pub mod stack;
pub mod topologies;

pub use stack::NodeStack;
