//! Shared liveness plane integration tests: the node-level SWIM-style
//! detector (`fuse_liveness`) replacing per-(group, link) expiry timers.
//!
//! These tests pin the subscription semantics end to end: a dead peer burns
//! exactly the groups subscribed to it (no over- or under-burn), group
//! churn registers and unregisters peers in the detector, a quiet network
//! never suspects anyone, and the shared plane's notification behaviour
//! matches the per-group path on the same scenario.

use bytes::Bytes;
use rand::rngs::StdRng;

use fuse_core::{FuseApi, FuseApp, FuseConfig, FuseEvent, FuseId, NotifyReason, Role};
use fuse_overlay::{build_oracle_tables, NodeInfo, NodeName, OverlayConfig};
use fuse_sim::{Medium, PerfectMedium, ProcId, Sim, SimDuration, SimTime, Verdict};
use fuse_simdriver::NodeStack;

#[derive(Default)]
struct Recorder {
    events: Vec<(SimTime, FuseEvent)>,
}

impl FuseApp for Recorder {
    fn on_fuse_event(&mut self, api: &mut FuseApi<'_>, ev: FuseEvent) {
        self.events.push((api.now(), ev));
    }

    fn on_app_message(&mut self, _api: &mut FuseApi<'_>, _from: ProcId, _payload: Bytes) {}
}

/// Silently black-holes all traffic to and from one node once `after` is
/// reached — a silent partition, unlike a crash, produces no sender-side
/// connection-break notices, so only timeout-driven detection can see it.
struct MuteMedium {
    inner: PerfectMedium,
    mute: ProcId,
    after: SimTime,
}

impl Medium for MuteMedium {
    fn unicast(
        &mut self,
        now: SimTime,
        rng: &mut StdRng,
        from: ProcId,
        to: ProcId,
        size: usize,
        class: &'static str,
    ) -> Verdict {
        if now >= self.after && (from == self.mute || to == self.mute) {
            return Verdict::Drop;
        }
        self.inner.unicast(now, rng, from, to, size, class)
    }

    fn node_up(&mut self, id: ProcId) {
        self.inner.node_up(id);
    }

    fn node_down(&mut self, id: ProcId) {
        self.inner.node_down(id);
    }
}

fn shared_cfg() -> FuseConfig {
    FuseConfig::builder()
        .shared_plane(true)
        .build()
        .expect("default shared-plane config is valid")
}

/// An overlay tuned so slow that its own ping path cannot detect anything
/// within a test window: failure detection must then come from the shared
/// liveness plane.
fn deaf_overlay() -> OverlayConfig {
    OverlayConfig {
        ping_period: SimDuration::from_secs(600),
        ping_timeout: SimDuration::from_secs(200),
        maintenance_period: SimDuration::from_secs(1200),
        ..OverlayConfig::default()
    }
}

fn world_on<M: Medium>(
    n: usize,
    seed: u64,
    ov_cfg: OverlayConfig,
    fuse_cfg: FuseConfig,
    medium: M,
) -> (Sim<NodeStack<Recorder>, M>, Vec<NodeInfo>) {
    let infos: Vec<NodeInfo> = (0..n)
        .map(|i| NodeInfo::new(i as ProcId, NodeName::numbered(i)))
        .collect();
    let tables = build_oracle_tables(&infos, &ov_cfg);
    let mut sim = Sim::new(seed, medium);
    for (info, (cw, ccw, rt)) in infos.iter().zip(tables) {
        let mut stack = NodeStack::new(
            info.clone(),
            None,
            ov_cfg.clone(),
            fuse_cfg.clone(),
            Recorder::default(),
        );
        stack.overlay.preload_tables(cw, ccw, rt);
        sim.add_process(stack);
    }
    (sim, infos)
}

fn world_with(
    n: usize,
    seed: u64,
    ov_cfg: OverlayConfig,
    fuse_cfg: FuseConfig,
) -> (Sim<NodeStack<Recorder>, PerfectMedium>, Vec<NodeInfo>) {
    let medium = PerfectMedium::new(SimDuration::from_millis(25));
    world_on(n, seed, ov_cfg, fuse_cfg, medium)
}

fn create_group<M: Medium>(
    sim: &mut Sim<NodeStack<Recorder>, M>,
    infos: &[NodeInfo],
    root: ProcId,
    members: &[ProcId],
) -> FuseId {
    let others: Vec<NodeInfo> = members.iter().map(|&m| infos[m as usize].clone()).collect();
    let ticket = sim
        .with_proc(root, |stack, ctx| {
            stack.with_api(ctx, |api, _app| api.create_group(others))
        })
        .expect("root alive");
    sim.run_for(SimDuration::from_secs(2));
    let created = sim.proc(root).unwrap().app.events.iter().any(|(_, ev)| {
        matches!(ev, FuseEvent::Created { ticket: t, result: Ok(h) }
            if t.id() == ticket.id() && h.id == ticket.id() && h.role == Role::Root)
    });
    assert!(created, "creation must complete");
    ticket.id()
}

fn failures_of<M: Medium>(
    sim: &Sim<NodeStack<Recorder>, M>,
    node: ProcId,
    id: FuseId,
) -> Vec<NotifyReason> {
    sim.proc(node)
        .map(|s| {
            s.app
                .events
                .iter()
                .filter_map(|(_, ev)| ev.notification().filter(|n| n.id == id))
                .map(|n| n.reason)
                .collect()
        })
        .unwrap_or_default()
}

/// The plane invariant: on every node, the detector probes exactly the
/// peers carrying at least one subscription.
fn assert_plane_consistent<M: Medium>(sim: &Sim<NodeStack<Recorder>, M>) {
    for p in 0..sim.process_count() as ProcId {
        if let Some(s) = sim.proc(p) {
            assert_eq!(
                s.fuse.detector().peers(),
                s.fuse.subscriptions().peers(),
                "node {p}: detector must track exactly the subscribed peers"
            );
        }
    }
}

#[test]
fn quiet_network_never_suspects_or_burns() {
    let (mut sim, infos) = world_with(24, 41, OverlayConfig::default(), shared_cfg());
    sim.run_for(SimDuration::from_secs(5));
    let mut ids = Vec::new();
    for root in [0u32, 1, 2, 3] {
        let members = [(root + 5) % 24, (root + 10) % 24, (root + 15) % 24];
        ids.push(create_group(&mut sim, &infos, root, &members));
    }
    assert_plane_consistent(&sim);
    // 20 quiet minutes: many probe rounds on every subscribed peer.
    sim.run_for(SimDuration::from_secs(1200));
    for &id in &ids {
        for node in 0..24u32 {
            assert!(
                failures_of(&sim, node, id).is_empty(),
                "false positive on node {node}"
            );
        }
    }
    let mut probed = 0;
    for p in 0..sim.process_count() as ProcId {
        let s = sim.proc(p).unwrap();
        assert_eq!(s.fuse.stats().suspects, 0, "node {p} suspected a live peer");
        assert_eq!(s.fuse.stats().peer_deaths, 0);
        probed += s.fuse.detector().peer_count();
    }
    assert!(probed > 0, "the plane must actually be probing peers");
    assert_plane_consistent(&sim);
}

#[test]
fn silently_partitioned_peer_burns_exactly_the_subscribed_groups() {
    // The overlay is deaf and the partition is silent (no connection-break
    // notices): the shared plane's suspect-then-kill is the only possible
    // detection path.
    let mute_at = SimTime::ZERO + SimDuration::from_secs(20);
    let medium = MuteMedium {
        inner: PerfectMedium::new(SimDuration::from_millis(25)),
        mute: 8,
        after: mute_at,
    };
    let (mut sim, infos) = world_on(24, 42, deaf_overlay(), shared_cfg(), medium);
    sim.run_for(SimDuration::from_secs(5));
    // Group A monitors node 8; group B lives on disjoint nodes.
    let id_a = create_group(&mut sim, &infos, 0, &[4, 8]);
    let id_b = create_group(&mut sim, &infos, 1, &[5, 9]);
    assert_plane_consistent(&sim);
    // Run past the mute point, worst-case detection (110 s), repair
    // failure, and the partitioned member's own give-up.
    sim.run_for(SimDuration::from_secs(500));
    for node in [0u32, 4, 8] {
        assert_eq!(
            failures_of(&sim, node, id_a).len(),
            1,
            "participant {node} of group A must be notified exactly once"
        );
    }
    for node in 0..24u32 {
        assert!(
            failures_of(&sim, node, id_b).is_empty(),
            "group B does not subscribe to node 8 and must not burn (node {node})"
        );
    }
    let deaths: u64 = (0..24u32)
        .map(|p| sim.proc(p).map_or(0, |s| s.fuse.stats().peer_deaths))
        .sum();
    let suspects: u64 = (0..24u32)
        .map(|p| sim.proc(p).map_or(0, |s| s.fuse.stats().suspects))
        .sum();
    assert!(
        deaths >= 1 && suspects >= 1,
        "detection must have gone through suspect-then-kill (suspects {suspects}, deaths {deaths})"
    );
    for p in 0..24u32 {
        if let Some(s) = sim.proc(p) {
            assert!(!s.fuse.knows_group(id_a), "node {p} holds orphaned A state");
        }
    }
    assert_plane_consistent(&sim);
}

#[test]
fn group_churn_registers_and_unregisters_peers() {
    let (mut sim, infos) = world_with(16, 43, OverlayConfig::default(), shared_cfg());
    sim.run_for(SimDuration::from_secs(5));
    let id_a = create_group(&mut sim, &infos, 0, &[3, 6]);
    let id_b = create_group(&mut sim, &infos, 0, &[3, 9]);
    assert_plane_consistent(&sim);
    let total_subs: usize = (0..16u32)
        .map(|p| sim.proc(p).map_or(0, |s| s.fuse.subscriptions().len()))
        .sum();
    assert!(total_subs > 0, "live groups must hold subscriptions");

    // Burn A explicitly: its subscriptions must unwind, B's must survive.
    sim.with_proc(3, |stack, ctx| {
        stack.with_api(ctx, |api, _| api.signal_failure(id_a))
    });
    sim.run_for(SimDuration::from_secs(60));
    for p in 0..16u32 {
        let s = sim.proc(p).unwrap();
        for peer in s.fuse.subscriptions().peers() {
            assert!(
                !s.fuse.subscriptions().is_subscribed(peer, id_a),
                "node {p} still subscribed for burned group A"
            );
        }
    }
    assert!(
        (0..16u32).any(|p| !sim.proc(p).unwrap().fuse.subscriptions().is_empty()),
        "group B must still hold subscriptions"
    );
    assert_plane_consistent(&sim);

    // Burn B too: every registry and every detector must drain to empty.
    sim.with_proc(9, |stack, ctx| {
        stack.with_api(ctx, |api, _| api.signal_failure(id_b))
    });
    sim.run_for(SimDuration::from_secs(60));
    for p in 0..16u32 {
        let s = sim.proc(p).unwrap();
        assert!(
            s.fuse.subscriptions().is_empty(),
            "node {p} must have no subscriptions left"
        );
        assert_eq!(
            s.fuse.detector().peer_count(),
            0,
            "node {p} must have stopped probing everyone"
        );
    }
}

/// Differential check in miniature: the same crash scenario produces the
/// same per-node notification outcome (count and reason) in both modes.
#[test]
fn shared_plane_matches_per_group_path_on_a_crash() {
    let run = |shared: bool| {
        let cfg = if shared {
            shared_cfg()
        } else {
            FuseConfig::default()
        };
        let (mut sim, infos) = world_with(24, 44, OverlayConfig::default(), cfg);
        sim.run_for(SimDuration::from_secs(5));
        let id = create_group(&mut sim, &infos, 0, &[4, 8, 15]);
        sim.crash(8);
        sim.run_for(SimDuration::from_secs(400));
        let outcome: Vec<(ProcId, Vec<NotifyReason>)> =
            (0..24u32).map(|n| (n, failures_of(&sim, n, id))).collect();
        outcome
    };
    let per_group = run(false);
    let shared = run(true);
    assert_eq!(
        per_group, shared,
        "both modes must notify the same nodes for the same reasons"
    );
    // And the scenario is not vacuous: survivors were notified.
    let notified: usize = per_group.iter().map(|(_, v)| v.len()).sum();
    assert_eq!(notified, 3, "root and both survivors hear the failure");
}
