//! Full-stack integration tests: overlay + FUSE + application over the
//! deterministic kernel with a perfect medium.
//!
//! These tests exercise the paper's semantics end to end: blocking create,
//! explicit signal, crash detection through shared liveness pings, repair,
//! exactly-once notification, and the no-orphaned-state guarantee.

use bytes::Bytes;

use fuse_core::{CreateError, FuseApi, FuseApp, FuseConfig, FuseEvent, FuseId, NotifyReason, Role};
use fuse_overlay::{build_oracle_tables, NodeInfo, NodeName, OverlayConfig};
use fuse_sim::{PerfectMedium, ProcId, Sim, SimDuration, SimTime};
use fuse_simdriver::NodeStack;

/// Records every FUSE event with its arrival time.
#[derive(Default)]
struct Recorder {
    events: Vec<(SimTime, FuseEvent)>,
    app_msgs: Vec<(ProcId, Bytes)>,
}

impl FuseApp for Recorder {
    fn on_fuse_event(&mut self, api: &mut FuseApi<'_>, ev: FuseEvent) {
        self.events.push((api.now(), ev));
    }

    fn on_app_message(&mut self, api: &mut FuseApi<'_>, from: ProcId, payload: Bytes) {
        let _ = api;
        self.app_msgs.push((from, payload));
    }
}

type World = Sim<NodeStack<Recorder>, PerfectMedium>;

/// Builds an `n`-node world with converged (oracle) overlay tables.
fn world(n: usize, seed: u64) -> (World, Vec<NodeInfo>) {
    let infos: Vec<NodeInfo> = (0..n)
        .map(|i| NodeInfo::new(i as ProcId, NodeName::numbered(i)))
        .collect();
    let ov_cfg = OverlayConfig::default();
    let tables = build_oracle_tables(&infos, &ov_cfg);
    let medium = PerfectMedium::new(SimDuration::from_millis(25));
    let mut sim = Sim::new(seed, medium);
    for (info, (cw, ccw, rt)) in infos.iter().zip(tables) {
        let mut stack = NodeStack::new(
            info.clone(),
            None,
            ov_cfg.clone(),
            FuseConfig::default(),
            Recorder::default(),
        );
        stack.overlay.preload_tables(cw, ccw, rt);
        sim.add_process(stack);
    }
    (sim, infos)
}

fn create_group(sim: &mut World, infos: &[NodeInfo], root: ProcId, members: &[ProcId]) -> FuseId {
    let others: Vec<NodeInfo> = members.iter().map(|&m| infos[m as usize].clone()).collect();
    let ticket = sim
        .with_proc(root, |stack, ctx| {
            stack.with_api(ctx, |api, _app| api.create_group(others))
        })
        .expect("root alive");
    // Let creation complete.
    sim.run_for(SimDuration::from_secs(2));
    let created = sim.proc(root).unwrap().app.events.iter().any(|(_, ev)| {
        matches!(ev, FuseEvent::Created { ticket: t, result: Ok(h) }
            if t.id() == ticket.id() && h.id == ticket.id() && h.role == Role::Root)
    });
    assert!(created, "creation must complete");
    ticket.id()
}

fn failures_of(sim: &World, node: ProcId, id: FuseId) -> Vec<SimTime> {
    sim.proc(node)
        .map(|s| {
            s.app
                .events
                .iter()
                .filter(|(_, ev)| matches!(ev.notification(), Some(n) if n.id == id))
                .map(|&(t, _)| t)
                .collect()
        })
        .unwrap_or_default()
}

/// No node in the world retains any state for `id`.
fn assert_no_orphans(sim: &World, id: FuseId) {
    for p in 0..sim.process_count() as ProcId {
        if let Some(s) = sim.proc(p) {
            assert!(
                !s.fuse.knows_group(id),
                "node {p} still holds state for {id}"
            );
        }
    }
}

#[test]
fn create_then_signal_notifies_all_members_exactly_once() {
    let (mut sim, infos) = world(24, 7);
    sim.run_for(SimDuration::from_secs(5));
    let members = [3, 9, 17];
    let id = create_group(&mut sim, &infos, 0, &members);

    // A random member signals failure explicitly.
    sim.with_proc(9, |stack, ctx| {
        stack.with_api(ctx, |api, _| api.signal_failure(id))
    });
    sim.run_for(SimDuration::from_secs(5));

    for node in [0u32, 3, 9, 17] {
        let f = failures_of(&sim, node, id);
        assert_eq!(f.len(), 1, "node {node} must hear exactly one failure");
    }
    assert_no_orphans(&sim, id);
}

#[test]
fn signaled_notification_is_fast() {
    let (mut sim, infos) = world(24, 8);
    sim.run_for(SimDuration::from_secs(5));
    let id = create_group(&mut sim, &infos, 0, &[5, 11]);
    let t0 = sim.now();
    sim.with_proc(5, |stack, ctx| {
        stack.with_api(ctx, |api, _| api.signal_failure(id))
    });
    sim.run_for(SimDuration::from_secs(2));
    for node in [0u32, 11] {
        let f = failures_of(&sim, node, id);
        assert_eq!(f.len(), 1);
        // Member → root → member: a few 25 ms one-way hops, well under 1 s.
        assert!(f[0].since(t0) < SimDuration::from_secs(1));
    }
}

#[test]
fn member_crash_notifies_survivors_within_detection_bound() {
    let (mut sim, infos) = world(24, 9);
    sim.run_for(SimDuration::from_secs(5));
    let id = create_group(&mut sim, &infos, 0, &[4, 8, 15]);
    let t0 = sim.now();
    sim.crash(8);
    // Bound: ping interval (60) + ping timeout (20) + repair round (120)
    // plus margin.
    sim.run_for(SimDuration::from_secs(300));
    for node in [0u32, 4, 15] {
        let f = failures_of(&sim, node, id);
        assert_eq!(f.len(), 1, "survivor {node} must be notified once");
        assert!(
            f[0].since(t0) < SimDuration::from_secs(240),
            "notification too slow: {:?}",
            f[0].since(t0)
        );
    }
    assert_no_orphans(&sim, id);
}

#[test]
fn root_crash_notifies_members() {
    let (mut sim, infos) = world(24, 10);
    sim.run_for(SimDuration::from_secs(5));
    let id = create_group(&mut sim, &infos, 2, &[6, 13]);
    sim.crash(2);
    sim.run_for(SimDuration::from_secs(300));
    for node in [6u32, 13] {
        assert_eq!(failures_of(&sim, node, id).len(), 1, "member {node}");
    }
    assert_no_orphans(&sim, id);
}

#[test]
fn no_false_positives_in_quiet_network() {
    let (mut sim, infos) = world(24, 11);
    sim.run_for(SimDuration::from_secs(5));
    let mut ids = Vec::new();
    for root in [0u32, 1, 2, 3] {
        let members = [(root + 5) % 24, (root + 10) % 24, (root + 15) % 24];
        ids.push(create_group(&mut sim, &infos, root, &members));
    }
    // 20 quiet minutes: several ping periods and link-expiry windows.
    sim.run_for(SimDuration::from_secs(1200));
    for (i, &id) in ids.iter().enumerate() {
        for node in 0..24u32 {
            assert!(
                failures_of(&sim, node, id).is_empty(),
                "false positive for group {i} on node {node}"
            );
        }
    }
}

#[test]
fn register_handler_on_unknown_group_fires_immediately() {
    let (mut sim, _infos) = world(8, 12);
    sim.run_for(SimDuration::from_secs(2));
    let ghost = FuseId(0xdeadbeef);
    sim.with_proc(3, |stack, ctx| {
        stack.with_api(ctx, |api, _| api.register_handler(ghost, 9))
    });
    sim.run_for(SimDuration::from_millis(10));
    let events = &sim.proc(3).unwrap().app.events;
    let note = events
        .iter()
        .find_map(|(_, ev)| ev.notification().filter(|n| n.id == ghost))
        .expect("immediate callback");
    assert_eq!(note.reason, NotifyReason::UnknownGroup);
    assert_eq!(note.role, Role::Observer);
    assert_eq!(note.ctx, Some(9));
}

#[test]
fn create_with_dead_member_fails() {
    let (mut sim, infos) = world(16, 13);
    sim.run_for(SimDuration::from_secs(2));
    sim.crash(7);
    let others: Vec<NodeInfo> = [3u32, 7]
        .iter()
        .map(|&m| infos[m as usize].clone())
        .collect();
    let ticket = sim
        .with_proc(0, |stack, ctx| {
            stack.with_api(ctx, |api, _| api.create_group(others))
        })
        .unwrap();
    sim.run_for(SimDuration::from_secs(60));
    let events = &sim.proc(0).unwrap().app.events;
    let failed = events.iter().any(|(_, ev)| {
        matches!(
            ev,
            FuseEvent::Created {
                ticket: t,
                result: Err(CreateError::MemberUnreachable | CreateError::ConnectionBroken)
            } if t.id() == ticket.id()
        )
    });
    assert!(
        failed,
        "creation against a dead member must fail: {events:?}"
    );
    // The contacted live member must not be left with orphaned state, and
    // the state it briefly installed burns with the create-failed cause.
    sim.run_for(SimDuration::from_secs(300));
    assert!(!sim.proc(3).unwrap().fuse.knows_group(ticket.id()));
    let member_events = &sim.proc(3).unwrap().app.events;
    let burned = member_events
        .iter()
        .find_map(|(_, ev)| ev.notification().filter(|n| n.id == ticket.id()));
    if let Some(n) = burned {
        assert_eq!(n.reason, NotifyReason::CreateFailed);
    }
}

#[test]
fn crashed_and_restarted_member_groups_fail_via_reconciliation() {
    let (mut sim, infos) = world(24, 14);
    sim.run_for(SimDuration::from_secs(5));
    let id = create_group(&mut sim, &infos, 0, &[4, 8]);
    // Crash and immediately restart node 4 with fresh state (no stable
    // storage, §3.6): it forgets the group; reconciliation must burn it.
    sim.crash(4);
    let ov_cfg = OverlayConfig::default();
    let all: Vec<NodeInfo> = infos.clone();
    let tables = build_oracle_tables(&all, &ov_cfg);
    let mut stack = NodeStack::new(
        infos[4].clone(),
        None,
        ov_cfg.clone(),
        FuseConfig::default(),
        Recorder::default(),
    );
    let (cw, ccw, rt) = tables[4].clone();
    stack.overlay.preload_tables(cw, ccw, rt);
    sim.restart(4, stack);
    sim.run_for(SimDuration::from_secs(400));
    for node in [0u32, 8] {
        assert_eq!(
            failures_of(&sim, node, id).len(),
            1,
            "survivor {node} must learn of the forgotten group"
        );
    }
    assert_no_orphans(&sim, id);
}

#[test]
fn independent_groups_do_not_interfere() {
    let (mut sim, infos) = world(24, 15);
    sim.run_for(SimDuration::from_secs(5));
    // Two groups over the same nodes (§1: groups may span the same set).
    let id_a = create_group(&mut sim, &infos, 0, &[5, 10]);
    let id_b = create_group(&mut sim, &infos, 0, &[5, 10]);
    sim.with_proc(5, |stack, ctx| {
        stack.with_api(ctx, |api, _| api.signal_failure(id_a))
    });
    sim.run_for(SimDuration::from_secs(60));
    for node in [0u32, 5, 10] {
        assert_eq!(failures_of(&sim, node, id_a).len(), 1);
        assert!(
            failures_of(&sim, node, id_b).is_empty(),
            "group B must survive group A's failure"
        );
    }
    assert_no_orphans(&sim, id_a);
}

#[test]
fn deterministic_replay() {
    let run = |seed| {
        let (mut sim, infos) = world(16, seed);
        sim.run_for(SimDuration::from_secs(5));
        let id = create_group(&mut sim, &infos, 0, &[3, 6, 9]);
        sim.crash(6);
        sim.run_for(SimDuration::from_secs(400));
        let times: Vec<u64> = [0u32, 3, 9]
            .iter()
            .flat_map(|&n| failures_of(&sim, n, id))
            .map(|t| t.nanos())
            .collect();
        (sim.events_executed(), times)
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99).1, Vec::<u64>::new());
}

/// The cached per-peer piggyback digest must equal a fresh SHA-1
/// recomputation at every point in a group's life: after creation (links
/// added), during steady state (ping refreshes must NOT touch the cache),
/// and after failures (links removed, cache entries dropped).
#[test]
fn piggyback_digest_cache_matches_recomputation() {
    let (mut sim, infos) = world(24, 17);
    sim.run_for(SimDuration::from_secs(5));
    let check_all = |sim: &World, when: &str| {
        for p in 0..sim.process_count() as ProcId {
            if let Some(s) = sim.proc(p) {
                assert!(
                    s.fuse.hash_cache_consistent(),
                    "node {p} digest cache diverged {when}"
                );
            }
        }
    };
    let id_a = create_group(&mut sim, &infos, 0, &[4, 9, 14]);
    let id_b = create_group(&mut sim, &infos, 2, &[9, 19]);
    check_all(&sim, "after creation");
    // Several ping periods: hash agreement refreshes must be pure lookups
    // that leave the cache exactly consistent.
    sim.run_for(SimDuration::from_secs(200));
    check_all(&sim, "at steady state");
    sim.with_proc(9, |stack, ctx| {
        stack.with_api(ctx, |api, _| api.signal_failure(id_a))
    });
    sim.run_for(SimDuration::from_secs(30));
    check_all(&sim, "after a signalled failure");
    sim.crash(19);
    sim.run_for(SimDuration::from_secs(300));
    check_all(&sim, "after a crash-driven failure");
    for node in [2u32, 9] {
        assert_eq!(failures_of(&sim, node, id_b).len(), 1, "node {node}");
    }
}

#[test]
fn app_messages_flow_between_stacks() {
    let (mut sim, _infos) = world(8, 16);
    sim.with_proc(0, |stack, ctx| {
        stack.with_api(ctx, |api, _| api.send_app(5, Bytes::from_static(b"hi")))
    });
    sim.run_for(SimDuration::from_secs(1));
    let msgs = &sim.proc(5).unwrap().app.app_msgs;
    assert_eq!(msgs.len(), 1);
    assert_eq!(&msgs[0].1[..], b"hi");
    assert_eq!(msgs[0].0, 0);
}
