//! Deterministic unique-identifier generation.
//!
//! FUSE IDs must be "globally unique" (paper §6.2). In a real deployment they
//! combine the creator's address with local entropy; in the simulator we
//! derive them from the creating node's index and a per-node counter, mixed
//! through a 64-bit finalizer so IDs are scattered rather than sequential.

/// Per-node monotonic counter producing scattered-but-deterministic IDs.
#[derive(Debug, Clone, Default)]
pub struct IdGen {
    node_tag: u64,
    counter: u64,
}

impl IdGen {
    /// Creates a generator namespaced by `node_tag` (e.g. node index).
    pub fn new(node_tag: u64) -> Self {
        IdGen {
            node_tag,
            counter: 0,
        }
    }

    /// Returns the next unique 64-bit identifier.
    pub fn next_id(&mut self) -> u64 {
        self.counter += 1;
        mix64(self.node_tag.rotate_left(32) ^ self.counter)
    }

    /// Number of IDs handed out so far.
    pub fn issued(&self) -> u64 {
        self.counter
    }
}

/// SplitMix64 finalizer: a bijection on `u64`, so distinct inputs can never
/// collide.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_unique_within_a_node() {
        let mut g = IdGen::new(7);
        let ids: HashSet<u64> = (0..10_000).map(|_| g.next_id()).collect();
        assert_eq!(ids.len(), 10_000);
    }

    #[test]
    fn ids_are_unique_across_nodes() {
        let mut seen = HashSet::new();
        for node in 0..64 {
            let mut g = IdGen::new(node);
            for _ in 0..256 {
                assert!(seen.insert(g.next_id()), "collision across nodes");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = IdGen::new(42);
        let mut b = IdGen::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_id(), b.next_id());
        }
    }

    #[test]
    fn mix64_is_not_identity_like() {
        // Consecutive inputs should map far apart.
        let d = mix64(1) ^ mix64(2);
        assert!(d.count_ones() > 8);
    }
}
