//! Capped exponential backoff.
//!
//! FUSE group repair uses "per-group exponential backoffs (capped at 40
//! seconds) for the frequency of repairs" (paper §6.5). The backoff is
//! deliberately deterministic: jitter, where wanted, is applied by the caller
//! from the simulation RNG so that traces stay reproducible.

/// Deterministic exponential backoff: `base * 2^attempts`, capped.
///
/// # Examples
///
/// ```
/// use fuse_util::Backoff;
///
/// let mut b = Backoff::new(1_000, 40_000);
/// assert_eq!(b.next_delay(), 1_000);
/// assert_eq!(b.next_delay(), 2_000);
/// assert_eq!(b.next_delay(), 4_000);
/// b.reset();
/// assert_eq!(b.next_delay(), 1_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backoff {
    base: u64,
    cap: u64,
    attempts: u32,
}

impl Backoff {
    /// Creates a backoff starting at `base` and never exceeding `cap`.
    ///
    /// Units are up to the caller (the simulator uses nanoseconds).
    pub fn new(base: u64, cap: u64) -> Self {
        assert!(base > 0, "backoff base must be positive");
        assert!(cap >= base, "cap must be at least the base");
        Backoff {
            base,
            cap,
            attempts: 0,
        }
    }

    /// Returns the next delay and advances the attempt counter.
    pub fn next_delay(&mut self) -> u64 {
        let d = self.peek();
        self.attempts = self.attempts.saturating_add(1);
        d
    }

    /// Returns the delay the next call to [`Backoff::next_delay`] will yield.
    pub fn peek(&self) -> u64 {
        // `base << attempts` overflows once `attempts` reaches the number of
        // leading zeros in `base`; `checked_shl` would not catch that.
        if self.attempts >= self.base.leading_zeros() {
            self.cap
        } else {
            (self.base << self.attempts).min(self.cap)
        }
    }

    /// Number of delays handed out since construction or the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Resets to the initial delay; used when a repair round succeeds.
    pub fn reset(&mut self) {
        self.attempts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_cap() {
        let mut b = Backoff::new(5, 40);
        assert_eq!(b.next_delay(), 5);
        assert_eq!(b.next_delay(), 10);
        assert_eq!(b.next_delay(), 20);
        assert_eq!(b.next_delay(), 40);
        assert_eq!(b.next_delay(), 40);
        assert_eq!(b.attempts(), 5);
    }

    #[test]
    fn paper_parameters_cap_at_40_seconds() {
        // Base 1 s, cap 40 s, expressed in nanoseconds as the simulator does.
        const SEC: u64 = 1_000_000_000;
        let mut b = Backoff::new(SEC, 40 * SEC);
        let delays: Vec<u64> = (0..8).map(|_| b.next_delay()).collect();
        assert_eq!(
            delays,
            [
                SEC,
                2 * SEC,
                4 * SEC,
                8 * SEC,
                16 * SEC,
                32 * SEC,
                40 * SEC,
                40 * SEC
            ]
        );
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let mut b = Backoff::new(1 << 40, u64::MAX);
        for _ in 0..200 {
            b.next_delay();
        }
        assert_eq!(b.peek(), u64::MAX);
    }

    #[test]
    fn reset_restores_base() {
        let mut b = Backoff::new(3, 100);
        b.next_delay();
        b.next_delay();
        b.reset();
        assert_eq!(b.peek(), 3);
        assert_eq!(b.attempts(), 0);
    }

    #[test]
    #[should_panic(expected = "base must be positive")]
    fn zero_base_panics() {
        let _ = Backoff::new(0, 10);
    }
}
