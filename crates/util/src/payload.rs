//! The message-payload contract shared by every driver.
//!
//! `size_bytes` is the on-wire size used by network models and byte
//! accounting; `class` is a short label used by message-rate metrics
//! (Figure 10 distinguishes overlay maintenance from FUSE repair traffic).

/// Message payload carried between processes.
pub trait Payload: Clone {
    /// On-wire size in bytes.
    fn size_bytes(&self) -> usize;

    /// Metrics class label.
    fn class(&self) -> &'static str {
        "msg"
    }
}
