//! Deterministic building blocks shared by every crate in the FUSE
//! reproduction.
//!
//! The whole system is driven by a single seeded random number generator, so
//! any source of nondeterminism (in particular the randomized hasher used by
//! [`std::collections::HashMap`]) would break trace-level reproducibility.
//! This crate provides:
//!
//! * [`det`] — hash maps and sets with a fixed (FNV-1a) hasher,
//! * [`backoff`] — the capped exponential backoff used by FUSE group repair,
//! * [`stats`] — percentile/CDF summaries used by tests and experiments,
//! * [`idgen`] — deterministic unique-identifier generation.

pub mod backoff;
pub mod det;
pub mod idgen;
pub mod stats;

pub use backoff::Backoff;
pub use det::{DetHashMap, DetHashSet};
pub use stats::{Cdf, Summary};
