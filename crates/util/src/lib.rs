//! Deterministic building blocks shared by every crate in the FUSE
//! reproduction.
//!
//! The whole system is driven by a single seeded random number generator, so
//! any source of nondeterminism (in particular the randomized hasher used by
//! [`std::collections::HashMap`]) would break trace-level reproducibility.
//! This crate provides:
//!
//! * [`det`] — hash maps and sets with a fixed (FNV-1a) hasher,
//! * [`backoff`] — the capped exponential backoff used by FUSE group repair,
//! * [`idgen`] — deterministic unique-identifier generation,
//! * [`time`] — transport-neutral instants and durations,
//! * [`timer`] — driver-neutral timer keys for sans-io state machines,
//! * [`payload`] — the message size/class contract shared by every driver.
//!
//! The [`time`], [`timer`] and [`payload`] modules plus [`PeerAddr`] form
//! the *transport-neutral vocabulary* of the sans-io protocol stack: the
//! protocol crates (`fuse_overlay`, `fuse_liveness`, `fuse_core`) speak
//! only these types, and each driver (the deterministic sim kernel, the
//! `fuse-node` TCP runtime) maps them onto its own clock, sockets and
//! scheduler.

pub mod backoff;
pub mod det;
pub mod idgen;
pub mod payload;
pub mod time;
pub mod timer;

/// Transport-neutral peer address: a dense process index assigned by the
/// deployment (the sim kernel's process id, or the `--id` of a `fuse-node`).
/// Drivers own the mapping from `PeerAddr` to real endpoints.
pub type PeerAddr = u32;

pub use backoff::Backoff;
pub use det::{DetHashMap, DetHashSet};
pub use payload::Payload;
pub use time::{Duration, Time};
pub use timer::{KeyedTimers, TimerKey};
