//! Transport-neutral time.
//!
//! Instants ([`Time`]) and durations ([`Duration`]) are nanoseconds in
//! `u64` — enough for ~584 years, far beyond any experiment or deployment.
//! Keeping instants and durations as distinct types prevents the classic
//! bug of adding two absolute timestamps.
//!
//! The protocol stack never reads a clock: every entry point receives `now`
//! from its driver. Under the deterministic kernel `now` is simulated time;
//! under the TCP driver it is a monotonic count of nanoseconds since the
//! process started. The epoch is therefore *driver-defined* — only
//! differences and orderings are meaningful to protocol code.

use std::ops::{Add, AddAssign, Sub};

/// An instant (nanoseconds since the driver's epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Time {
    /// The driver's epoch.
    pub const ZERO: Time = Time(0);

    /// Nanoseconds since the epoch.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds since the epoch.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference, as a duration.
    pub fn since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Builds from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Builds from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Builds from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Builds from fractional seconds (rounds to nanoseconds).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "negative or non-finite duration");
        Duration((s * 1e9).round() as u64)
    }

    /// Builds from fractional milliseconds (rounds to nanoseconds).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Nanosecond count.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> Self {
        Duration(self.0.saturating_mul(k))
    }

    /// Scales by a float factor (e.g. jitter), rounding.
    pub fn mul_f64(self, k: f64) -> Self {
        assert!(k >= 0.0 && k.is_finite());
        Duration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<Duration> for Time {
    type Output = Time;

    fn add(self, d: Duration) -> Time {
        Time(self.0.checked_add(d.0).expect("time overflow"))
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;

    fn sub(self, rhs: Time) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("time subtraction underflow"),
        )
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl std::fmt::Display for Time {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl std::fmt::Display for Duration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = Time::ZERO + Duration::from_secs(60);
        assert_eq!(t.nanos(), 60_000_000_000);
        let d = t - Time::ZERO;
        assert_eq!(d, Duration::from_secs(60));
        assert_eq!(t.since(Time::ZERO), d);
        // Saturating since: earlier.since(later) is zero, not a panic.
        assert_eq!(Time::ZERO.since(t), Duration::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(Duration::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(Duration::from_secs_f64(0.25), Duration::from_millis(250));
        assert_eq!(Duration::from_micros(2500).as_millis_f64(), 2.5);
        assert_eq!(Duration::from_millis_f64(2.5).nanos(), 2_500_000);
    }

    #[test]
    fn scaling() {
        let d = Duration::from_secs(2);
        assert_eq!(d.saturating_mul(3), Duration::from_secs(6));
        assert_eq!(d.mul_f64(0.5), Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Time::ZERO - (Time::ZERO + Duration::from_secs(1));
    }
}
