//! Deterministic hashing collections.
//!
//! `std`'s default `RandomState` seeds its hasher from OS randomness, which
//! makes map iteration order differ between runs. The simulation must be
//! bit-for-bit reproducible for a fixed seed, so all protocol state uses
//! these FNV-1a keyed collections instead. Iteration order is still
//! arbitrary — protocol code that *iterates* and cares about order must sort
//! — but it is the *same* arbitrary order on every run.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a 64-bit hasher with fixed offset basis — deterministic across runs.
#[derive(Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

/// `HashMap` with a deterministic hasher.
pub type DetHashMap<K, V> = HashMap<K, V, BuildHasherDefault<Fnv1a>>;

/// `HashSet` with a deterministic hasher.
pub type DetHashSet<K> = HashSet<K, BuildHasherDefault<Fnv1a>>;

/// Hashes one byte slice with FNV-1a; handy for cheap content fingerprints.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Reference values for FNV-1a 64-bit from the FNV specification.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn map_iteration_is_stable_across_instances() {
        let mut a: DetHashMap<u64, u64> = DetHashMap::default();
        let mut b: DetHashMap<u64, u64> = DetHashMap::default();
        for i in 0..1000 {
            a.insert(i * 7919, i);
            b.insert(i * 7919, i);
        }
        let ka: Vec<_> = a.keys().copied().collect();
        let kb: Vec<_> = b.keys().copied().collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn set_contains_what_was_inserted() {
        let mut s: DetHashSet<&str> = DetHashSet::default();
        s.insert("x");
        s.insert("y");
        assert!(s.contains("x"));
        assert!(s.contains("y"));
        assert!(!s.contains("z"));
    }
}
