//! Driver-neutral timer identities for sans-io state machines.
//!
//! A sans-io stack cannot own a clock or an event queue, so "arm a timer"
//! becomes: allocate a [`TimerKey`] in a [`KeyedTimers`] table, remember the
//! tag it should fire with, and emit an *arm* effect carrying the key and
//! the relative deadline. The driver schedules it however it likes (kernel
//! timing wheel, `BinaryHeap` + `recv_timeout`, ...) and later feeds the
//! bare key back in. [`KeyedTimers::fire`] then resolves it to the tag —
//! or to `None` if the timer was cancelled or superseded in the meantime,
//! which makes stale deliveries from sloppy drivers (lazy-cancel heaps)
//! harmless by construction.
//!
//! Keys carry a small *namespace* so one stack can multiplex several
//! independent tables (overlay, fuse, liveness, application) over a single
//! driver timer channel and dispatch a firing key without guessing.

/// Identity of one armed (or once-armed) timer.
///
/// The `ns`/`slot`/`gen` triple is unique per [`KeyedTimers`] lifetime:
/// slots are reused, generations never match across reuse. Keys are plain
/// data — `Ord` so drivers can keep them in heaps, `Hash` for maps back to
/// driver-side handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerKey {
    /// Which table (layer) the key belongs to.
    pub ns: u8,
    /// Slot index inside the table.
    pub slot: u32,
    /// Generation guard against slot reuse.
    pub gen: u64,
}

struct Slot<T> {
    gen: u64,
    tag: Option<T>,
}

/// Timer storage for one namespace of one stack: O(1) arm/cancel/fire with
/// generation-checked staleness, mirroring the sim kernel's lazy-removal
/// timer table.
pub struct KeyedTimers<T> {
    ns: u8,
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> KeyedTimers<T> {
    /// Creates an empty table whose keys carry namespace `ns`.
    pub fn new(ns: u8) -> Self {
        KeyedTimers {
            ns,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// The table's namespace.
    pub fn ns(&self) -> u8 {
        self.ns
    }

    /// Number of currently armed timers.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Arms a timer carrying `tag`, returning its key.
    pub fn arm(&mut self, tag: T) -> TimerKey {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            s.gen += 1;
            s.tag = Some(tag);
            TimerKey {
                ns: self.ns,
                slot,
                gen: s.gen,
            }
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 1,
                tag: Some(tag),
            });
            TimerKey {
                ns: self.ns,
                slot,
                gen: 1,
            }
        }
    }

    /// Cancels `k` if still armed; returns whether it was live.
    pub fn cancel(&mut self, k: TimerKey) -> bool {
        if k.ns != self.ns {
            return false;
        }
        if let Some(s) = self.slots.get_mut(k.slot as usize) {
            if s.gen == k.gen && s.tag.is_some() {
                s.tag = None;
                self.free.push(k.slot);
                self.live -= 1;
                return true;
            }
        }
        false
    }

    /// Reads the tag of a still-armed timer without consuming it. Stale
    /// keys (cancelled, fired, superseded, wrong namespace) yield `None`.
    pub fn get(&self, k: TimerKey) -> Option<&T> {
        if k.ns != self.ns {
            return None;
        }
        let s = self.slots.get(k.slot as usize)?;
        if s.gen == k.gen {
            s.tag.as_ref()
        } else {
            None
        }
    }

    /// Consumes the timer if `k` is still current, returning its tag.
    /// Stale keys (cancelled, already fired, wrong namespace) yield `None`.
    pub fn fire(&mut self, k: TimerKey) -> Option<T> {
        if k.ns != self.ns {
            return None;
        }
        let s = self.slots.get_mut(k.slot as usize)?;
        if s.gen != k.gen {
            return None;
        }
        let tag = s.tag.take();
        if tag.is_some() {
            self.free.push(k.slot);
            self.live -= 1;
        }
        tag
    }

    /// Drops every armed timer (stack teardown).
    pub fn clear(&mut self) {
        for (i, s) in self.slots.iter_mut().enumerate() {
            if s.tag.take().is_some() {
                self.free.push(i as u32);
            }
            // Bump the generation so stale keys can never match.
            s.gen += 1;
        }
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_fire_consumes() {
        let mut t: KeyedTimers<&str> = KeyedTimers::new(3);
        let k = t.arm("a");
        assert_eq!(k.ns, 3);
        assert_eq!(t.live(), 1);
        assert_eq!(t.fire(k), Some("a"));
        assert_eq!(t.live(), 0);
        assert_eq!(t.fire(k), None, "second fire is stale");
    }

    #[test]
    fn cancel_prevents_fire() {
        let mut t: KeyedTimers<u32> = KeyedTimers::new(0);
        let k = t.arm(7);
        assert!(t.cancel(k));
        assert!(!t.cancel(k), "double cancel reports dead");
        assert_eq!(t.fire(k), None);
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn slot_reuse_does_not_resurrect_old_keys() {
        let mut t: KeyedTimers<u32> = KeyedTimers::new(0);
        let k1 = t.arm(1);
        t.cancel(k1);
        let k2 = t.arm(2);
        assert_eq!(k1.slot, k2.slot, "slot should be reused");
        assert_eq!(t.fire(k1), None, "old generation must not fire");
        assert_eq!(t.fire(k2), Some(2));
    }

    #[test]
    fn wrong_namespace_is_inert() {
        let mut a: KeyedTimers<u32> = KeyedTimers::new(0);
        let mut b: KeyedTimers<u32> = KeyedTimers::new(1);
        let ka = a.arm(1);
        assert_eq!(b.fire(ka), None);
        assert!(!b.cancel(ka));
        assert_eq!(a.fire(ka), Some(1));
    }

    #[test]
    fn clear_drops_everything_and_invalidates() {
        let mut t: KeyedTimers<u32> = KeyedTimers::new(0);
        let ks: Vec<_> = (0..10).map(|i| t.arm(i)).collect();
        t.clear();
        assert_eq!(t.live(), 0);
        for k in ks {
            assert_eq!(t.fire(k), None);
        }
        // Free list must not hand out a slot twice after clear + cancel mix.
        let k2 = t.arm(11);
        let k3 = t.arm(12);
        assert_ne!(k2.slot, k3.slot);
    }
}
