//! End-to-end exercise of the live load harness at small scale: a real
//! fleet behind the proxy mesh, one kill round and one signal round, plus
//! a chaos-token replay cross-checked against the simulator.
//!
//! The paper-scale N=10 run (and its BENCH merge) lives in CI / the staked
//! `BENCH_PR9.json`; these tests keep the same machinery honest at a size
//! that fits the tier-1 wall-clock budget.

use std::path::PathBuf;
use std::process::Command;
use std::sync::OnceLock;
use std::time::Duration;

use fuse_load::cluster::fast_timing_args;
use fuse_load::live::{condition_links, run_rounds};
use fuse_load::replay::replay_token;
use fuse_load::scenario::{plan, FaultClass, ScenarioParams};
use fuse_load::{Cluster, LoadReport};

/// Locates (building if necessary) the `fuse-node` binary. `fuse_load`
/// has no crate dependency on `fuse-node`, so `CARGO_BIN_EXE_*` is not
/// set here; probe the shared target directory instead, with an env
/// override for CI.
fn node_bin() -> PathBuf {
    static BIN: OnceLock<PathBuf> = OnceLock::new();
    BIN.get_or_init(|| {
        if let Ok(p) = std::env::var("FUSE_NODE_BIN") {
            return PathBuf::from(p);
        }
        // Test binaries live in target/<profile>/deps; fuse-node goes to
        // target/<profile>/fuse-node.
        let me = std::env::current_exe().expect("current_exe");
        let profile_dir = me
            .parent() // deps/
            .and_then(|d| d.parent()) // <profile>/
            .expect("target profile dir");
        let candidate = profile_dir.join("fuse-node");
        if !candidate.exists() {
            let status = Command::new(env!("CARGO"))
                .args(["build", "-p", "fuse-node", "--bin", "fuse-node"])
                .current_dir(env!("CARGO_MANIFEST_DIR"))
                .status()
                .expect("spawn cargo build");
            assert!(status.success(), "building fuse-node failed");
        }
        assert!(candidate.exists(), "no fuse-node at {candidate:?}");
        candidate
    })
    .clone()
}

/// Fast-detection node timings plus an orphan-protection lifetime cap.
fn fast_timings() -> Vec<String> {
    let mut args = fast_timing_args();
    args.push("--run-secs".into());
    args.push("240".into());
    args
}

#[test]
fn kill_and_signal_rounds_meet_budget_on_a_small_fleet() {
    let p = ScenarioParams {
        nodes: 5,
        groups: 2,
        rounds: 1,
        seed: 11,
        budget: Duration::from_secs(90),
        delay_ms: 0,
        loss_pct: 0,
    };
    let rounds = plan(&p, &[FaultClass::Kill, FaultClass::Signal]);
    let mut cluster =
        Cluster::launch(p.nodes, node_bin(), p.seed, &fast_timings()).expect("launch");
    condition_links(&cluster, &p);
    let live = run_rounds(&mut cluster, &p, &rounds, |_| {}).expect("rounds");
    cluster.shutdown();

    let report = LoadReport::assemble(p, &live, &Default::default());
    assert!(
        report.within_budget(),
        "all groups must notify within budget:\n{}",
        report.render()
    );
    let kill = report
        .classes
        .iter()
        .find(|c| c.class == FaultClass::Kill)
        .expect("kill class measured");
    assert_eq!(kill.live_ms.len(), 2, "2 groups in the kill round");
    // SIGKILL resets TCP streams: EOF-driven detection is far faster than
    // the 90 s budget even with proxy hops in the path.
    assert!(
        kill.live_ms.iter().all(|&ms| ms < 60_000.0),
        "kill latencies: {:?}",
        kill.live_ms
    );
    let signal = report
        .classes
        .iter()
        .find(|c| c.class == FaultClass::Signal)
        .expect("signal class measured");
    assert_eq!(signal.live_ms.len(), 2);
}

#[test]
fn delayed_links_slow_signal_propagation_measurably() {
    let p = ScenarioParams {
        nodes: 4,
        groups: 1,
        rounds: 1,
        seed: 23,
        budget: Duration::from_secs(60),
        delay_ms: 150,
        loss_pct: 0,
    };
    let rounds = plan(&p, &[FaultClass::Signal]);
    let mut cluster =
        Cluster::launch(p.nodes, node_bin(), p.seed, &fast_timings()).expect("launch");
    condition_links(&cluster, &p);
    let live = run_rounds(&mut cluster, &p, &rounds, |_| {}).expect("rounds");
    cluster.shutdown();

    let (samples, misses) = &live[&FaultClass::Signal];
    assert_eq!(*misses, 0);
    // One proxied hop carries >= 150 ms of injected delay; the fault ->
    // last-member path crosses at least one.
    assert!(
        samples.iter().all(|&ms| ms >= 100.0),
        "delay must show up in the signal path: {samples:?}"
    );
}

#[test]
fn chaos_token_replays_against_live_processes() {
    // A hand-written short token: 12-node world (the token grammar's
    // minimum), 3-member group, crash the slot-1 member two (scaled)
    // seconds in. The sim burns this group; the live fleet must therefore
    // notify every survivor.
    let token = "chaos-v1;seed=5;n=12;gs=3;script=crash(1)@2s";
    let out = replay_token(
        token,
        node_bin(),
        0.5, // compress the 2 s offset to 1 s of wall time
        Duration::from_secs(90),
        &fast_timings(),
        |_| {},
    )
    .expect("replay");
    assert!(
        out.sim_burned,
        "the sim reference must burn on a member crash"
    );
    assert!(
        out.live_all_notified,
        "every surviving live participant must hear: {:?}",
        out.live_notified
    );
    assert!(out.consistent);
    // 1 root + 3 members, minus the crashed slot-1 member = 3 survivors.
    assert_eq!(out.live_notified.len(), 3, "{:?}", out.live_notified);
}
