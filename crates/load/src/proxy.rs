//! The userspace fault proxy: one per directed inter-node connection.
//!
//! `fuse-node` processes never talk to each other directly under the load
//! harness. Node *i*'s `--peer j=<addr>` points at the proxy for the
//! directed pair *(i → j)*; the proxy dials node *j*'s real listener per
//! accepted connection and forwards the wire protocol **frame by frame**
//! (the `u32-LE` hello, then `u32-LE length ‖ StackMsg` frames). Framing
//! awareness is what turns a dumb byte pipe into a fault injector:
//!
//! * **sever** — existing streams are shut down and new ones refused;
//!   both endpoints observe broken links (the chaos `disc` op).
//! * **blackhole** — frames are read and silently discarded while both
//!   sockets stay open; *neither* endpoint sees EOF, so detection must
//!   ride the liveness machinery (the chaos `bh`/`partoff` ops).
//! * **drop** — Bernoulli per-frame loss (the chaos `linkloss` op).
//! * **delay** — each frame waits before forwarding, serializing behind
//!   earlier frames like a thin WAN pipe.
//! * **throttle** — forwarded bytes are paced to a byte rate.
//! * **class drop** — frames are decoded and dropped when their
//!   [`Payload::class`] label matches (the chaos `adv(class)` op — the
//!   content-based adversary of §3.5, now against live TCP).
//!
//! Dropping whole frames is always safe: the stream stays frame-aligned,
//! exactly like the simulator's per-message fault plane.
//!
//! EOF propagates: when the client side dies (its process was killed) the
//! upstream connection is shut down too, so the far node's reader sees EOF
//! promptly — the proxy never masks real crash signals.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use fuse_core::StackMsg;
use fuse_util::Payload;
use fuse_wire::Decode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mirrors the node's wire limit; oversized frames kill the connection
/// there anyway, so the proxy fails them early.
const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// The fault state of one directed link, shared between the orchestrator
/// and the proxy's pump threads. All knobs compose; `severed` dominates.
#[derive(Debug, Clone, Default)]
pub struct LinkPolicy {
    /// Kill live streams and refuse new ones until cleared.
    pub severed: bool,
    /// Silently swallow every frame, keeping both sockets open.
    pub blackhole: bool,
    /// Bernoulli per-frame drop probability in `[0, 1]`.
    pub drop_pct: f64,
    /// Hold every frame this long before forwarding.
    pub delay: Duration,
    /// Pace forwarded payload bytes to this rate (0 = unlimited).
    pub throttle_bps: u64,
    /// Drop frames whose decoded [`Payload::class`] label is listed.
    pub drop_classes: Vec<String>,
}

/// One directed fault proxy: listens on an ephemeral loopback port,
/// forwards to `upstream`, applies the shared [`LinkPolicy`] per frame.
pub struct FaultProxy {
    addr: SocketAddr,
    upstream: SocketAddr,
    policy: Arc<Mutex<LinkPolicy>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
}

impl FaultProxy {
    /// Binds the proxy and starts its accept loop. `seed` makes the drop
    /// coin deterministic per link.
    pub fn spawn(upstream: SocketAddr, seed: u64) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let policy = Arc::new(Mutex::new(LinkPolicy::default()));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        {
            let (policy, conns, stop) =
                (Arc::clone(&policy), Arc::clone(&conns), Arc::clone(&stop));
            thread::spawn(move || {
                let mut nth = 0u64;
                for conn in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let Ok(client) = conn else { return };
                    if policy.lock().unwrap().severed {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    }
                    let Ok(up) = TcpStream::connect(upstream) else {
                        // Upstream down (e.g. its process was killed): the
                        // refused dial closes the client, which surfaces as
                        // a broken link on the sending node.
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    {
                        let mut c = conns.lock().unwrap();
                        if let (Ok(a), Ok(b)) = (client.try_clone(), up.try_clone()) {
                            c.push(a);
                            c.push(b);
                        }
                    }
                    nth += 1;
                    let policy = Arc::clone(&policy);
                    let rng = StdRng::seed_from_u64(seed ^ nth.wrapping_mul(0x9e37_79b9));
                    thread::spawn(move || pump(client, up, policy, rng));
                }
            });
        }
        Ok(FaultProxy {
            addr,
            upstream,
            policy,
            conns,
            stop,
        })
    }

    /// The loopback address nodes should treat as the peer's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The real peer address behind this proxy.
    pub fn upstream(&self) -> SocketAddr {
        self.upstream
    }

    /// Applies a policy mutation. Severing (or re-severing) kills every
    /// live stream immediately; other knobs take effect on the next frame.
    pub fn update(&self, f: impl FnOnce(&mut LinkPolicy)) {
        let severed = {
            let mut p = self.policy.lock().unwrap();
            f(&mut p);
            p.severed
        };
        if severed {
            self.kill_streams();
        }
    }

    /// A snapshot of the current policy.
    pub fn policy(&self) -> LinkPolicy {
        self.policy.lock().unwrap().clone()
    }

    /// Stops accepting and kills live streams (teardown).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.kill_streams();
        // Unblock the accept loop so its thread exits.
        let _ = TcpStream::connect(self.addr);
    }

    fn kill_streams(&self) {
        let mut conns = self.conns.lock().unwrap();
        for c in conns.drain(..) {
            let _ = c.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Forwards one client connection frame-by-frame until either side dies or
/// the policy severs the link. The node wire protocol is unidirectional
/// (writers write, readers read), so a single client→upstream pump carries
/// everything; closing the opposite stream propagates EOF in both
/// directions.
fn pump(mut client: TcpStream, mut up: TcpStream, policy: Arc<Mutex<LinkPolicy>>, mut rng: StdRng) {
    let close_both = |client: &TcpStream, up: &TcpStream| {
        let _ = client.shutdown(Shutdown::Both);
        let _ = up.shutdown(Shutdown::Both);
    };
    let _ = up.set_nodelay(true);
    // Hello: forwarded verbatim (4 bytes, sender node id).
    let mut hello = [0u8; 4];
    if client.read_exact(&mut hello).is_err() || up.write_all(&hello).is_err() {
        close_both(&client, &up);
        return;
    }
    loop {
        let mut lenbuf = [0u8; 4];
        if client.read_exact(&mut lenbuf).is_err() {
            close_both(&client, &up);
            return;
        }
        let len = u32::from_le_bytes(lenbuf);
        if len > MAX_FRAME {
            close_both(&client, &up);
            return;
        }
        let mut payload = vec![0u8; len as usize];
        if client.read_exact(&mut payload).is_err() {
            close_both(&client, &up);
            return;
        }
        // One policy snapshot per frame.
        let (severed, swallow, delay, bps) = {
            let p = policy.lock().unwrap();
            let mut swallow = p.blackhole;
            if !swallow && p.drop_pct > 0.0 {
                swallow = rng.gen_bool(p.drop_pct.clamp(0.0, 1.0));
            }
            if !swallow && !p.drop_classes.is_empty() {
                if let Ok(msg) = StackMsg::from_bytes(&payload) {
                    let class = msg.class();
                    swallow = p.drop_classes.iter().any(|c| c == class);
                }
            }
            (p.severed, swallow, p.delay, p.throttle_bps)
        };
        if severed {
            close_both(&client, &up);
            return;
        }
        if !delay.is_zero() {
            thread::sleep(delay);
        }
        if swallow {
            continue;
        }
        if bps > 0 {
            let secs = (payload.len() as f64 + 4.0) / bps as f64;
            thread::sleep(Duration::from_secs_f64(secs));
        }
        if up.write_all(&lenbuf).is_err() || up.write_all(&payload).is_err() {
            close_both(&client, &up);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use fuse_wire::codec::twopass::to_bytes;
    use std::time::Instant;

    /// A capture server: accepts one connection, records the hello and
    /// every frame payload it receives until EOF.
    fn capture_server() -> (SocketAddr, std::sync::mpsc::Receiver<Vec<Vec<u8>>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut frames = Vec::new();
            let mut hello = [0u8; 4];
            if conn.read_exact(&mut hello).is_ok() {
                frames.push(hello.to_vec());
                loop {
                    let mut lenbuf = [0u8; 4];
                    if conn.read_exact(&mut lenbuf).is_err() {
                        break;
                    }
                    let mut payload = vec![0u8; u32::from_le_bytes(lenbuf) as usize];
                    if conn.read_exact(&mut payload).is_err() {
                        break;
                    }
                    frames.push(payload);
                }
            }
            let _ = tx.send(frames);
        });
        (addr, rx)
    }

    fn frame_for(msg: &StackMsg) -> Vec<u8> {
        let payload = to_bytes(msg);
        let mut f = Vec::with_capacity(4 + payload.len());
        f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        f.extend_from_slice(&payload);
        f
    }

    fn app_msg(b: &[u8]) -> StackMsg {
        StackMsg::App(Bytes::copy_from_slice(b))
    }

    #[test]
    fn forwards_hello_and_frames_verbatim() {
        let (addr, rx) = capture_server();
        let proxy = FaultProxy::spawn(addr, 1).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(&7u32.to_le_bytes()).unwrap();
        let msg = app_msg(b"hello-world");
        c.write_all(&frame_for(&msg)).unwrap();
        drop(c); // EOF must propagate so the capture thread finishes
        let frames = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(frames[0], 7u32.to_le_bytes().to_vec());
        // StackMsg has no PartialEq; the encoding is canonical, so byte
        // equality is message equality.
        assert_eq!(frames[1], to_bytes(&msg).to_vec());
    }

    #[test]
    fn blackhole_swallows_frames_but_keeps_streams_open() {
        let (addr, rx) = capture_server();
        let proxy = FaultProxy::spawn(addr, 2).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(&3u32.to_le_bytes()).unwrap();
        c.write_all(&frame_for(&app_msg(b"before"))).unwrap();
        thread::sleep(Duration::from_millis(200));
        proxy.update(|p| p.blackhole = true);
        c.write_all(&frame_for(&app_msg(b"eaten"))).unwrap();
        thread::sleep(Duration::from_millis(200));
        // The connection is still alive: un-blackholing resumes delivery
        // on the same stream — no EOF was ever seen by either side.
        proxy.update(|p| p.blackhole = false);
        c.write_all(&frame_for(&app_msg(b"after"))).unwrap();
        drop(c);
        let frames = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let expect: Vec<Vec<u8>> = [app_msg(b"before"), app_msg(b"after")]
            .iter()
            .map(|m| to_bytes(m).to_vec())
            .collect();
        assert_eq!(frames[1..].to_vec(), expect);
    }

    #[test]
    fn sever_kills_live_streams_and_refuses_new_ones() {
        let (addr, rx) = capture_server();
        let proxy = FaultProxy::spawn(addr, 3).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(&1u32.to_le_bytes()).unwrap();
        c.write_all(&frame_for(&app_msg(b"pre-sever"))).unwrap();
        thread::sleep(Duration::from_millis(200));
        proxy.update(|p| p.severed = true);
        // The upstream side sees EOF: the capture completes.
        let frames = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(frames.len(), 2);
        // The client side is dead too: writes start failing once the RST
        // lands (the first write after shutdown may still buffer).
        let dead = (0..50).any(|_| {
            thread::sleep(Duration::from_millis(20));
            c.write_all(&frame_for(&app_msg(b"x"))).is_err()
        });
        assert!(dead, "client stream must die after sever");
        // New connections are cut immediately while severed.
        let mut c2 = TcpStream::connect(proxy.addr()).unwrap();
        c2.write_all(&2u32.to_le_bytes()).unwrap();
        let dead2 = (0..50).any(|_| {
            thread::sleep(Duration::from_millis(20));
            c2.write_all(&frame_for(&app_msg(b"y"))).is_err()
        });
        assert!(dead2, "new streams must be refused while severed");
    }

    #[test]
    fn class_drop_filters_by_decoded_label() {
        let (addr, rx) = capture_server();
        let proxy = FaultProxy::spawn(addr, 4).unwrap();
        proxy.update(|p| p.drop_classes = vec!["app".to_string()]);
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(&9u32.to_le_bytes()).unwrap();
        // An app frame (class "app") must vanish; a FUSE soft notification
        // (class "fuse.soft") must pass.
        c.write_all(&frame_for(&app_msg(b"dropme"))).unwrap();
        let soft = StackMsg::Fuse(fuse_core::FuseMsg::SoftNotification {
            id: fuse_core::FuseId(42),
            seq: 7,
        });
        c.write_all(&frame_for(&soft)).unwrap();
        drop(c);
        let frames = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(frames[1..].to_vec(), vec![to_bytes(&soft).to_vec()]);
    }

    #[test]
    fn delay_holds_frames_back() {
        let (addr, rx) = capture_server();
        let proxy = FaultProxy::spawn(addr, 5).unwrap();
        proxy.update(|p| p.delay = Duration::from_millis(300));
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        let t0 = Instant::now();
        c.write_all(&4u32.to_le_bytes()).unwrap();
        c.write_all(&frame_for(&app_msg(b"slow"))).unwrap();
        drop(c);
        let frames = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(frames.len(), 2);
        assert!(
            t0.elapsed() >= Duration::from_millis(280),
            "frame arrived too fast for a 300ms delay: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn drop_pct_one_loses_everything() {
        let (addr, rx) = capture_server();
        let proxy = FaultProxy::spawn(addr, 6).unwrap();
        proxy.update(|p| p.drop_pct = 1.0);
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(&5u32.to_le_bytes()).unwrap();
        for i in 0..10u8 {
            c.write_all(&frame_for(&app_msg(&[i]))).unwrap();
        }
        drop(c);
        let frames = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(frames.len(), 1, "only the hello may pass at 100% loss");
    }
}
