//! A live fleet of `fuse-node` processes on 127.0.0.1, every directed
//! inter-node connection routed through its own [`FaultProxy`].
//!
//! Node *i*'s `--peer j=<addr>` points at proxy *(i → j)*; the proxy dials
//! node *j*'s real listener. N nodes therefore run behind N·(N−1) proxies —
//! the paper's §7 deployment (10 virtual nodes per machine) fits in a few
//! hundred threads on loopback. The cluster also owns each node's stdout
//! (collected line-by-line with receive order preserved) and stdin (the
//! node's `create`/`signal`/`shutdown` control protocol).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::proxy::{FaultProxy, LinkPolicy};

/// Wall-clock nanoseconds since the UNIX epoch — the clock the nodes stamp
/// `t_ns=` with. Same host, same clock: cross-process subtraction is valid.
pub fn wall_now_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Compressed `fuse-node` timing flags for bounded-wall-clock runs: ping
/// every 2 s (timeout 1 s), 8 s link-failure timeout, 5 s/10 s repair
/// windows, 1 s reconcile grace. Detection chains that take minutes at
/// the paper defaults resolve in ~20 s; the protocol structure (and the
/// burn guarantee) is unchanged.
pub fn fast_timing_args() -> Vec<String> {
    [
        "--ping-secs",
        "2",
        "--ping-timeout-secs",
        "1",
        "--link-timeout-secs",
        "8",
        "--member-repair-secs",
        "5",
        "--root-repair-secs",
        "10",
        "--grace-secs",
        "1",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// A parsed `NOTIFIED id=… reason=… t_ns=…` stdout line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notified {
    /// The burned group id, as printed (`fuse:<hex>`).
    pub gid: String,
    /// The notification reason label.
    pub reason: String,
    /// The node's monotonic wall-clock stamp.
    pub t_ns: u64,
}

/// One live node process: child handle, control stdin, collected stdout.
struct NodeHandle {
    child: Child,
    stdin: ChildStdin,
    lines: Arc<Mutex<Vec<String>>>,
}

impl NodeHandle {
    fn spawn(bin: &PathBuf, args: &[String]) -> std::io::Result<NodeHandle> {
        let mut child = Command::new(bin)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()?;
        let stdout = child.stdout.take().expect("piped stdout");
        let stdin = child.stdin.take().expect("piped stdin");
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&lines);
        thread::spawn(move || {
            for line in BufReader::new(stdout).lines().map_while(Result::ok) {
                sink.lock().unwrap().push(line);
            }
        });
        Ok(NodeHandle {
            child,
            stdin,
            lines,
        })
    }
}

/// The error type of cluster operations: a human-readable description
/// (every failure here is terminal for the run).
pub type ClusterError = String;

/// A live N-node fleet behind a full proxy mesh.
pub struct Cluster {
    /// Fleet size.
    pub n: usize,
    node_bin: PathBuf,
    seed: u64,
    extra_args: Vec<String>,
    node_ports: Vec<u16>,
    proxies: HashMap<(usize, usize), FaultProxy>,
    nodes: Vec<Option<NodeHandle>>,
}

impl Cluster {
    /// Reserves a distinct loopback port by binding to :0 and releasing
    /// it (same trade-off as the loopback tests: racy in principle, fine
    /// on the timescale of a spawn).
    fn free_port() -> u16 {
        TcpListener::bind("127.0.0.1:0")
            .expect("bind :0")
            .local_addr()
            .unwrap()
            .port()
    }

    /// Boots `n` nodes and the N·(N−1) proxy mesh, waiting for every node
    /// to print `READY`.
    pub fn launch(
        n: usize,
        node_bin: PathBuf,
        seed: u64,
        extra_args: &[String],
    ) -> Result<Cluster, ClusterError> {
        assert!(n >= 2, "a cluster needs at least two nodes");
        let node_ports: Vec<u16> = (0..n).map(|_| Self::free_port()).collect();
        let mut proxies = HashMap::new();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let upstream: SocketAddr = format!("127.0.0.1:{}", node_ports[j])
                    .parse()
                    .expect("loopback addr parses");
                let p = FaultProxy::spawn(upstream, seed ^ ((i as u64) << 32 | j as u64))
                    .map_err(|e| format!("proxy ({i}->{j}): {e}"))?;
                proxies.insert((i, j), p);
            }
        }
        let mut cluster = Cluster {
            n,
            node_bin,
            seed,
            extra_args: extra_args.to_vec(),
            node_ports,
            proxies,
            nodes: (0..n).map(|_| None).collect(),
        };
        for i in 0..n {
            cluster.spawn_node(i)?;
        }
        for i in 0..n {
            cluster.wait_line(i, Duration::from_secs(20), |l| l == "READY")?;
        }
        Ok(cluster)
    }

    fn node_args(&self, i: usize) -> Vec<String> {
        let mut args = vec![
            "--id".into(),
            i.to_string(),
            "--listen".into(),
            format!("127.0.0.1:{}", self.node_ports[i]),
            "--seed".into(),
            (self.seed ^ i as u64).to_string(),
        ];
        for j in 0..self.n {
            if j == i {
                continue;
            }
            args.push("--peer".into());
            args.push(format!("{j}={}", self.proxies[&(i, j)].addr()));
        }
        args.extend(self.extra_args.iter().cloned());
        args
    }

    /// (Re)spawns node `i` from its canonical argument list.
    pub fn spawn_node(&mut self, i: usize) -> Result<(), ClusterError> {
        let args = self.node_args(i);
        let h =
            NodeHandle::spawn(&self.node_bin, &args).map_err(|e| format!("spawn node {i}: {e}"))?;
        self.nodes[i] = Some(h);
        Ok(())
    }

    /// Whether node `i` currently has a live process.
    pub fn is_up(&mut self, i: usize) -> bool {
        match self.nodes[i].as_mut() {
            Some(h) => h.child.try_wait().ok().flatten().is_none(),
            None => false,
        }
    }

    /// SIGKILLs node `i` (the crash fault).
    pub fn kill(&mut self, i: usize) -> Result<(), ClusterError> {
        let h = self.nodes[i].as_mut().ok_or(format!("node {i} not up"))?;
        h.child.kill().map_err(|e| format!("kill node {i}: {e}"))?;
        let _ = h.child.wait();
        self.nodes[i] = None;
        Ok(())
    }

    /// Restarts a killed node on its original port and waits for `READY`.
    pub fn restart(&mut self, i: usize) -> Result<(), ClusterError> {
        self.spawn_node(i)?;
        // The fresh process's READY is the first one past the previous
        // incarnation's lines (the lines buffer was replaced on spawn).
        self.wait_line(i, Duration::from_secs(20), |l| l == "READY")?;
        Ok(())
    }

    /// Sends one control line to node `i`'s stdin.
    pub fn control(&mut self, i: usize, line: &str) -> Result<(), ClusterError> {
        let h = self.nodes[i].as_mut().ok_or(format!("node {i} not up"))?;
        writeln!(h.stdin, "{line}").map_err(|e| format!("control node {i}: {e}"))?;
        h.stdin.flush().map_err(|e| format!("flush node {i}: {e}"))
    }

    /// Number of stdout lines node `i` has produced so far.
    pub fn line_count(&self, i: usize) -> usize {
        self.nodes[i]
            .as_ref()
            .map(|h| h.lines.lock().unwrap().len())
            .unwrap_or(0)
    }

    /// Polls node `i`'s stdout (from line index `from` on) until a line
    /// matches, returning `(index, line)`.
    pub fn wait_line_from(
        &self,
        i: usize,
        from: usize,
        timeout: Duration,
        pred: impl Fn(&str) -> bool,
    ) -> Result<(usize, String), ClusterError> {
        let h = self.nodes[i].as_ref().ok_or(format!("node {i} not up"))?;
        let deadline = Instant::now() + timeout;
        loop {
            {
                let lines = h.lines.lock().unwrap();
                if let Some((k, l)) = lines.iter().enumerate().skip(from).find(|(_, l)| pred(l)) {
                    return Ok((k, l.clone()));
                }
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "node {i}: timed out waiting for a matching line; output: {:?}",
                    h.lines.lock().unwrap()
                ));
            }
            thread::sleep(Duration::from_millis(20));
        }
    }

    /// [`Self::wait_line_from`] anchored at the start of the current
    /// incarnation's output.
    pub fn wait_line(
        &self,
        i: usize,
        timeout: Duration,
        pred: impl Fn(&str) -> bool,
    ) -> Result<String, ClusterError> {
        self.wait_line_from(i, 0, timeout, pred).map(|(_, l)| l)
    }

    /// Creates a group rooted at `root` over `members` via the control
    /// protocol and returns the printed group id.
    pub fn create_group(
        &mut self,
        root: usize,
        members: &[usize],
        timeout: Duration,
    ) -> Result<String, ClusterError> {
        let from = self.line_count(root);
        let ids: Vec<String> = members.iter().map(|m| m.to_string()).collect();
        self.control(root, &format!("create {}", ids.join(",")))?;
        let (_, line) = self.wait_line_from(root, from, timeout, |l| l.starts_with("CREATED "))?;
        if !line.contains("result=ok") {
            return Err(format!("node {root}: creation failed: {line}"));
        }
        line.split_whitespace()
            .find_map(|w| w.strip_prefix("id="))
            .map(|s| s.to_string())
            .ok_or(format!("node {root}: CREATED line lacks an id: {line}"))
    }

    /// All parsed `NOTIFIED` lines node `i` printed for group `gid`.
    pub fn notifications(&self, i: usize, gid: &str) -> Vec<Notified> {
        let Some(h) = self.nodes[i].as_ref() else {
            return Vec::new();
        };
        let lines = h.lines.lock().unwrap();
        lines
            .iter()
            .filter_map(|l| parse_notified(l))
            .filter(|n| n.gid == gid)
            .collect()
    }

    /// Waits for node `i` to print a `NOTIFIED` for `gid`, returning the
    /// parsed line.
    pub fn wait_notified(
        &self,
        i: usize,
        gid: &str,
        timeout: Duration,
    ) -> Result<Notified, ClusterError> {
        let (_, line) = self.wait_line_from(i, 0, timeout, |l| {
            parse_notified(l).map(|n| n.gid == gid).unwrap_or(false)
        })?;
        Ok(parse_notified(&line).expect("predicate matched"))
    }

    /// Applies a policy mutation to one directed link's proxy.
    pub fn set_link(&self, from: usize, to: usize, f: impl FnOnce(&mut LinkPolicy)) {
        self.proxies[&(from, to)].update(f);
    }

    /// Applies a policy mutation to every directed link touching `node`
    /// (both directions — the node-level faults `disc`, `partoff`).
    pub fn set_node_links(&self, node: usize, f: impl Fn(&mut LinkPolicy)) {
        for (&(i, j), p) in &self.proxies {
            if i == node || j == node {
                p.update(&f);
            }
        }
    }

    /// Applies a policy mutation to every directed link in the mesh
    /// (global conditioning: delay, loss, throttle).
    pub fn set_all_links(&self, f: impl Fn(&mut LinkPolicy)) {
        for p in self.proxies.values() {
            p.update(&f);
        }
    }

    /// Recomputes blackhole flags from a partition cell assignment: frames
    /// between different cells vanish silently (the sim fault plane's
    /// partition semantics, live edition).
    pub fn apply_partitions(&self, cell_of: &[u32]) {
        for (&(i, j), p) in &self.proxies {
            let split = cell_of[i] != cell_of[j];
            p.update(|pol| pol.blackhole = split);
        }
    }

    /// Graceful teardown: `shutdown` to every live node, bounded wait,
    /// SIGKILL stragglers.
    pub fn shutdown(&mut self) {
        for i in 0..self.n {
            let _ = self.control(i, "shutdown");
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        for i in 0..self.n {
            if let Some(h) = self.nodes[i].as_mut() {
                loop {
                    match h.child.try_wait() {
                        Ok(Some(_)) => break,
                        _ if Instant::now() >= deadline => {
                            let _ = h.child.kill();
                            let _ = h.child.wait();
                            break;
                        }
                        _ => thread::sleep(Duration::from_millis(20)),
                    }
                }
            }
            self.nodes[i] = None;
        }
        for p in self.proxies.values() {
            p.stop();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for h in self.nodes.iter_mut().flatten() {
            let _ = h.child.kill();
            let _ = h.child.wait();
        }
    }
}

/// Parses a `NOTIFIED id=… reason=… t_ns=…` line.
pub fn parse_notified(line: &str) -> Option<Notified> {
    if !line.starts_with("NOTIFIED ") {
        return None;
    }
    let mut gid = None;
    let mut reason = None;
    let mut t_ns = None;
    for w in line.split_whitespace() {
        if let Some(v) = w.strip_prefix("id=") {
            gid = Some(v.to_string());
        } else if let Some(v) = w.strip_prefix("reason=") {
            reason = Some(v.to_string());
        } else if let Some(v) = w.strip_prefix("t_ns=") {
            t_ns = v.parse().ok();
        }
    }
    Some(Notified {
        gid: gid?,
        reason: reason?,
        t_ns: t_ns?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_notified_lines() {
        let n = parse_notified(
            "NOTIFIED id=fuse:00000000002a0000 reason=connection-broken t_ns=123456789",
        )
        .unwrap();
        assert_eq!(n.gid, "fuse:00000000002a0000");
        assert_eq!(n.reason, "connection-broken");
        assert_eq!(n.t_ns, 123_456_789);
        assert!(parse_notified("READY").is_none());
        assert!(
            parse_notified("NOTIFIED id=x reason=y").is_none(),
            "t_ns required"
        );
    }
}
