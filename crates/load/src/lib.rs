//! Live-TCP load harness for the FUSE reproduction.
//!
//! Everything below drives *real* `fuse-node` processes over real sockets
//! — the deployment the paper ran (§7: ten virtual nodes per machine) —
//! where the rest of the workspace drives the same `NodeStack` state
//! machines inside the simulator. The pieces:
//!
//! * [`proxy`] — a userspace fault proxy carried by every directed
//!   inter-node connection: delay, Bernoulli drop, throttle, blackhole,
//!   sever, and decoded-class drops (the DESIGN.md §7 chaos vocabulary,
//!   live edition).
//! * [`cluster`] — an N-process fleet behind the N·(N−1) proxy mesh, with
//!   the nodes' stdout `NOTIFIED … t_ns=` protocol parsed into timestamps.
//! * [`scenario`] — the deterministic group/victim/fault plan shared by
//!   the live run and the sim reference.
//! * [`live`] / [`simref`] — the two back-ends executing that plan.
//! * [`replay`] — chaos repro tokens (`chaos-v1;…`) replayed against live
//!   processes, cross-checked against the simulated outcome.
//! * [`report`] — kill→last-member-notified p50/p99/p999 per fault class,
//!   merged into `BENCH_*.json` as the `node_load` section the CI gate
//!   reads.

pub mod cluster;
pub mod live;
pub mod proxy;
pub mod replay;
pub mod report;
pub mod scenario;
pub mod simref;

pub use cluster::{parse_notified, Cluster, ClusterError, Notified};
pub use proxy::{FaultProxy, LinkPolicy};
pub use report::{ClassReport, LoadReport};
pub use scenario::{plan, FaultClass, GroupPlan, RoundPlan, ScenarioParams};
