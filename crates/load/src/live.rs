//! Drives a planned scenario against a live [`Cluster`]: create the
//! round's groups, fire the fault class at one wall-clock instant, collect
//! every surviving participant's `NOTIFIED … t_ns=` stamp, and repair the
//! fleet before the next round.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::cluster::{wall_now_ns, Cluster, ClusterError};
use crate::scenario::{FaultClass, RoundPlan, ScenarioParams};

/// How long a single group creation may take before we retry it.
const CREATE_TIMEOUT: Duration = Duration::from_secs(30);
/// Creation attempts under lossy conditioning before we count a miss.
const CREATE_ATTEMPTS: usize = 3;

/// Per-class live samples: `(latency_ms per fully-notified group, groups
/// where some survivor missed the budget)`.
pub type LiveSamples = HashMap<FaultClass, (Vec<f64>, usize)>;

/// Applies the scenario's ambient network conditioning (delay/loss) to
/// every proxied link.
pub fn condition_links(cluster: &Cluster, p: &ScenarioParams) {
    let delay = Duration::from_millis(p.delay_ms);
    let drop_pct = f64::from(p.loss_pct) / 100.0;
    cluster.set_all_links(|pol| {
        pol.delay = delay;
        pol.drop_pct = drop_pct;
    });
}

/// Runs every planned round against the cluster, returning per-class
/// samples. `progress` receives one human line per round.
pub fn run_rounds(
    cluster: &mut Cluster,
    p: &ScenarioParams,
    rounds: &[RoundPlan],
    mut progress: impl FnMut(&str),
) -> Result<LiveSamples, ClusterError> {
    let mut samples: LiveSamples = HashMap::new();
    for (rno, round) in rounds.iter().enumerate() {
        // Create this round's groups (with bounded retries: ambient loss
        // can legitimately fail a create; a create that keeps failing is
        // scored as a miss, not a harness error).
        let mut gids: Vec<Option<String>> = Vec::new();
        for g in &round.groups {
            let mut gid = None;
            for _ in 0..CREATE_ATTEMPTS {
                match cluster.create_group(g.root, &g.members, CREATE_TIMEOUT) {
                    Ok(id) => {
                        gid = Some(id);
                        break;
                    }
                    Err(_) => continue,
                }
            }
            gids.push(gid);
        }

        // One fault instant for the whole round.
        let victims = round.victims();
        let t0_ns = wall_now_ns();
        for (g, gid) in round.groups.iter().zip(&gids) {
            match round.class {
                FaultClass::Kill => cluster.kill(g.victim)?,
                FaultClass::Sever => cluster.set_node_links(g.victim, |pol| pol.severed = true),
                FaultClass::Signal => {
                    if let Some(gid) = gid {
                        cluster.control(g.victim, &format!("signal {gid}"))?;
                    }
                }
            }
        }

        // Collect: every survivor of every group must print NOTIFIED for
        // its gid within the budget (shared deadline across the round).
        let deadline = Instant::now() + p.budget;
        let entry = samples.entry(round.class).or_default();
        for (g, gid) in round.groups.iter().zip(&gids) {
            let Some(gid) = gid else {
                entry.1 += 1; // Creation never succeeded: a miss.
                continue;
            };
            let mut last_ms: f64 = 0.0;
            let mut missed = false;
            for s in g.survivors(round.class, &victims) {
                let left = deadline.saturating_duration_since(Instant::now());
                match cluster.wait_notified(s, gid, left) {
                    Ok(n) => {
                        // Clamp: a survivor may stamp NOTIFIED a hair
                        // before our wall read of the fault instant.
                        let ms = n.t_ns.saturating_sub(t0_ns) as f64 / 1e6;
                        last_ms = last_ms.max(ms);
                    }
                    Err(_) => {
                        missed = true;
                        break;
                    }
                }
            }
            if missed {
                entry.1 += 1;
            } else {
                entry.0.push(last_ms);
            }
        }

        // Repair before the next round: restart kills, un-sever links.
        for g in &round.groups {
            match round.class {
                FaultClass::Kill => cluster.restart(g.victim)?,
                FaultClass::Sever => cluster.set_node_links(g.victim, |pol| pol.severed = false),
                FaultClass::Signal => {}
            }
        }
        let (ok, miss) = (entry.0.len(), entry.1);
        progress(&format!(
            "round {}/{} class={} groups={} cum_ok={ok} cum_miss={miss}",
            rno + 1,
            rounds.len(),
            round.class.label(),
            round.groups.len(),
        ));
    }
    Ok(samples)
}
