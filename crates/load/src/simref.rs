//! The simulator reference run: the identical [`plan`](crate::scenario::plan)
//! schedule driven on `fuse_simdriver::NodeStack` via the harness
//! [`World`], producing per-class fault→last-member-notified latencies to
//! set against the live-TCP numbers.
//!
//! Known, *expected* divergences (documented in DESIGN.md §11):
//!
//! * **Kill** — a live SIGKILL resets every TCP stream, so survivors see
//!   reader-EOF (`connection-broken`) within milliseconds; the simulator's
//!   crash is silent-stop, detected through ping/TCP-model timeouts on the
//!   tens-of-seconds scale. Live should be *much faster* than sim here.
//! * **Sever** — live severing kills streams (EOF again), while the sim
//!   `disconnect` silently eats frames; same fast-vs-timeout asymmetry.
//! * **Signal** — no fault at all, pure propagation; the two back-ends
//!   should agree to within network-delay noise.
//!
//! The load harness reports the delta rather than asserting equality: the
//! live numbers are gated against the detection budget, the sim numbers
//! calibrate how much of that budget is protocol (shared) versus transport
//! (back-end-specific).

use std::collections::HashMap;
use std::time::Duration;

use fuse_harness::world::{ChaosHost, ChaosObservable};
use fuse_harness::{World, WorldParams};
use fuse_net::NetConfig;
use fuse_sim::{ProcId, SimDuration};

use crate::scenario::{FaultClass, RoundPlan, ScenarioParams};

/// Per-group sim outcome: fault→last-survivor-notified latency, or `None`
/// if some survivor missed the budget.
#[derive(Debug, Clone)]
pub struct SimGroupOutcome {
    /// The fault class measured.
    pub class: FaultClass,
    /// Latency from the fault instant to the last surviving participant's
    /// first notification.
    pub latency: Option<Duration>,
}

/// Runs the planned rounds in one simulated world and returns per-group
/// outcomes in plan order.
pub fn run_reference(p: &ScenarioParams, rounds: &[RoundPlan]) -> Vec<SimGroupOutcome> {
    let params = WorldParams::new(p.nodes, p.seed, NetConfig::simulator());
    let mut world = World::build(&params);
    world.run(SimDuration::from_secs(2)); // settle the overlay
    if p.loss_pct > 0 {
        world.set_global_loss(f64::from(p.loss_pct) / 100.0);
    }
    let budget = SimDuration::from_secs(p.budget.as_secs().max(1));

    let mut out = Vec::new();
    for round in rounds {
        // Create this round's groups (sequentially; creation is fast).
        let mut handles = Vec::new();
        for g in &round.groups {
            let members: Vec<ProcId> = g.members.iter().map(|&m| m as ProcId).collect();
            let (res, _lat) = world.create_group_blocking(g.root as ProcId, &members);
            handles.push(res.ok().map(|h| h.id));
        }

        // One fault instant for the whole round, exactly like the live run.
        let victims = round.victims();
        let t0 = world.now();
        for g in round.groups.iter() {
            let v = g.victim as ProcId;
            match round.class {
                FaultClass::Kill => {
                    if world.is_up(v) {
                        world.crash(v);
                    }
                }
                FaultClass::Sever => world.with_fault(|f| f.disconnect(v)),
                // Signals are per-group, not per-victim-process: applied in
                // the handle-indexed pass below.
                FaultClass::Signal => {}
            }
        }
        if round.class == FaultClass::Signal {
            for (g, id) in round.groups.iter().zip(&handles) {
                if let Some(id) = id {
                    world.signal(g.victim as ProcId, *id);
                }
            }
        }

        // Wait until every survivor of every (successfully created) group
        // heard, or the budget runs out.
        let waiting: Vec<(Vec<ProcId>, fuse_core::FuseId)> = round
            .groups
            .iter()
            .zip(&handles)
            .filter_map(|(g, id)| {
                id.map(|id| {
                    let survivors: Vec<ProcId> = g
                        .survivors(round.class, &victims)
                        .into_iter()
                        .map(|s| s as ProcId)
                        .collect();
                    (survivors, id)
                })
            })
            .collect();
        let deadline = t0 + budget;
        world.run_until(deadline, |sim| {
            waiting.iter().all(|(survivors, id)| {
                survivors.iter().all(|&s| {
                    sim.proc(s)
                        .map(|st| !st.app.failures(*id).is_empty())
                        .unwrap_or(true)
                })
            })
        });

        // Collect per-group last-survivor latencies.
        let mut idx = 0usize;
        for (_g, id) in round.groups.iter().zip(&handles) {
            let Some(id) = id else {
                out.push(SimGroupOutcome {
                    class: round.class,
                    latency: None,
                });
                continue;
            };
            let survivors = &waiting[idx].0;
            idx += 1;
            let mut last: Option<SimDuration> = None;
            let mut complete = true;
            for &s in survivors {
                match world.failures(s, *id).first() {
                    Some(&t) => {
                        let lat = t.since(t0);
                        last = Some(last.map_or(lat, |l| l.max(lat)));
                    }
                    None => complete = false,
                }
            }
            out.push(SimGroupOutcome {
                class: round.class,
                latency: if complete {
                    last.map(|d| Duration::from_nanos(d.nanos()))
                } else {
                    None
                },
            });
        }

        // Repair between rounds so the next round starts from a full
        // fleet: restart kills, reconnect severs, let repairs drain.
        for g in &round.groups {
            let v = g.victim as ProcId;
            match round.class {
                FaultClass::Kill => {
                    if !world.is_up(v) {
                        world.restart_node(v, &params);
                    }
                }
                FaultClass::Sever => world.with_fault(|f| f.reconnect(v)),
                FaultClass::Signal => {}
            }
        }
        world.run(SimDuration::from_secs(5));
    }
    out
}

/// Per-class latency samples (milliseconds) from sim outcomes, plus the
/// count of groups that missed the budget.
pub fn by_class(outcomes: &[SimGroupOutcome]) -> HashMap<FaultClass, (Vec<f64>, usize)> {
    let mut m: HashMap<FaultClass, (Vec<f64>, usize)> = HashMap::new();
    for o in outcomes {
        let e = m.entry(o.class).or_default();
        match o.latency {
            Some(d) => e.0.push(d.as_secs_f64() * 1e3),
            None => e.1 += 1,
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::plan;

    #[test]
    fn sim_reference_measures_signal_and_kill_rounds() {
        let p = ScenarioParams {
            nodes: 10,
            groups: 2,
            rounds: 1,
            seed: 7,
            budget: Duration::from_secs(480),
            delay_ms: 0,
            loss_pct: 0,
        };
        let rounds = plan(&p, &[FaultClass::Signal, FaultClass::Kill]);
        let outcomes = run_reference(&p, &rounds);
        assert_eq!(outcomes.len(), 4, "2 classes x 1 round x 2 groups");
        let per = by_class(&outcomes);
        let (sig, sig_miss) = &per[&FaultClass::Signal];
        assert_eq!(*sig_miss, 0, "signal must never miss the budget");
        assert_eq!(sig.len(), 2);
        // Explicit signals propagate in network-delay time, far under a
        // second of simulated time.
        assert!(sig.iter().all(|&ms| ms < 1000.0), "signal ms: {sig:?}");
        let (kill, kill_miss) = &per[&FaultClass::Kill];
        assert_eq!(*kill_miss, 0, "kill must be detected within 480 s");
        assert_eq!(kill.len(), 2);
        // Silent-stop detection in the sim rides ping/TCP timeouts:
        // slower than signal, bounded by the budget.
        assert!(kill.iter().all(|&ms| ms <= 480_000.0));
    }
}
