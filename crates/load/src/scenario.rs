//! The scripted load scenario shared by the live cluster and the sim
//! reference run.
//!
//! Both back-ends consume the *same* deterministic plan — groups with
//! randomized memberships, one designated victim per group, one fault
//! class per round — so the live-vs-sim latency deltas compare identical
//! workloads, not merely identically-parameterized ones.
//!
//! Victims within a round are sampled **without replacement**: node-level
//! faults (kill, sever) may burn bystander groups that happen to include
//! another group's victim, but every group still contains at least one
//! faulted member, so "kill → last member notified" is well-defined for
//! each group from the round's single fault instant.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fault class driven against live processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// SIGKILL the victim process (reader EOF propagates through the
    /// proxies — the paper's fail-fast TCP-reset path).
    Kill,
    /// Sever every proxied link touching the victim (streams killed, new
    /// connections refused): the process lives but is unreachable.
    Sever,
    /// The victim's application calls `signal <group>` (the explicit
    /// `SignalFailure` path — no process or network fault at all).
    Signal,
}

impl FaultClass {
    /// Stable lowercase label (JSON section keys, CLI values).
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::Kill => "kill",
            FaultClass::Sever => "sever",
            FaultClass::Signal => "signal",
        }
    }

    /// Parses a CLI label.
    pub fn parse(s: &str) -> Result<FaultClass, String> {
        match s {
            "kill" => Ok(FaultClass::Kill),
            "sever" => Ok(FaultClass::Sever),
            "signal" => Ok(FaultClass::Signal),
            other => Err(format!(
                "unknown fault class `{other}` (expected kill|sever|signal)"
            )),
        }
    }

    /// Every class, in report order.
    pub fn all() -> &'static [FaultClass] {
        &[FaultClass::Kill, FaultClass::Sever, FaultClass::Signal]
    }
}

/// Scenario shape: fleet size, load, fault schedule, network conditioning.
#[derive(Debug, Clone)]
pub struct ScenarioParams {
    /// Fleet size (paper scale: 10 virtual nodes).
    pub nodes: usize,
    /// Concurrent groups per round.
    pub groups: usize,
    /// Measurement rounds per fault class.
    pub rounds: usize,
    /// Master seed: drives memberships, victims, and proxy jitter.
    pub seed: u64,
    /// Kill → last-member-notified SLO (the 480 s bounded-detection
    /// budget from DESIGN.md §7 unless overridden).
    pub budget: Duration,
    /// Symmetric per-link one-way delay added by every proxy.
    pub delay_ms: u64,
    /// Bernoulli per-frame loss percentage added by every proxy.
    pub loss_pct: u8,
}

impl ScenarioParams {
    /// Paper-scale defaults: N=10, 5 groups × 4 rounds per class, 480 s
    /// budget, clean network.
    pub fn paper_scale(seed: u64) -> ScenarioParams {
        ScenarioParams {
            nodes: 10,
            groups: 5,
            rounds: 4,
            seed,
            budget: Duration::from_secs(480),
            delay_ms: 0,
            loss_pct: 0,
        }
    }
}

/// One group in a round: a root, its member list, and which participant
/// the fault targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupPlan {
    /// Creating node.
    pub root: usize,
    /// Non-root members (the root participates implicitly).
    pub members: Vec<usize>,
    /// The fault's target — always one of `members` (never the root, so
    /// every group keeps a surviving root whose notification we can
    /// observe even under `kill`).
    pub victim: usize,
}

impl GroupPlan {
    /// Root plus members: everyone holding group state.
    pub fn participants(&self) -> Vec<usize> {
        let mut p = vec![self.root];
        p.extend(self.members.iter().copied());
        p
    }

    /// Participants expected to survive and report `NOTIFIED` after the
    /// round's fault instant, given the set of victims faulted that round.
    pub fn survivors(&self, class: FaultClass, round_victims: &[usize]) -> Vec<usize> {
        self.participants()
            .into_iter()
            .filter(|p| class == FaultClass::Signal || !round_victims.contains(p))
            .collect()
    }
}

/// One fault round: a class and the groups measured under it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundPlan {
    /// The fault applied to every group's victim at one instant.
    pub class: FaultClass,
    /// The round's groups.
    pub groups: Vec<GroupPlan>,
}

impl RoundPlan {
    /// This round's victims, deduplicated (they are sampled without
    /// replacement, so this is just the per-group victim list).
    pub fn victims(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g.victim).collect()
    }
}

/// Draws `k` distinct values from `0..n`, excluding `exclude`.
fn sample_distinct(rng: &mut StdRng, n: usize, k: usize, exclude: &[usize]) -> Vec<usize> {
    assert!(k + exclude.len() <= n, "not enough nodes to sample from");
    let mut picked = Vec::with_capacity(k);
    while picked.len() < k {
        let x = rng.gen_range(0..n);
        if !exclude.contains(&x) && !picked.contains(&x) {
            picked.push(x);
        }
    }
    picked
}

/// Builds the full deterministic schedule: `rounds` rounds per class in
/// `classes`, each with `groups` groups of 3–5 participants.
pub fn plan(p: &ScenarioParams, classes: &[FaultClass]) -> Vec<RoundPlan> {
    assert!(
        p.nodes >= 4,
        "need at least 4 nodes for 3-participant groups"
    );
    assert!(
        p.groups <= p.nodes,
        "victims are sampled without replacement: groups must be <= nodes"
    );
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut rounds = Vec::new();
    for &class in classes {
        for _ in 0..p.rounds {
            // Victims first, without replacement, so concurrent faults
            // never double-target one process.
            let victims = sample_distinct(&mut rng, p.nodes, p.groups, &[]);
            let groups = victims
                .iter()
                .map(|&victim| {
                    let root = sample_distinct(&mut rng, p.nodes, 1, &[victim])[0];
                    // 3–5 participants total: victim + root + 1..=3 more.
                    let extra = rng.gen_range(1..=3usize.min(p.nodes - 2));
                    let mut members = vec![victim];
                    members.extend(sample_distinct(&mut rng, p.nodes, extra, &[victim, root]));
                    GroupPlan {
                        root,
                        members,
                        victim,
                    }
                })
                .collect();
            rounds.push(RoundPlan { class, groups });
        }
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ScenarioParams {
        ScenarioParams {
            nodes: 10,
            groups: 5,
            rounds: 3,
            seed: 42,
            budget: Duration::from_secs(480),
            delay_ms: 0,
            loss_pct: 0,
        }
    }

    #[test]
    fn plan_is_deterministic_and_well_formed() {
        let p = quick();
        let a = plan(&p, FaultClass::all());
        let b = plan(&p, FaultClass::all());
        assert_eq!(a, b, "same seed, same plan");
        assert_eq!(a.len(), 9, "3 rounds x 3 classes");
        for round in &a {
            assert_eq!(round.groups.len(), 5);
            let victims = round.victims();
            let mut dedup = victims.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), victims.len(), "victims distinct per round");
            for g in &round.groups {
                assert!(g.members.contains(&g.victim), "victim is a member");
                assert_ne!(g.root, g.victim, "root is never the victim");
                let n = g.participants().len();
                assert!((3..=5).contains(&n), "3-5 participants, got {n}");
                let mut parts = g.participants();
                parts.sort_unstable();
                parts.dedup();
                assert_eq!(parts.len(), n, "participants distinct");
                assert!(parts.iter().all(|&x| x < p.nodes));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = plan(&quick(), &[FaultClass::Kill]);
        let mut p2 = quick();
        p2.seed = 43;
        let b = plan(&p2, &[FaultClass::Kill]);
        assert_ne!(a, b);
    }

    #[test]
    fn survivors_exclude_round_victims_except_for_signal() {
        let g = GroupPlan {
            root: 0,
            members: vec![3, 5],
            victim: 3,
        };
        let vs = vec![3, 5];
        assert_eq!(g.survivors(FaultClass::Kill, &vs), vec![0]);
        assert_eq!(g.survivors(FaultClass::Signal, &vs), vec![0, 3, 5]);
    }

    #[test]
    fn labels_round_trip() {
        for &c in FaultClass::all() {
            assert_eq!(FaultClass::parse(c.label()), Ok(c));
        }
        assert!(FaultClass::parse("melt").is_err());
    }
}
