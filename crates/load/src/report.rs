//! The `node_load` report: per-fault-class latency quantiles from the live
//! run, sim reference numbers alongside, rendered/merged as a section of a
//! `BENCH_*.json` document.

use std::collections::HashMap;

use fuse_bench::json::{self, Value};
use fuse_obs::Reservoir;

use crate::scenario::{FaultClass, ScenarioParams};

/// Per-class latency distribution plus the budget verdict.
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// The fault class.
    pub class: FaultClass,
    /// Live fault→last-member-notified samples, milliseconds (one per
    /// group measured).
    pub live_ms: Vec<f64>,
    /// Live groups where some survivor missed the budget.
    pub live_misses: usize,
    /// Sim-reference samples, milliseconds.
    pub sim_ms: Vec<f64>,
    /// Sim groups that missed the budget.
    pub sim_misses: usize,
}

impl ClassReport {
    /// Whether every live group notified every survivor within budget.
    pub fn within_budget(&self) -> bool {
        self.live_misses == 0 && !self.live_ms.is_empty()
    }

    fn quantiles(samples: &[f64]) -> (f64, f64, f64, f64, f64) {
        let mut s = Reservoir::new();
        for &v in samples {
            s.add(v);
        }
        (
            s.quantile(0.50).unwrap_or(f64::NAN),
            s.quantile(0.99).unwrap_or(f64::NAN),
            s.quantile(0.999).unwrap_or(f64::NAN),
            s.max().unwrap_or(f64::NAN),
            s.mean().unwrap_or(f64::NAN),
        )
    }

    /// The class's JSON object.
    pub fn to_json(&self) -> Value {
        let (p50, p99, p999, max, mean) = Self::quantiles(&self.live_ms);
        let (sp50, sp99, _, _, _) = Self::quantiles(&self.sim_ms);
        Value::Obj(vec![
            ("samples".into(), Value::Num(self.live_ms.len() as f64)),
            ("p50_ms".into(), Value::Num(p50)),
            ("p99_ms".into(), Value::Num(p99)),
            ("p999_ms".into(), Value::Num(p999)),
            ("max_ms".into(), Value::Num(max)),
            ("mean_ms".into(), Value::Num(mean)),
            (
                "within_budget".into(),
                Value::Num(if self.within_budget() { 1.0 } else { 0.0 }),
            ),
            ("live_misses".into(), Value::Num(self.live_misses as f64)),
            ("sim_samples".into(), Value::Num(self.sim_ms.len() as f64)),
            ("sim_p50_ms".into(), Value::Num(sp50)),
            ("sim_p99_ms".into(), Value::Num(sp99)),
            ("sim_misses".into(), Value::Num(self.sim_misses as f64)),
            ("live_minus_sim_p50_ms".into(), Value::Num(p50 - sp50)),
        ])
    }
}

/// The whole `node_load` section.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Scenario shape the numbers came from.
    pub params: ScenarioParams,
    /// Per-class reports, in [`FaultClass::all`] order (absent classes
    /// omitted).
    pub classes: Vec<ClassReport>,
}

impl LoadReport {
    /// Assembles a report from per-class live/sim sample maps.
    pub fn assemble(
        params: ScenarioParams,
        live: &HashMap<FaultClass, (Vec<f64>, usize)>,
        sim: &HashMap<FaultClass, (Vec<f64>, usize)>,
    ) -> LoadReport {
        let classes = FaultClass::all()
            .iter()
            .filter(|c| live.contains_key(c))
            .map(|&class| {
                let (live_ms, live_misses) = live.get(&class).cloned().unwrap_or_default();
                let (sim_ms, sim_misses) = sim.get(&class).cloned().unwrap_or_default();
                ClassReport {
                    class,
                    live_ms,
                    live_misses,
                    sim_ms,
                    sim_misses,
                }
            })
            .collect();
        LoadReport { params, classes }
    }

    /// Whether every measured class met the budget.
    pub fn within_budget(&self) -> bool {
        !self.classes.is_empty() && self.classes.iter().all(|c| c.within_budget())
    }

    /// The `node_load` JSON object.
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            ("nodes".into(), Value::Num(self.params.nodes as f64)),
            (
                "groups_per_round".into(),
                Value::Num(self.params.groups as f64),
            ),
            (
                "rounds_per_class".into(),
                Value::Num(self.params.rounds as f64),
            ),
            ("seed".into(), Value::Num(self.params.seed as f64)),
            (
                "budget_ms".into(),
                Value::Num(self.params.budget.as_secs_f64() * 1e3),
            ),
            ("delay_ms".into(), Value::Num(self.params.delay_ms as f64)),
            (
                "loss_pct".into(),
                Value::Num(f64::from(self.params.loss_pct)),
            ),
        ];
        for c in &self.classes {
            fields.push((c.class.label().into(), c.to_json()));
        }
        Value::Obj(fields)
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "node_load: N={} groups={} rounds/class={} budget={}s delay={}ms loss={}%\n",
            self.params.nodes,
            self.params.groups,
            self.params.rounds,
            self.params.budget.as_secs(),
            self.params.delay_ms,
            self.params.loss_pct,
        ));
        out.push_str(&format!(
            "{:<8} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10} {:>7}\n",
            "class", "samples", "p50_ms", "p99_ms", "p999_ms", "max_ms", "sim_p50", "budget"
        ));
        for c in &self.classes {
            let (p50, p99, p999, max, _) = ClassReport::quantiles(&c.live_ms);
            let (sp50, _, _, _, _) = ClassReport::quantiles(&c.sim_ms);
            out.push_str(&format!(
                "{:<8} {:>7} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>7}\n",
                c.class.label(),
                c.live_ms.len(),
                p50,
                p99,
                p999,
                max,
                sp50,
                if c.within_budget() { "OK" } else { "MISS" },
            ));
        }
        out
    }
}

/// Merges a `node_load` section into a `BENCH_*.json` document string:
/// parses, replaces/appends `node_load`, stamps `"pr"` to `pr`, re-renders.
pub fn merge_into_doc(doc: &str, report: &LoadReport, pr: f64) -> Result<String, String> {
    let mut v = json::parse(doc)?;
    v.set("pr", Value::Num(pr));
    v.set("node_load", report.to_json());
    Ok(json::render(&v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_report() -> LoadReport {
        let params = ScenarioParams {
            nodes: 10,
            groups: 5,
            rounds: 4,
            seed: 1,
            budget: Duration::from_secs(480),
            delay_ms: 0,
            loss_pct: 0,
        };
        let mut live = HashMap::new();
        live.insert(
            FaultClass::Kill,
            ((1..=20).map(|i| i as f64 * 10.0).collect(), 0),
        );
        live.insert(FaultClass::Signal, (vec![5.0, 6.0, 7.0], 0));
        let mut sim = HashMap::new();
        sim.insert(FaultClass::Kill, (vec![30_000.0, 31_000.0], 0));
        sim.insert(FaultClass::Signal, (vec![4.0, 5.0], 0));
        LoadReport::assemble(params, &live, &sim)
    }

    #[test]
    fn json_section_has_gateable_paths() {
        let r = sample_report();
        assert!(r.within_budget());
        let mut doc = Value::Obj(vec![("pr".into(), Value::Num(7.0))]);
        doc.set("node_load", r.to_json());
        doc.set("pr", Value::Num(9.0));
        let text = json::render(&doc);
        let back = json::parse(&text).unwrap();
        assert_eq!(back.get("pr").unwrap().as_f64(), Some(9.0));
        assert_eq!(
            back.get("node_load.kill.samples").unwrap().as_f64(),
            Some(20.0)
        );
        assert_eq!(
            back.get("node_load.kill.within_budget").unwrap().as_f64(),
            Some(1.0)
        );
        let p50 = back.get("node_load.kill.p50_ms").unwrap().as_f64().unwrap();
        assert!(p50 > 0.0 && p50 <= 200.0);
        assert!(back.get("node_load.signal.p99_ms").is_some());
        assert!(
            back.get("node_load.sever").is_none(),
            "absent class omitted"
        );
    }

    #[test]
    fn misses_fail_the_budget_and_render_marks_them() {
        let mut r = sample_report();
        r.classes[0].live_misses = 1;
        assert!(!r.within_budget());
        let text = r.render();
        assert!(text.contains("MISS"), "{text}");
        assert_eq!(
            r.classes[0]
                .to_json()
                .get("within_budget")
                .unwrap()
                .as_f64(),
            Some(0.0)
        );
    }

    #[test]
    fn merge_preserves_other_sections() {
        let doc = r#"{"pr": 7, "wire_hot_path": {"x": 1}}"#;
        let merged = merge_into_doc(doc, &sample_report(), 9.0).unwrap();
        let v = json::parse(&merged).unwrap();
        assert_eq!(v.get("wire_hot_path.x").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("pr").unwrap().as_f64(), Some(9.0));
        assert!(v.get("node_load.kill.p99_ms").is_some());
    }
}
