//! `fuse-load` — the live-TCP load harness CLI.
//!
//! Two modes:
//!
//! * **Load** (default): spawn an N-node `fuse-node` fleet behind the
//!   fault-proxy mesh, run the scripted fault rounds, print the per-class
//!   latency table, and optionally merge the `node_load` section into a
//!   `BENCH_*.json` document.
//! * **Replay** (`--replay <token>`): replay a `chaos-v1;…` repro token
//!   against live processes and cross-check the simulated outcome.
//!
//! Exit status: 0 when every class met the budget (load) or the replay
//! cross-check held; 1 otherwise; 2 on usage errors.

use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use fuse_load::cluster::fast_timing_args;
use fuse_load::report::merge_into_doc;
use fuse_load::scenario::{plan, FaultClass, ScenarioParams};
use fuse_load::{live, replay, simref, Cluster, LoadReport};

const USAGE: &str = "\
fuse-load: drive a live fuse-node fleet over TCP through fault rounds

USAGE:
    fuse-load [OPTIONS]

OPTIONS:
    --node-bin <PATH>    fuse-node binary (default: FUSE_NODE_BIN env, else
                         target-dir sibling of this binary)
    --nodes <N>          fleet size (default 10; paper scale)
    --groups <G>         concurrent groups per round (default 5; <= N)
    --rounds <R>         rounds per fault class (default 4)
    --classes <LIST>     comma list of kill,sever,signal (default all)
    --seed <U64>         plan + proxy seed (default 1)
    --budget-secs <S>    fault->last-notified SLO (default 480)
    --delay-ms <MS>      ambient one-way delay on every link (default 0)
    --loss-pct <P>       ambient per-frame loss percent (default 0)
    --skip-sim           skip the simulator reference run
    --merge-into <FILE>  splice the node_load section into this BENCH json
    --replay <TOKEN>     replay a chaos-v1 token instead of the load run
    --time-scale <F>     compress replay op offsets by this factor (default 1)
    --max-wait-secs <S>  cap the replay notification wait (default 120)
    --fast               run nodes with compressed detection timers (ping
                         2s, link timeout 8s, repairs 5s/10s) so faults
                         resolve in seconds instead of paper-default minutes
    --help               print this text

OUTPUT:
    A per-class table (p50/p99/p999/max ms, sim p50, budget verdict) on
    stdout; with --merge-into, the JSON document is rewritten in place.
";

struct Opts {
    node_bin: Option<PathBuf>,
    params: ScenarioParams,
    classes: Vec<FaultClass>,
    skip_sim: bool,
    merge_into: Option<PathBuf>,
    replay: Option<String>,
    time_scale: f64,
    max_wait: Duration,
    fast: bool,
}

fn usage_err(msg: &str) -> ! {
    eprintln!("fuse-load: {msg}\n\n{USAGE}");
    exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        node_bin: None,
        params: ScenarioParams::paper_scale(1),
        classes: FaultClass::all().to_vec(),
        skip_sim: false,
        merge_into: None,
        replay: None,
        time_scale: 1.0,
        max_wait: Duration::from_secs(120),
        fast: false,
    };
    let mut args = std::env::args().skip(1);
    let next = |name: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next()
            .unwrap_or_else(|| usage_err(&format!("{name} needs a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                exit(0);
            }
            "--node-bin" => opts.node_bin = Some(PathBuf::from(next("--node-bin", &mut args))),
            "--nodes" => opts.params.nodes = parse_num(&next("--nodes", &mut args), "--nodes"),
            "--groups" => opts.params.groups = parse_num(&next("--groups", &mut args), "--groups"),
            "--rounds" => opts.params.rounds = parse_num(&next("--rounds", &mut args), "--rounds"),
            "--seed" => opts.params.seed = parse_num(&next("--seed", &mut args), "--seed"),
            "--budget-secs" => {
                opts.params.budget = Duration::from_secs(parse_num(
                    &next("--budget-secs", &mut args),
                    "--budget-secs",
                ))
            }
            "--delay-ms" => {
                opts.params.delay_ms = parse_num(&next("--delay-ms", &mut args), "--delay-ms")
            }
            "--loss-pct" => {
                opts.params.loss_pct = parse_num(&next("--loss-pct", &mut args), "--loss-pct")
            }
            "--classes" => {
                let list = next("--classes", &mut args);
                opts.classes = list
                    .split(',')
                    .map(|s| FaultClass::parse(s.trim()).unwrap_or_else(|e| usage_err(&e)))
                    .collect();
            }
            "--skip-sim" => opts.skip_sim = true,
            "--fast" => opts.fast = true,
            "--merge-into" => {
                opts.merge_into = Some(PathBuf::from(next("--merge-into", &mut args)))
            }
            "--replay" => opts.replay = Some(next("--replay", &mut args)),
            "--time-scale" => {
                let v = next("--time-scale", &mut args);
                opts.time_scale = v
                    .parse()
                    .unwrap_or_else(|_| usage_err("--time-scale needs a float"));
            }
            "--max-wait-secs" => {
                opts.max_wait = Duration::from_secs(parse_num(
                    &next("--max-wait-secs", &mut args),
                    "--max-wait-secs",
                ))
            }
            other => usage_err(&format!("unknown argument `{other}`")),
        }
    }
    opts
}

fn parse_num<T: std::str::FromStr>(s: &str, name: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| usage_err(&format!("{name}: bad number `{s}`")))
}

/// Locates the `fuse-node` binary: explicit flag, then `FUSE_NODE_BIN`,
/// then a sibling of this executable in the same target directory.
fn find_node_bin(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(p) = explicit {
        return p;
    }
    if let Ok(p) = std::env::var("FUSE_NODE_BIN") {
        return PathBuf::from(p);
    }
    if let Ok(me) = std::env::current_exe() {
        if let Some(dir) = me.parent() {
            let sib = dir.join("fuse-node");
            if sib.exists() {
                return sib;
            }
        }
    }
    usage_err("cannot find fuse-node: pass --node-bin or set FUSE_NODE_BIN")
}

fn main() {
    let opts = parse_opts();
    let node_bin = find_node_bin(opts.node_bin.clone());
    if !node_bin.exists() {
        usage_err(&format!(
            "node binary {} does not exist",
            node_bin.display()
        ));
    }

    let node_args = if opts.fast {
        fast_timing_args()
    } else {
        Vec::new()
    };

    if let Some(token) = &opts.replay {
        match replay::replay_token(
            token,
            node_bin,
            opts.time_scale,
            opts.max_wait,
            &node_args,
            |line| println!("{line}"),
        ) {
            Ok(out) => {
                println!(
                    "replay: sim_burned={} live_all_notified={} consistent={}",
                    out.sim_burned, out.live_all_notified, out.consistent
                );
                for (node, reason) in &out.live_notified {
                    println!("  node {node}: NOTIFIED reason={reason}");
                }
                exit(if out.consistent { 0 } else { 1 });
            }
            Err(e) => {
                eprintln!("fuse-load: replay failed: {e}");
                exit(1);
            }
        }
    }

    let p = &opts.params;
    let rounds = plan(p, &opts.classes);
    println!(
        "fuse-load: N={} groups={} rounds/class={} classes={:?} seed={}",
        p.nodes,
        p.groups,
        p.rounds,
        opts.classes.iter().map(|c| c.label()).collect::<Vec<_>>(),
        p.seed
    );

    let sim_samples = if opts.skip_sim {
        Default::default()
    } else {
        println!("sim reference: running the identical plan in the simulator…");
        simref::by_class(&simref::run_reference(p, &rounds))
    };

    println!(
        "live: launching {} nodes + {} proxies…",
        p.nodes,
        p.nodes * (p.nodes - 1)
    );
    let mut cluster = match Cluster::launch(p.nodes, node_bin, p.seed, &node_args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fuse-load: launch failed: {e}");
            exit(1);
        }
    };
    live::condition_links(&cluster, p);
    let live_samples = match live::run_rounds(&mut cluster, p, &rounds, |line| {
        println!("live: {line}");
    }) {
        Ok(s) => s,
        Err(e) => {
            cluster.shutdown();
            eprintln!("fuse-load: run failed: {e}");
            exit(1);
        }
    };
    cluster.shutdown();

    let report = LoadReport::assemble(p.clone(), &live_samples, &sim_samples);
    print!("{}", report.render());

    if let Some(path) = &opts.merge_into {
        let doc = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage_err(&format!("--merge-into {}: {e}", path.display())));
        match merge_into_doc(&doc, &report, 9.0) {
            Ok(merged) => {
                std::fs::write(path, merged)
                    .unwrap_or_else(|e| usage_err(&format!("write {}: {e}", path.display())));
                println!("merged node_load into {}", path.display());
            }
            Err(e) => {
                eprintln!("fuse-load: merge failed: {e}");
                exit(1);
            }
        }
    }

    exit(if report.within_budget() { 0 } else { 1 });
}
