//! Chaos-token replay against live processes.
//!
//! A `chaos-v1;seed=…;n=…;gs=…;script=…` repro token (DESIGN.md §7) names
//! a deterministic simulated scenario. This module replays the *same*
//! schedule against a real [`Cluster`]: the same slot→node mapping the sim
//! runner uses (`root = 0`, members from [`group_members`]), each chaos op
//! translated to its live equivalent (SIGKILL, proxy sever, proxy
//! blackhole/loss, stdin `signal`), applied at the script's offsets on the
//! wall clock (optionally time-scaled).
//!
//! The cross-check is one-directional by design: **if the sim run burns
//! the group, every surviving live participant must report `NOTIFIED`
//! within the detection budget.** The converse is not asserted — live TCP
//! surfaces resets in milliseconds where the simulator's silent-stop model
//! waits out ping timeouts, so a live burn with no sim burn is expected
//! for some scripts, never the reverse.

use std::collections::HashSet;
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

use fuse_harness::chaos::{
    group_members, parse_token, run_script, ChaosConfig, ChaosOp, ChaosScript,
};

use crate::cluster::{Cluster, ClusterError};

/// A replay's outcome, live next to sim.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The token replayed.
    pub token: String,
    /// Whether the simulated run burned the group.
    pub sim_burned: bool,
    /// Whether every surviving live participant reported `NOTIFIED`.
    pub live_all_notified: bool,
    /// Live participants (cluster node indices) that reported, with their
    /// notification reasons.
    pub live_notified: Vec<(usize, String)>,
    /// Whether the one-directional cross-check holds.
    pub consistent: bool,
}

/// Replays one wall-clock op against the cluster. `cells`/`holes` carry
/// partition/blackhole state across ops so the two fault families compose
/// (a link is black iff partitioned apart *or* explicitly holed).
struct LiveFaults {
    cells: Vec<u32>,
    holes: HashSet<(usize, usize)>,
}

impl LiveFaults {
    fn new(n: usize) -> LiveFaults {
        LiveFaults {
            cells: vec![0; n],
            holes: HashSet::new(),
        }
    }

    fn reapply(&self, cluster: &Cluster) {
        for i in 0..cluster.n {
            for j in 0..cluster.n {
                if i == j {
                    continue;
                }
                let black = self.cells[i] != self.cells[j] || self.holes.contains(&(i, j));
                cluster.set_link(i, j, |pol| pol.blackhole = black);
            }
        }
    }
}

/// Desugared wall-clock schedule entry.
enum LiveOp {
    Op(ChaosOp),
    GlobalLoss(f64),
}

/// Expands `Churn`/`LossRamp` exactly like the sim runner's (private)
/// desugar, into wall-clock offsets.
fn desugar(script: &ChaosScript) -> Vec<(Duration, LiveOp)> {
    let mut ops: Vec<(Duration, LiveOp)> = Vec::new();
    for ph in &script.phases {
        let at = Duration::from_nanos(ph.at.nanos());
        match ph.op {
            ChaosOp::Churn { slot, down_s } => {
                ops.push((at, LiveOp::Op(ChaosOp::Crash { slot })));
                ops.push((
                    at + Duration::from_secs(u64::from(down_s)),
                    LiveOp::Op(ChaosOp::Restart { slot }),
                ));
            }
            ChaosOp::LossRamp { pct, steps, over_s } => {
                let steps = steps.max(1);
                for i in 1..=u64::from(steps) {
                    let frac =
                        Duration::from_secs(u64::from(over_s)) * (i as u32 - 1) / u32::from(steps);
                    let rate = f64::from(pct) / 100.0 * i as f64 / f64::from(steps);
                    ops.push((at + frac, LiveOp::GlobalLoss(rate)));
                }
            }
            op => ops.push((at, LiveOp::Op(op))),
        }
    }
    ops.sort_by_key(|&(at, _)| at);
    ops
}

/// Replays `token` against a fresh live cluster, running the sim reference
/// alongside, and checks the one-directional burn consistency.
///
/// `time_scale` compresses the script's offsets (0.1 = 10× faster); the
/// detection budget itself is **not** scaled — burns are allowed the full
/// sim budget's wall-clock equivalent, capped by `max_wait`. `extra_args`
/// is forwarded to every node (e.g. [`fast_timing_args`] to compress the
/// nodes' detection timers to match a small `max_wait`).
///
/// [`fast_timing_args`]: crate::cluster::fast_timing_args
pub fn replay_token(
    token: &str,
    node_bin: PathBuf,
    time_scale: f64,
    max_wait: Duration,
    extra_args: &[String],
    mut progress: impl FnMut(&str),
) -> Result<ReplayOutcome, ClusterError> {
    let (cfg, script) = parse_token(token).map_err(|e| format!("bad token: {e}"))?;

    // Sim reference first: cheap, deterministic, tells us what to expect.
    let sim = run_script(&cfg, &script);
    progress(&format!(
        "sim: burned={} notified={} violations={}",
        sim.burned,
        sim.notified.len(),
        sim.violations.len()
    ));

    // Same slot mapping as the sim runner: root is node 0, members come
    // from the deterministic stride walk.
    let members: Vec<usize> = group_members(cfg.n, cfg.group_size)
        .iter()
        .map(|&p| p as usize)
        .collect();
    let mut participants = vec![0usize];
    participants.extend(members.iter().copied());

    let mut args = timing_args(&cfg);
    args.extend(extra_args.iter().cloned());
    let mut cluster = Cluster::launch(cfg.n, node_bin, cfg.seed, &args)?;
    let gid = cluster.create_group(0, &members, Duration::from_secs(30))?;
    progress(&format!("live: created {gid} over {} nodes", cfg.n));

    let mut faults = LiveFaults::new(cfg.n);
    let mut crashed: HashSet<usize> = HashSet::new();
    let t0 = Instant::now();
    for (at, op) in desugar(&script) {
        let due = t0 + at.mul_f64(time_scale.max(0.001));
        let now = Instant::now();
        if due > now {
            thread::sleep(due - now);
        }
        apply_live_op(
            &mut cluster,
            &participants,
            &gid,
            &op,
            &mut faults,
            &mut crashed,
        )?;
        if let LiveOp::Op(op) = &op {
            progress(&format!("live: applied {}", op.to_text()));
        }
    }

    // If the sim burned, every live survivor must hear within the budget.
    let budget = Duration::from_nanos(cfg.detection_budget.nanos()).min(max_wait);
    let mut live_notified = Vec::new();
    let mut live_all = true;
    for &pnode in &participants {
        if crashed.contains(&pnode) {
            continue;
        }
        match cluster.wait_notified(pnode, &gid, budget) {
            Ok(n) => live_notified.push((pnode, n.reason)),
            Err(_) => live_all = false,
        }
    }
    cluster.shutdown();

    let consistent = !sim.burned || live_all;
    Ok(ReplayOutcome {
        token: token.to_string(),
        sim_burned: sim.burned,
        live_all_notified: live_all,
        live_notified,
        consistent,
    })
}

/// Node timing flags matching the chaos config's repair override, if set.
fn timing_args(cfg: &ChaosConfig) -> Vec<String> {
    let mut args = Vec::new();
    if let Some(mrt) = cfg.member_repair_timeout_s {
        args.push("--member-repair-secs".into());
        args.push(mrt.to_string());
    }
    args
}

fn apply_live_op(
    cluster: &mut Cluster,
    participants: &[usize],
    gid: &str,
    op: &LiveOp,
    faults: &mut LiveFaults,
    crashed: &mut HashSet<usize>,
) -> Result<(), ClusterError> {
    let node = |slot: u8| participants[slot as usize];
    match op {
        LiveOp::GlobalLoss(rate) => {
            let rate = *rate;
            cluster.set_all_links(move |pol| pol.drop_pct = rate);
        }
        LiveOp::Op(op) => match *op {
            ChaosOp::Crash { slot } => {
                let p = node(slot);
                if cluster.is_up(p) {
                    cluster.kill(p)?;
                    crashed.insert(p);
                }
            }
            ChaosOp::Restart { slot } => {
                let p = node(slot);
                if !cluster.is_up(p) {
                    cluster.restart(p)?;
                    crashed.remove(&p);
                }
            }
            ChaosOp::Disconnect { slot } => {
                cluster.set_node_links(node(slot), |pol| pol.severed = true);
            }
            ChaosOp::Reconnect { slot } => {
                cluster.set_node_links(node(slot), |pol| pol.severed = false);
            }
            ChaosOp::Signal { slot } => {
                let p = node(slot);
                if cluster.is_up(p) {
                    cluster.control(p, &format!("signal {gid}"))?;
                }
            }
            ChaosOp::PartitionOff { slot } => {
                faults.cells[node(slot)] = 1;
                faults.reapply(cluster);
            }
            ChaosOp::PartitionHalf { pct } => {
                let cut = cluster.n * usize::from(pct) / 100;
                for (i, cell) in faults.cells.iter_mut().enumerate() {
                    if i >= cut {
                        *cell = 1;
                    }
                }
                faults.reapply(cluster);
            }
            ChaosOp::HealPartitions => {
                faults.cells.iter_mut().for_each(|c| *c = 0);
                faults.reapply(cluster);
            }
            ChaosOp::Blackhole { from, to } => {
                faults.holes.insert((node(from), node(to)));
                faults.reapply(cluster);
            }
            ChaosOp::ClearBlackhole { from, to } => {
                faults.holes.remove(&(node(from), node(to)));
                faults.reapply(cluster);
            }
            ChaosOp::LinkLoss { from, to, pct } => {
                let rate = f64::from(pct) / 100.0;
                cluster.set_link(node(from), node(to), |pol| pol.drop_pct = rate);
            }
            ChaosOp::AdversaryDrop { class } => {
                let label = class.label().to_string();
                cluster.set_all_links(move |pol| {
                    if !pol.drop_classes.contains(&label) {
                        pol.drop_classes.push(label.clone());
                    }
                });
            }
            ChaosOp::AdversaryClear => {
                cluster.set_all_links(|pol| pol.drop_classes.clear());
            }
            // Desugared before this point.
            ChaosOp::Churn { .. } | ChaosOp::LossRamp { .. } => unreachable!(),
        },
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuse_harness::chaos::format_token;
    use fuse_harness::chaos::Phase;
    use fuse_sim::SimDuration;

    #[test]
    fn desugar_expands_churn_and_lossramp_in_time_order() {
        let script = ChaosScript::parse("lossramp(10,2,10)@5s+churn(1,3)@2s").unwrap();
        let ops = desugar(&script);
        let ats: Vec<u64> = ops.iter().map(|(d, _)| d.as_secs()).collect();
        assert_eq!(
            ats,
            vec![2, 5, 5, 10],
            "crash@2, step1@5, restart@5, step2@10"
        );
        assert!(matches!(ops[0].1, LiveOp::Op(ChaosOp::Crash { slot: 1 })));
        assert!(matches!(ops[3].1, LiveOp::GlobalLoss(r) if (r - 0.10).abs() < 1e-9));
    }

    #[test]
    fn live_faults_compose_partitions_and_holes() {
        let mut f = LiveFaults::new(4);
        f.cells[3] = 1;
        f.holes.insert((0, 1));
        assert!(f.cells[0] == f.cells[1]);
        // (0,1) holed, (0,3) partitioned, (1,2) clean.
        let black =
            |i: usize, j: usize| -> bool { f.cells[i] != f.cells[j] || f.holes.contains(&(i, j)) };
        assert!(black(0, 1));
        assert!(!black(1, 0), "holes are directed");
        assert!(black(0, 3));
        assert!(black(3, 0), "partitions are symmetric");
        assert!(!black(1, 2));
    }

    #[test]
    fn token_round_trip_matches_harness_grammar() {
        let cfg = ChaosConfig::new(7, 12, 3);
        let script = ChaosScript::new(vec![Phase {
            at: SimDuration::from_secs(2),
            op: ChaosOp::Crash { slot: 1 },
        }]);
        let token = format_token(&cfg, &script);
        let (cfg2, script2) = parse_token(&token).unwrap();
        assert_eq!(cfg2.n, 12);
        assert_eq!(script2, script);
    }
}
