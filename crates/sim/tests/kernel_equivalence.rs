//! Differential tests: the timing-wheel kernel ([`Sim`]) against the
//! preserved single-heap kernel ([`BaselineSim`]), and the sharded kernel
//! ([`ShardedSim`]) against itself across shard counts.
//!
//! Random interleavings of sends, timer arms, cancels, crashes and restarts
//! are driven through both kernels; every observable — the full send/
//! deliver/lifecycle trace with timestamps, the executed-event count, the
//! clock, and final per-process state — must be bit-identical. This is the
//! property that lets the scheduler rewrite claim "same semantics, faster":
//! earliest-first ordering and FIFO among equal timestamps survive the move
//! of timers into the wheel.
//!
//! For the sharded kernel the claim is shard-count invariance: the
//! per-shard traces, merged on `(time, canonical key)`, are bit-identical
//! for any shard count, as are final states, clocks and event counts — the
//! property that makes a parallel run a drop-in replacement for a serial
//! one.

use fuse_sim::baseline::BaselineSim;
use fuse_sim::medium::Verdict;
use fuse_sim::process::{Ctx, Payload, ProcId, Process};
use fuse_sim::trace::TraceSink;
use fuse_sim::{PerfectMedium, ShardedSim, Sim, SimDuration, SimTime, TimerHandle};
use proptest::prelude::*;

/// Trace recorder: every kernel-visible event, exactly timestamped.
#[derive(Default, Clone, PartialEq, Eq, Debug)]
struct Recorder {
    events: Vec<(u64, u8, u32, u32)>,
}

impl<M> TraceSink<M> for Recorder {
    fn on_send(
        &mut self,
        now: SimTime,
        from: ProcId,
        to: ProcId,
        _msg: &M,
        _size: usize,
        verdict: &Verdict,
    ) {
        let kind = match verdict {
            Verdict::Deliver { .. } => 0,
            Verdict::Break { .. } => 1,
            Verdict::Drop => 2,
        };
        self.events.push((now.nanos(), kind, from, to));
    }

    fn on_deliver(&mut self, now: SimTime, from: ProcId, to: ProcId, _msg: &M) {
        self.events.push((now.nanos(), 3, from, to));
    }

    fn on_lifecycle(&mut self, now: SimTime, id: ProcId, up: bool) {
        self.events.push((now.nanos(), 4, id, u32::from(up)));
    }
}

/// Message that fans out a bounded number of additional hops, creating
/// bursts of same-instant deliveries (constant medium latency).
#[derive(Clone, Debug)]
struct Packet {
    hops_left: u8,
    stride: u8,
}

impl Payload for Packet {
    fn size_bytes(&self) -> usize {
        2
    }
}

/// Timer tag: re-arms `remaining` more times, pinging a neighbor each fire.
#[derive(Clone, Debug)]
struct Tick {
    remaining: u8,
    period_ms: u16,
}

struct TestProc {
    n: u32,
    received: u64,
    fired: u64,
    last_timer: Option<TimerHandle>,
}

impl TestProc {
    fn new(n: u32) -> Self {
        TestProc {
            n,
            received: 0,
            fired: 0,
            last_timer: None,
        }
    }

    fn fingerprint(&self) -> (u64, u64) {
        (self.received, self.fired)
    }
}

impl Process for TestProc {
    type Msg = Packet;
    type Timer = Tick;

    fn on_boot(&mut self, _ctx: &mut Ctx<'_, Packet, Tick>) {}

    fn on_message(&mut self, ctx: &mut Ctx<'_, Packet, Tick>, _from: ProcId, msg: Packet) {
        self.received += 1;
        if msg.hops_left > 0 {
            let to = (ctx.self_id + u32::from(msg.stride)) % self.n;
            ctx.send(
                to,
                Packet {
                    hops_left: msg.hops_left - 1,
                    stride: msg.stride,
                },
            );
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Packet, Tick>, tag: Tick) {
        self.fired += 1;
        let to = (ctx.self_id + 1) % self.n;
        ctx.send(
            to,
            Packet {
                hops_left: 1,
                stride: 1,
            },
        );
        if tag.remaining > 0 {
            let h = ctx.set_timer(
                SimDuration::from_millis(u64::from(tag.period_ms)),
                Tick {
                    remaining: tag.remaining - 1,
                    period_ms: tag.period_ms,
                },
            );
            self.last_timer = Some(h);
        }
    }
}

/// One scripted action against the pair of kernels.
#[derive(Clone, Debug)]
enum Op {
    /// Inject a message via a handler context.
    Send { from: u8, to: u8, hops: u8 },
    /// Arm a (possibly periodic) timer.
    Arm {
        proc: u8,
        period_ms: u16,
        repeats: u8,
    },
    /// Arm then immediately cancel — must never fire, must still cost one
    /// queue slot sweep in both kernels.
    ArmCancel { proc: u8, period_ms: u16 },
    /// Cancel whatever timer the process armed last (may be stale).
    CancelLast { proc: u8 },
    /// Crash a process (idempotent).
    Crash { proc: u8 },
    /// Restart a process if it is down.
    Restart { proc: u8 },
    /// Schedule a crash through the unboxed script queue.
    ScheduleCrash { proc: u8, delay_ms: u16 },
    /// Schedule a restart (state parked until the event fires).
    ScheduleRestart { proc: u8, delay_ms: u16 },
    /// Let simulated time pass.
    Run { millis: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), 0u8..4).prop_map(|(from, to, hops)| Op::Send { from, to, hops }),
        (any::<u8>(), 1u16..200, 0u8..5).prop_map(|(proc, period_ms, repeats)| Op::Arm {
            proc,
            period_ms,
            repeats
        }),
        (any::<u8>(), 1u16..200).prop_map(|(proc, period_ms)| Op::ArmCancel { proc, period_ms }),
        any::<u8>().prop_map(|proc| Op::CancelLast { proc }),
        any::<u8>().prop_map(|proc| Op::Crash { proc }),
        any::<u8>().prop_map(|proc| Op::Restart { proc }),
        (any::<u8>(), 0u16..400).prop_map(|(proc, delay_ms)| Op::ScheduleCrash { proc, delay_ms }),
        (any::<u8>(), 0u16..400)
            .prop_map(|(proc, delay_ms)| Op::ScheduleRestart { proc, delay_ms }),
        (0u16..500).prop_map(|millis| Op::Run { millis }),
    ]
}

/// Applies one op to a kernel through its (identical) scripting surface.
/// Macro instead of a generic function: `Sim` and `BaselineSim` are
/// distinct types with structurally identical APIs.
macro_rules! apply_op {
    ($sim:expr, $n:expr, $op:expr) => {{
        let n = $n;
        match $op.clone() {
            Op::Send { from, to, hops } => {
                let from = u32::from(from) % n;
                let to = u32::from(to) % n;
                $sim.with_proc(from, |_p, ctx| {
                    ctx.send(
                        to,
                        Packet {
                            hops_left: hops,
                            stride: (to % 250 + 1) as u8,
                        },
                    )
                });
            }
            Op::Arm {
                proc,
                period_ms,
                repeats,
            } => {
                let proc = u32::from(proc) % n;
                $sim.with_proc(proc, |p, ctx| {
                    let h = ctx.set_timer(
                        SimDuration::from_millis(u64::from(period_ms)),
                        Tick {
                            remaining: repeats,
                            period_ms,
                        },
                    );
                    p.last_timer = Some(h);
                });
            }
            Op::ArmCancel { proc, period_ms } => {
                let proc = u32::from(proc) % n;
                $sim.with_proc(proc, |_p, ctx| {
                    let h = ctx.set_timer(
                        SimDuration::from_millis(u64::from(period_ms)),
                        Tick {
                            remaining: 3,
                            period_ms,
                        },
                    );
                    ctx.cancel_timer(h);
                });
            }
            Op::CancelLast { proc } => {
                let proc = u32::from(proc) % n;
                $sim.with_proc(proc, |p, ctx| {
                    if let Some(h) = p.last_timer.take() {
                        ctx.cancel_timer(h);
                    }
                });
            }
            Op::Crash { proc } => {
                $sim.crash(u32::from(proc) % n);
            }
            Op::Restart { proc } => {
                let proc = u32::from(proc) % n;
                if !$sim.is_up(proc) {
                    $sim.restart(proc, TestProc::new(n));
                }
            }
            Op::ScheduleCrash { proc, delay_ms } => {
                let at = $sim.now() + SimDuration::from_millis(u64::from(delay_ms));
                $sim.schedule_crash(at, u32::from(proc) % n);
            }
            Op::ScheduleRestart { proc, delay_ms } => {
                let at = $sim.now() + SimDuration::from_millis(u64::from(delay_ms));
                $sim.schedule_restart(at, u32::from(proc) % n, TestProc::new(n));
            }
            Op::Run { millis } => {
                $sim.run_for(SimDuration::from_millis(u64::from(millis)));
            }
        }
    }};
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The core differential property: for arbitrary op scripts, the wheel
    /// kernel and the single-heap kernel produce identical traces, event
    /// counts, clocks and final states.
    #[test]
    fn wheel_and_heap_kernels_are_trace_identical(
        seed in any::<u64>(),
        n in 2u32..8,
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let medium = || PerfectMedium::new(SimDuration::from_millis(5));
        let mut wheel: Sim<TestProc, _, Recorder> =
            Sim::with_trace(seed, medium(), Recorder::default());
        let mut heap: BaselineSim<TestProc, _, Recorder> =
            BaselineSim::with_trace(seed, medium(), Recorder::default());
        for _ in 0..n {
            wheel.add_process(TestProc::new(n));
            heap.add_process(TestProc::new(n));
        }
        for op in &ops {
            apply_op!(wheel, n, op);
            apply_op!(heap, n, op);
        }
        // Drain the aftermath so late timers/deliveries are compared too.
        wheel.run_for(SimDuration::from_secs(2));
        heap.run_for(SimDuration::from_secs(2));

        prop_assert_eq!(wheel.now(), heap.now());
        prop_assert_eq!(wheel.events_executed(), heap.events_executed(),
            "executed-event counts diverged");
        for id in 0..n {
            prop_assert_eq!(wheel.is_up(id), heap.is_up(id), "liveness of {}", id);
            let wf = wheel.proc(id).map(TestProc::fingerprint);
            let hf = heap.proc(id).map(TestProc::fingerprint);
            prop_assert_eq!(wf, hf, "state of process {}", id);
        }
        prop_assert_eq!(wheel.trace(), heap.trace(),
            "event traces diverged (ordering or timing)");
    }
}

/// Trace recorder for the sharded kernel: every record is tagged with the
/// canonical key of the event that produced it ([`TraceSink::on_event`]
/// fires before the event's records), so per-shard traces can be merged
/// into one total order on `(time, key)` — the same order the sequential
/// `step_until` mode executes in.
#[derive(Default, Clone, PartialEq, Eq, Debug)]
struct KeyedRecorder {
    current_key: u64,
    events: Vec<(u64, u64, u8, u32, u32)>,
}

impl KeyedRecorder {
    fn push(&mut self, at: SimTime, kind: u8, a: u32, b: u32) {
        self.events.push((at.nanos(), self.current_key, kind, a, b));
    }
}

impl<M> TraceSink<M> for KeyedRecorder {
    fn on_event(&mut self, _at: SimTime, key: u64) {
        self.current_key = key;
    }

    fn on_send(
        &mut self,
        now: SimTime,
        from: ProcId,
        to: ProcId,
        _msg: &M,
        _size: usize,
        verdict: &Verdict,
    ) {
        let kind = match verdict {
            Verdict::Deliver { .. } => 0,
            Verdict::Break { .. } => 1,
            Verdict::Drop => 2,
        };
        self.push(now, kind, from, to);
    }

    fn on_deliver(&mut self, now: SimTime, from: ProcId, to: ProcId, _msg: &M) {
        self.push(now, 3, from, to);
    }

    fn on_lifecycle(&mut self, now: SimTime, id: ProcId, up: bool) {
        self.push(now, 4, id, u32::from(up));
    }
}

/// Concatenates every shard's records and sorts them on `(time, key)`.
/// The sort is stable and records sharing a `(time, key)` all come from
/// the one shard that executed that event, so their intra-event order
/// (e.g. a handler's send sequence) survives the merge.
fn merged_trace(
    sim: &ShardedSim<TestProc, PerfectMedium, KeyedRecorder>,
) -> Vec<(u64, u64, u8, u32, u32)> {
    let mut all: Vec<_> = sim
        .traces()
        .flat_map(|t| t.events.iter().copied())
        .collect();
    all.sort_by_key(|&(at, key, ..)| (at, key));
    all
}

/// Everything observable about a finished sharded run.
type ShardedOutcome = (
    SimTime,
    u64,
    Vec<(bool, Option<(u64, u64)>)>,
    Vec<(u64, u64, u8, u32, u32)>,
);

/// Runs one op script on a `k`-shard kernel; `parallel_drain` executes the
/// final drain through the threaded round loop instead of the serial one.
fn run_sharded(seed: u64, n: u32, k: usize, ops: &[Op], parallel_drain: bool) -> ShardedOutcome {
    let mut sim: ShardedSim<TestProc, PerfectMedium, KeyedRecorder> = ShardedSim::with_trace(
        seed,
        k,
        PerfectMedium::new(SimDuration::from_millis(5)),
        |_| KeyedRecorder::default(),
    );
    for _ in 0..n {
        sim.add_process(TestProc::new(n));
    }
    for op in ops {
        apply_op!(sim, n, op);
    }
    let deadline = sim.now() + SimDuration::from_secs(2);
    if parallel_drain {
        sim.run_until_parallel(deadline);
    } else {
        sim.run_until(deadline);
    }
    let states = (0..n)
        .map(|id| (sim.is_up(id), sim.proc(id).map(TestProc::fingerprint)))
        .collect();
    (sim.now(), sim.events_executed(), states, merged_trace(&sim))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Shard-count invariance: for arbitrary op scripts (including
    /// scheduled crashes/restarts), partitioning the processes over 2, 3
    /// or 8 shards leaves the merged `(time, key)` trace, the executed
    /// event count, the clock and every process's final state bit-identical
    /// to the single-shard run.
    #[test]
    fn sharded_kernel_is_shard_count_invariant(
        seed in any::<u64>(),
        n in 2u32..8,
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let reference = run_sharded(seed, n, 1, &ops, false);
        for k in [2usize, 3, 8] {
            let other = run_sharded(seed, n, k, &ops, false);
            prop_assert_eq!(reference.0, other.0, "clock at {} shards", k);
            prop_assert_eq!(reference.1, other.1, "event count at {} shards", k);
            prop_assert_eq!(&reference.2, &other.2, "final states at {} shards", k);
            prop_assert_eq!(&reference.3, &other.3, "merged trace at {} shards", k);
        }
    }

    /// The threaded round loop is observationally identical to the serial
    /// one — same merged trace, not merely the same final state.
    #[test]
    fn sharded_parallel_rounds_match_serial_rounds(
        seed in any::<u64>(),
        n in 2u32..8,
        ops in prop::collection::vec(op_strategy(), 1..25),
    ) {
        let serial = run_sharded(seed, n, 4, &ops, false);
        let parallel = run_sharded(seed, n, 4, &ops, true);
        prop_assert_eq!(serial, parallel);
    }
}

/// Same-instant FIFO across scheduler structures, deterministically:
/// messages and timers strictly interleave by arm/send order when all land
/// on one instant.
#[test]
fn same_instant_fifo_across_structures() {
    let mut sim: Sim<TestProc, PerfectMedium, Recorder> = Sim::with_trace(
        7,
        PerfectMedium::new(SimDuration::from_millis(10)),
        Recorder::default(),
    );
    let mut base: BaselineSim<TestProc, PerfectMedium, Recorder> = BaselineSim::with_trace(
        7,
        PerfectMedium::new(SimDuration::from_millis(10)),
        Recorder::default(),
    );
    for _ in 0..4 {
        sim.add_process(TestProc::new(4));
        base.add_process(TestProc::new(4));
    }
    // Alternate arms and sends that all mature at t = 10 ms.
    for k in 0..10u32 {
        let target = k % 4;
        sim.with_proc(0, |_p, ctx| {
            ctx.set_timer(
                SimDuration::from_millis(10),
                Tick {
                    remaining: 0,
                    period_ms: 1,
                },
            );
            ctx.send(
                target,
                Packet {
                    hops_left: 0,
                    stride: 1,
                },
            );
        });
        base.with_proc(0, |_p, ctx| {
            ctx.set_timer(
                SimDuration::from_millis(10),
                Tick {
                    remaining: 0,
                    period_ms: 1,
                },
            );
            ctx.send(
                target,
                Packet {
                    hops_left: 0,
                    stride: 1,
                },
            );
        });
    }
    sim.run_for(SimDuration::from_secs(1));
    base.run_for(SimDuration::from_secs(1));
    assert_eq!(sim.trace(), base.trace());
    assert_eq!(sim.events_executed(), base.events_executed());
}
