//! Kernel stress: 1 000 processes arming periodic liveness-ping timers —
//! the paper's dominant simulation workload — checked for determinism and
//! for sane behavior at scale.

use fuse_sim::process::{Ctx, Payload, ProcId, Process};
use fuse_sim::{PerfectMedium, Sim, SimDuration, TimerHandle};
use rand::Rng;

#[derive(Clone)]
struct Ping;

impl Payload for Ping {
    fn size_bytes(&self) -> usize {
        16
    }

    fn class(&self) -> &'static str {
        "ping"
    }
}

/// Liveness-ping shape from the paper: every node pings a neighbor each
/// period (with deterministic jitter so arms spread over the period, as the
/// real protocol does) and re-arms.
struct Pinger {
    n: u32,
    period: SimDuration,
    sent: u64,
    got: u64,
    timer: Option<TimerHandle>,
}

impl Pinger {
    fn new(n: u32, period: SimDuration) -> Self {
        Pinger {
            n,
            period,
            sent: 0,
            got: 0,
            timer: None,
        }
    }
}

impl Process for Pinger {
    type Msg = Ping;
    type Timer = ();

    fn on_boot(&mut self, ctx: &mut Ctx<'_, Ping, ()>) {
        let jitter = SimDuration(ctx.rng().gen_range(0..=self.period.nanos()));
        self.timer = Some(ctx.set_timer(jitter, ()));
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, Ping, ()>, _from: ProcId, _m: Ping) {
        self.got += 1;
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Ping, ()>, _t: ()) {
        let to = (ctx.self_id + 1) % self.n;
        ctx.send(to, Ping);
        self.sent += 1;
        self.timer = Some(ctx.set_timer(self.period, ()));
    }
}

fn run(seed: u64, n: u32, secs: u64) -> Sim<Pinger, PerfectMedium> {
    let mut sim = Sim::new(seed, PerfectMedium::new(SimDuration::from_millis(50)));
    let period = SimDuration::from_secs(1);
    for _ in 0..n {
        sim.add_process(Pinger::new(n, period));
    }
    sim.run_for(SimDuration::from_secs(secs));
    sim
}

/// The acceptance-criteria determinism check at 1k-process scale: same
/// seed ⇒ identical executed-event counts and identical per-process state;
/// different seeds ⇒ same totals differently phased.
#[test]
fn thousand_process_periodic_timers_are_deterministic() {
    const N: u32 = 1_000;
    const SECS: u64 = 30;
    for seed in [1u64, 42, 12345] {
        let a = run(seed, N, SECS);
        let b = run(seed, N, SECS);
        assert_eq!(
            a.events_executed(),
            b.events_executed(),
            "seed {seed}: executed-event counts diverged between runs"
        );
        for id in 0..N {
            let (pa, pb) = (a.proc(id).unwrap(), b.proc(id).unwrap());
            assert_eq!(
                (pa.sent, pa.got),
                (pb.sent, pb.got),
                "seed {seed} proc {id}"
            );
        }
    }
    // Cross-seed sanity: jitter phases differ, steady-state totals match.
    let x = run(7, N, SECS);
    let y = run(8, N, SECS);
    let sent_x: u64 = (0..N).map(|i| x.proc(i).unwrap().sent).sum();
    let sent_y: u64 = (0..N).map(|i| y.proc(i).unwrap().sent).sum();
    // Each node sends ~SECS pings; boot jitter shifts each by <1 period.
    let lo = N as u64 * (SECS - 1);
    let hi = N as u64 * (SECS + 1);
    assert!((lo..=hi).contains(&sent_x), "seed 7 total {sent_x}");
    assert!((lo..=hi).contains(&sent_y), "seed 8 total {sent_y}");
}

/// Every armed ping round-trips: with a loss-free medium, total received
/// equals total sent once deliveries settle.
#[test]
fn no_pings_are_lost_or_duplicated_at_scale() {
    let mut sim = run(3, 500, 20);
    // Let in-flight deliveries land (latency 50 ms).
    sim.run_for(SimDuration::from_secs(2));
    let sent: u64 = (0..500).map(|i| sim.proc(i).unwrap().sent).sum();
    let got: u64 = (0..500).map(|i| sim.proc(i).unwrap().got).sum();
    // Pings sent in the final latency window may still be in flight.
    assert!(sent - got <= 500, "sent {sent} vs got {got}");
    assert!(sent > 0);
}

/// Crashing half the fleet mid-run neither wedges the scheduler nor breaks
/// determinism.
#[test]
fn mass_crash_and_restart_stays_deterministic() {
    let run_with_churn = |seed: u64| {
        let mut sim = run(seed, 200, 5);
        for id in 0..100u32 {
            sim.crash(id);
        }
        sim.run_for(SimDuration::from_secs(5));
        for id in 0..100u32 {
            sim.restart(id, Pinger::new(200, SimDuration::from_secs(1)));
        }
        sim.run_for(SimDuration::from_secs(5));
        sim
    };
    let a = run_with_churn(11);
    let b = run_with_churn(11);
    assert_eq!(a.events_executed(), b.events_executed());
    let totals = |s: &Sim<Pinger, PerfectMedium>| -> (u64, u64) {
        (0..200).fold((0, 0), |(sent, got), i| {
            let p = s.proc(i).unwrap();
            (sent + p.sent, got + p.got)
        })
    };
    assert_eq!(totals(&a), totals(&b));
}
