//! Observation hooks for metrics.
//!
//! Experiments count messages by class and bytes on the wire (Figure 10 and
//! the §7.5 steady-state table). A [`TraceSink`] sees every send decision and
//! every delivery without protocol code knowing it is being watched.

use crate::medium::Verdict;
use crate::process::ProcId;
use crate::time::SimTime;

/// Observer of kernel-level message events.
pub trait TraceSink<M> {
    /// An event is about to execute, identified by its `(time, key)` pair.
    ///
    /// For [`Sim`](crate::Sim) the key is the kernel's global insertion
    /// sequence; for [`ShardedSim`](crate::ShardedSim) it is the canonical
    /// `(origin, counter)` key ([`crate::sync::canon_key`]), which is what
    /// lets per-shard trace streams merge into one canonical order.
    fn on_event(&mut self, at: SimTime, key: u64) {
        let _ = (at, key);
    }

    /// A message was submitted to the medium with the given verdict.
    fn on_send(
        &mut self,
        now: SimTime,
        from: ProcId,
        to: ProcId,
        msg: &M,
        size: usize,
        verdict: &Verdict,
    ) {
        let _ = (now, from, to, msg, size, verdict);
    }

    /// A message reached its destination process.
    fn on_deliver(&mut self, now: SimTime, from: ProcId, to: ProcId, msg: &M) {
        let _ = (now, from, to, msg);
    }

    /// A process was crashed or restarted by script.
    fn on_lifecycle(&mut self, now: SimTime, id: ProcId, up: bool) {
        let _ = (now, id, up);
    }
}

/// Sink that ignores everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTrace;

impl<M> TraceSink<M> for NullTrace {}
