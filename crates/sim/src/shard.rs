//! The sharded kernel: conservative parallel discrete-event simulation
//! with a trace that is bit-identical for every shard count.
//!
//! Processes are partitioned across shards by [`ShardMap`]; each shard owns
//! its own [`TimingWheel`], message slab, timer tables and per-process RNGs,
//! plus a full replica of the medium. Shards execute *windows* bounded by
//! conservative lookahead horizons (see [`crate::sync`]); cross-shard sends
//! travel through per-pair outbox queues drained at round barriers.
//!
//! # Determinism contract
//!
//! For a fixed `(seed, script)`, every shard count produces the same
//! observable run: identical per-process final states, identical event
//! counts, and per-shard traces that merge into one identical stream when
//! sorted by `(time, canonical key)`. Two design choices make this hold:
//!
//! * **Per-process RNGs.** The single-kernel [`Sim`](crate::Sim) draws all
//!   randomness from one global RNG, whose draw order depends on event
//!   interleaving — meaningless across shards. Here every process owns an
//!   RNG seeded from `(seed, id)`, and a message's fate is drawn from the
//!   *sender's* RNG. (This is also why a sharded run is not bit-identical
//!   to [`Sim`](crate::Sim) — only to itself at other shard counts.)
//! * **Canonical keys.** Every scheduled event is keyed by
//!   `(origin, per-origin counter)` ([`crate::sync::canon_key`]); a
//!   process's handler executions are totally ordered regardless of
//!   sharding, so keys are shard-count independent.
//!
//! Scripted control operations (crash / restart / scheduled calls) live in
//! a kernel-level queue keyed by [`CTRL_ORIGIN`] and execute only once
//! every shard has drained past their instant — after all process events
//! at an equal instant, before anything later.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::kernel::Slab;
use crate::medium::{Medium, Verdict};
use crate::process::{Action, Ctx, Payload, ProcId, Process};
use crate::sync::{canon_key, Lookahead, ShardMap, ShardMedium, CTRL_ORIGIN};
use crate::time::{SimDuration, SimTime};
use crate::timer::{TimerHandle, TimerTable};
use crate::trace::{NullTrace, TraceSink};
use crate::wheel::{TimingWheel, WheelEntry};

const INF: SimTime = SimTime(u64::MAX);

/// Wheel token of one shard: timer expiries, parked-payload deliveries and
/// link-break notices (all three live in the wheel here — the sharded
/// kernel has no residual heap; scripted operations are kernel-level).
enum Token {
    Timer(TimerHandle),
    Deliver { idx: u32, gen: u32 },
    LinkBroken { proc: ProcId, peer: ProcId },
}

/// A cross-shard delivery queued in the sender's outbox until the round
/// barrier. Carries its canonical key so the receiving wheel interleaves
/// it exactly where a single-shard run would.
struct CrossMsg<M> {
    at: SimTime,
    key: u64,
    from: ProcId,
    to: ProcId,
    msg: M,
}

struct LocalSlot<P: Process> {
    proc: Option<P>,
    timers: TimerTable<P::Timer>,
    /// Per-process RNG: all randomness this process's handlers (and the
    /// medium, for its sends) consume. Seeded from `(kernel seed, id)`.
    rng: StdRng,
    /// Next canonical-key counter for events this process schedules.
    next_key: u64,
}

/// One shard: a self-contained event loop over its owned processes.
struct Shard<P: Process, Md, S> {
    wheel: TimingWheel<Token>,
    msgs: Slab<(ProcId, ProcId, P::Msg)>,
    slots: Vec<LocalSlot<P>>,
    medium: Md,
    trace: S,
    /// Outgoing cross-shard messages, one queue per destination shard
    /// (single producer — this shard; single consumer — the barrier
    /// drain). Capacity is recycled across rounds.
    outbox: Vec<Vec<CrossMsg<P::Msg>>>,
    events_executed: u64,
    local_sends: u64,
    cross_sends: u64,
    scratch_actions: Vec<Action<P::Msg>>,
    scratch_timers: Vec<(TimerHandle, SimTime)>,
}

impl<P: Process, Md: Medium, S: TraceSink<P::Msg>> Shard<P, Md, S> {
    fn new(shards: usize, medium: Md, trace: S) -> Self {
        Shard {
            wheel: TimingWheel::new(),
            msgs: Slab::new(),
            slots: Vec::new(),
            medium,
            trace,
            outbox: (0..shards).map(|_| Vec::new()).collect(),
            events_executed: 0,
            local_sends: 0,
            cross_sends: 0,
            scratch_actions: Vec::new(),
            scratch_timers: Vec::new(),
        }
    }

    /// Earliest pending event time, or [`INF`] when idle.
    fn next_time(&mut self) -> SimTime {
        self.wheel.peek().map(|(at, _)| at).unwrap_or(INF)
    }

    /// Runs a handler for `id` at `now` and flushes its effects with
    /// canonical keys. Returns whether the process was alive.
    fn dispatch(
        &mut self,
        map: &ShardMap,
        me: usize,
        id: ProcId,
        now: SimTime,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg, P::Timer>),
    ) -> bool {
        let local = map.local_of(id);
        let mut actions = std::mem::take(&mut self.scratch_actions);
        let mut new_timers = std::mem::take(&mut self.scratch_timers);
        let ran = {
            let slot = match self.slots.get_mut(local) {
                Some(s) => s,
                None => return false,
            };
            let LocalSlot {
                proc, timers, rng, ..
            } = slot;
            match proc.as_mut() {
                Some(p) => {
                    let mut ctx = Ctx {
                        now,
                        self_id: id,
                        rng,
                        timers,
                        actions: &mut actions,
                        new_timers: &mut new_timers,
                    };
                    f(p, &mut ctx);
                    true
                }
                None => false,
            }
        };
        // Timers before sends: the flush order fixes the canonical key
        // order, and it must be one fixed order for every shard count.
        let Shard {
            wheel,
            msgs,
            slots,
            medium,
            trace,
            outbox,
            local_sends,
            cross_sends,
            ..
        } = self;
        let slot = &mut slots[local];
        for (handle, at) in new_timers.drain(..) {
            let key = canon_key(id, slot.next_key);
            slot.next_key += 1;
            wheel.insert(WheelEntry {
                at,
                seq: key,
                token: Token::Timer(handle),
            });
        }
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => {
                    let size = msg.size_bytes();
                    let class = msg.class();
                    let verdict = medium.unicast(now, &mut slot.rng, id, to, size, class);
                    trace.on_send(now, id, to, &msg, size, &verdict);
                    match verdict {
                        Verdict::Deliver { at } => {
                            debug_assert!(at >= now);
                            let key = canon_key(id, slot.next_key);
                            slot.next_key += 1;
                            let dest = map.shard_of(to);
                            if dest == me {
                                *local_sends += 1;
                                let (idx, gen) = msgs.insert((id, to, msg));
                                wheel.insert(WheelEntry {
                                    at,
                                    seq: key,
                                    token: Token::Deliver { idx, gen },
                                });
                            } else {
                                *cross_sends += 1;
                                outbox[dest].push(CrossMsg {
                                    at,
                                    key,
                                    from: id,
                                    to,
                                    msg,
                                });
                            }
                        }
                        Verdict::Break { sender_notice } => {
                            let key = canon_key(id, slot.next_key);
                            slot.next_key += 1;
                            wheel.insert(WheelEntry {
                                at: sender_notice,
                                seq: key,
                                token: Token::LinkBroken { proc: id, peer: to },
                            });
                        }
                        Verdict::Drop => {}
                    }
                }
            }
        }
        self.scratch_actions = actions;
        self.scratch_timers = new_timers;
        ran
    }

    /// Pops and executes the front event (caller has checked it is due).
    fn pop_execute(&mut self, map: &ShardMap, me: usize) {
        let WheelEntry { at, seq, token } = self.wheel.pop().expect("caller peeked front");
        self.events_executed += 1;
        self.trace.on_event(at, seq);
        match token {
            Token::Timer(h) => {
                let slot = &mut self.slots[map.local_of(h.proc)];
                if slot.proc.is_none() {
                    return;
                }
                if let Some(tag) = slot.timers.fire(h) {
                    self.dispatch(map, me, h.proc, at, |p, ctx| p.on_timer(ctx, tag));
                }
            }
            Token::Deliver { idx, gen } => {
                let (from, to, msg) = self.msgs.take(idx, gen);
                let alive = self.slots[map.local_of(to)].proc.is_some();
                if alive {
                    self.trace.on_deliver(at, from, to, &msg);
                    self.dispatch(map, me, to, at, |p, ctx| p.on_message(ctx, from, msg));
                }
            }
            Token::LinkBroken { proc, peer } => {
                self.dispatch(map, me, proc, at, |p, ctx| p.on_link_broken(ctx, peer));
            }
        }
    }

    /// Executes every event due at or before `bound` (inclusive), in
    /// `(time, key)` order — including events the window itself schedules
    /// inside the bound.
    fn run_window(&mut self, map: &ShardMap, me: usize, bound: SimTime) {
        while matches!(self.wheel.peek(), Some((at, _)) if at <= bound) {
            self.pop_execute(map, me);
        }
    }
}

/// Kernel-level scripted operation (the sharded analogue of the residual
/// heap in [`Sim`](crate::Sim)).
enum CtrlOp<P: Process, Md, S> {
    Crash(ProcId),
    Restart { id: ProcId, idx: u32, gen: u32 },
    Call(Box<dyn FnOnce(&mut ShardedSim<P, Md, S>)>),
}

struct CtrlEntry<P: Process, Md, S> {
    at: SimTime,
    seq: u64,
    op: CtrlOp<P, Md, S>,
}

impl<P: Process, Md, S> PartialEq for CtrlEntry<P, Md, S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<P: Process, Md, S> Eq for CtrlEntry<P, Md, S> {}

impl<P: Process, Md, S> PartialOrd for CtrlEntry<P, Md, S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P: Process, Md, S> Ord for CtrlEntry<P, Md, S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for the max-heap: earliest (time, seq) first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Wall-clock profile of one windowed run, for scaling benchmarks.
///
/// `critical_path_s` models the run's cost on one core per shard: per
/// round, the slowest shard's window (the other windows would overlap it),
/// plus every serially-executed coordinator cost (horizon computation,
/// outbox drains, control ops) in full. On a single-core host this is the
/// honest projection of multi-core scaling — the windows really are
/// independent — while `wall_s` reports what this host actually spent.
#[derive(Debug, Clone, Default)]
pub struct RunProfile {
    /// Window rounds executed.
    pub rounds: u64,
    /// Total wall-clock seconds of the run (all shards executed serially).
    pub wall_s: f64,
    /// Sum over rounds of the slowest shard's window time, plus all
    /// coordinator time (`wall_s` minus every shard's window time).
    pub critical_path_s: f64,
    /// Per-shard total window execution seconds.
    pub busy_s: Vec<f64>,
}

/// The sharded simulation world. Mirrors the scripting surface of
/// [`Sim`](crate::Sim) (processes, crash/restart, scheduled operations,
/// run loops) over `k` conservative-lookahead shards.
///
/// # Examples
///
/// ```
/// use fuse_sim::{PerfectMedium, Payload, Process, ProcId, ShardedSim, SimDuration};
///
/// #[derive(Clone)]
/// struct Hello;
/// impl Payload for Hello {
///     fn size_bytes(&self) -> usize { 5 }
/// }
///
/// struct Greeter { got: u32 }
/// impl Process for Greeter {
///     type Msg = Hello;
///     type Timer = ();
///     fn on_boot(&mut self, ctx: &mut fuse_sim::process::Ctx<'_, Hello, ()>) {
///         if ctx.self_id == 0 { ctx.send(1, Hello); }
///     }
///     fn on_message(&mut self, _ctx: &mut fuse_sim::process::Ctx<'_, Hello, ()>, _from: ProcId, _m: Hello) {
///         self.got += 1;
///     }
///     fn on_timer(&mut self, _ctx: &mut fuse_sim::process::Ctx<'_, Hello, ()>, _t: ()) {}
/// }
///
/// let medium = PerfectMedium::new(SimDuration::from_millis(10));
/// let mut sim = ShardedSim::new(42, 2, medium);
/// sim.add_process(Greeter { got: 0 });
/// sim.add_process(Greeter { got: 0 });
/// sim.run_for(SimDuration::from_secs(1));
/// assert_eq!(sim.proc(1).unwrap().got, 1);
/// ```
pub struct ShardedSim<P: Process, Md, S = NullTrace> {
    clock: SimTime,
    map: ShardMap,
    lookahead: Lookahead,
    shards: Vec<Shard<P, Md, S>>,
    ctrl: BinaryHeap<CtrlEntry<P, Md, S>>,
    ctrl_seq: u64,
    ctrl_executed: u64,
    restarts: Slab<P>,
    seed: u64,
    n_procs: u32,
    // Scratch for the window loop (per-shard next times and effective
    // event-availability bounds), recycled across rounds.
    scratch_next: Vec<SimTime>,
    scratch_avail: Vec<SimTime>,
}

impl<P: Process, Md: ShardMedium> ShardedSim<P, Md, NullTrace> {
    /// Creates a sharded simulation with the default (no-op) trace sinks.
    pub fn new(seed: u64, shards: usize, medium: Md) -> Self {
        ShardedSim::with_trace(seed, shards, medium, |_| NullTrace)
    }
}

impl<P: Process, Md: ShardMedium, S: TraceSink<P::Msg>> ShardedSim<P, Md, S> {
    /// Creates a sharded simulation with one trace sink per shard,
    /// produced by `trace(shard_index)`.
    pub fn with_trace(
        seed: u64,
        shards: usize,
        medium: Md,
        mut trace: impl FnMut(usize) -> S,
    ) -> Self {
        let map = ShardMap::new(shards);
        let lookahead = Lookahead::new(shards, medium.shard_lookahead(&map));
        let replicas = medium.replicate(shards);
        assert_eq!(
            replicas.len(),
            shards,
            "replicate() must yield one medium per shard"
        );
        let shards_vec: Vec<Shard<P, Md, S>> = replicas
            .into_iter()
            .enumerate()
            .map(|(i, m)| Shard::new(shards, m, trace(i)))
            .collect();
        ShardedSim {
            clock: SimTime::ZERO,
            map,
            lookahead,
            shards: shards_vec,
            ctrl: BinaryHeap::new(),
            ctrl_seq: 0,
            ctrl_executed: 0,
            restarts: Slab::new(),
            seed,
            n_procs: 0,
            scratch_next: vec![INF; shards],
            scratch_avail: vec![INF; shards],
        }
    }

    fn proc_rng(seed: u64, id: ProcId) -> StdRng {
        // Injective id -> stream mapping; seed_from_u64 runs SplitMix to
        // decorrelate neighbouring streams.
        StdRng::seed_from_u64(seed ^ (u64::from(id) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next canonical control key; synchronous script entry points consume
    /// these too, so every observable operation has a shard-count
    /// independent key.
    fn next_ctrl_seq(&mut self) -> u64 {
        self.ctrl_seq += 1;
        self.ctrl_seq
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.map.shards()
    }

    /// Number of processes ever added (including crashed ones).
    pub fn process_count(&self) -> usize {
        self.n_procs as usize
    }

    /// Total events executed across all shards, plus fired control
    /// operations. Identical for every shard count.
    pub fn events_executed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_executed).sum::<u64>() + self.ctrl_executed
    }

    /// Events still queued (including lazily-cancelled timers) plus
    /// pending control operations.
    pub fn pending_events(&self) -> usize {
        self.shards.iter().map(|s| s.wheel.len()).sum::<usize>() + self.ctrl.len()
    }

    /// `(same-shard, cross-shard)` delivered-send counts — the cross-shard
    /// traffic ratio of the run so far.
    pub fn send_stats(&self) -> (u64, u64) {
        let local = self.shards.iter().map(|s| s.local_sends).sum();
        let cross = self.shards.iter().map(|s| s.cross_sends).sum();
        (local, cross)
    }

    /// Whether process `id` is currently alive.
    pub fn is_up(&self, id: ProcId) -> bool {
        self.shards[self.map.shard_of(id)]
            .slots
            .get(self.map.local_of(id))
            .map(|s| s.proc.is_some())
            .unwrap_or(false)
    }

    /// Immutable view of a live process's state.
    pub fn proc(&self, id: ProcId) -> Option<&P> {
        self.shards[self.map.shard_of(id)]
            .slots
            .get(self.map.local_of(id))
            .and_then(|s| s.proc.as_ref())
    }

    /// Shard `i`'s medium replica (read-only). The kernel keeps replicas'
    /// *fault state* identical; per-replica caches and traffic counters
    /// legitimately differ.
    pub fn medium(&self, shard: usize) -> &Md {
        &self.shards[shard].medium
    }

    /// Applies `f` to every shard's medium replica — the only way scripts
    /// may mutate the medium. Broadcasting keeps replica fault state
    /// identical, which the determinism contract depends on. Call it only
    /// between run windows (every shard at a barrier).
    pub fn with_mediums(&mut self, mut f: impl FnMut(&mut Md)) {
        for sh in &mut self.shards {
            f(&mut sh.medium);
        }
    }

    /// Shard `i`'s trace sink.
    pub fn trace(&self, shard: usize) -> &S {
        &self.shards[shard].trace
    }

    /// Every shard's trace sink, in shard order.
    pub fn traces(&self) -> impl Iterator<Item = &S> {
        self.shards.iter().map(|s| &s.trace)
    }

    /// Adds a process (assigned to shard `id % shards`), boots it, and
    /// returns its id.
    pub fn add_process(&mut self, p: P) -> ProcId {
        let id = self.n_procs;
        assert!(id < CTRL_ORIGIN, "process id space exhausted");
        self.n_procs += 1;
        let s = self.map.shard_of(id);
        debug_assert_eq!(self.shards[s].slots.len(), self.map.local_of(id));
        let rng = Self::proc_rng(self.seed, id);
        self.shards[s].slots.push(LocalSlot {
            proc: Some(p),
            timers: TimerTable::new(),
            rng,
            next_key: 0,
        });
        for sh in &mut self.shards {
            sh.medium.node_up(id);
        }
        let seq = self.next_ctrl_seq();
        let clock = self.clock;
        self.shards[s]
            .trace
            .on_event(clock, canon_key(CTRL_ORIGIN, seq));
        self.shards[s].trace.on_lifecycle(clock, id, true);
        self.shards[s].dispatch(&self.map, s, id, clock, |p, ctx| p.on_boot(ctx));
        self.drain_outboxes();
        id
    }

    /// Crashes process `id`: state dropped, timers cleared, every medium
    /// replica informed. In-flight messages *to* the process are discarded
    /// on arrival; messages it already sent still propagate.
    pub fn crash(&mut self, id: ProcId) {
        let seq = self.next_ctrl_seq();
        self.crash_inner(id, seq);
    }

    fn crash_inner(&mut self, id: ProcId, seq: u64) {
        let s = self.map.shard_of(id);
        let slot = &mut self.shards[s].slots[self.map.local_of(id)];
        if slot.proc.take().is_none() {
            return;
        }
        slot.timers.clear();
        for sh in &mut self.shards {
            sh.medium.node_down(id);
        }
        let clock = self.clock;
        self.shards[s]
            .trace
            .on_event(clock, canon_key(CTRL_ORIGIN, seq));
        self.shards[s].trace.on_lifecycle(clock, id, false);
    }

    /// Restarts a crashed process with fresh state `p` (same id).
    pub fn restart(&mut self, id: ProcId, p: P) {
        let seq = self.next_ctrl_seq();
        self.restart_inner(id, p, seq);
        self.drain_outboxes();
    }

    fn restart_inner(&mut self, id: ProcId, p: P, seq: u64) {
        let s = self.map.shard_of(id);
        let slot = &mut self.shards[s].slots[self.map.local_of(id)];
        assert!(slot.proc.is_none(), "restart of a live process");
        slot.proc = Some(p);
        for sh in &mut self.shards {
            sh.medium.node_up(id);
        }
        let clock = self.clock;
        self.shards[s]
            .trace
            .on_event(clock, canon_key(CTRL_ORIGIN, seq));
        self.shards[s].trace.on_lifecycle(clock, id, true);
        self.shards[s].dispatch(&self.map, s, id, clock, |p, ctx| p.on_boot(ctx));
    }

    /// Runs `f` against live process `id` with a full handler context; the
    /// entry point for scripted API calls. Returns `None` if the process
    /// is down.
    pub fn with_proc<R>(
        &mut self,
        id: ProcId,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg, P::Timer>) -> R,
    ) -> Option<R> {
        let seq = self.next_ctrl_seq();
        let s = self.map.shard_of(id);
        let clock = self.clock;
        self.shards[s]
            .trace
            .on_event(clock, canon_key(CTRL_ORIGIN, seq));
        let mut out = None;
        let ran = self.shards[s].dispatch(&self.map, s, id, clock, |p, ctx| {
            out = Some(f(p, ctx));
        });
        self.drain_outboxes();
        if ran {
            out
        } else {
            None
        }
    }

    /// Schedules a crash of process `id` at absolute time `at`; idempotent
    /// at fire time, exactly like [`Sim::schedule_crash`](crate::Sim::schedule_crash).
    pub fn schedule_crash(&mut self, at: SimTime, id: ProcId) {
        assert!(at >= self.clock, "cannot schedule in the past");
        let seq = self.next_ctrl_seq();
        self.ctrl.push(CtrlEntry {
            at,
            seq,
            op: CtrlOp::Crash(id),
        });
    }

    /// Schedules a restart of process `id` with `state` at absolute time
    /// `at`; dropped if the process is up at fire time (the parked state is
    /// discarded), mirroring [`Sim::schedule_restart`](crate::Sim::schedule_restart).
    pub fn schedule_restart(&mut self, at: SimTime, id: ProcId, state: P) {
        assert!(at >= self.clock, "cannot schedule in the past");
        let (idx, gen) = self.restarts.insert(state);
        let seq = self.next_ctrl_seq();
        self.ctrl.push(CtrlEntry {
            at,
            seq,
            op: CtrlOp::Restart { id, idx, gen },
        });
    }

    /// Schedules `f(&mut Self)` at absolute time `at` (the catch-all
    /// scripting hook; boxes the closure).
    pub fn schedule_call(&mut self, at: SimTime, f: impl FnOnce(&mut Self) + 'static) {
        assert!(at >= self.clock, "cannot schedule in the past");
        let seq = self.next_ctrl_seq();
        self.ctrl.push(CtrlEntry {
            at,
            seq,
            op: CtrlOp::Call(Box::new(f)),
        });
    }

    fn exec_ctrl(&mut self, e: CtrlEntry<P, Md, S>) {
        self.ctrl_executed += 1;
        match e.op {
            CtrlOp::Crash(id) => self.crash_inner(id, e.seq),
            CtrlOp::Restart { id, idx, gen } => {
                let state = self.restarts.take(idx, gen);
                if !self.is_up(id) {
                    self.restart_inner(id, state, e.seq);
                }
            }
            CtrlOp::Call(f) => f(self),
        }
        self.drain_outboxes();
    }

    /// Moves queued cross-shard messages into their destination wheels.
    /// Every arrival instant lies at or past the destination's horizon, so
    /// draining at barriers never inserts into a window already executed.
    fn drain_outboxes(&mut self) {
        let k = self.shards.len();
        for src in 0..k {
            for dst in 0..k {
                if src == dst || self.shards[src].outbox[dst].is_empty() {
                    continue;
                }
                let mut q = std::mem::take(&mut self.shards[src].outbox[dst]);
                for m in q.drain(..) {
                    let (idx, gen) = self.shards[dst].msgs.insert((m.from, m.to, m.msg));
                    self.shards[dst].wheel.insert(WheelEntry {
                        at: m.at,
                        seq: m.key,
                        token: Token::Deliver { idx, gen },
                    });
                }
                self.shards[src].outbox[dst] = q; // Recycle capacity.
            }
        }
    }

    /// Per-shard *event availability* bounds: the CMB fixpoint
    /// `E_i = min(next_i, min_j (E_j + B(j, i)))` — the earliest instant at
    /// which shard `i` could still come to execute an event, accounting for
    /// messages relayed through any chain of shards. Computed by
    /// Bellman-Ford relaxation (k is small); using raw `next_j` instead
    /// would require the triangle inequality on the bound matrix, which
    /// set-to-set latency bounds do not generally satisfy.
    fn availability(&mut self) {
        let k = self.shards.len();
        for i in 0..k {
            self.scratch_next[i] = self.shards[i].next_time();
            self.scratch_avail[i] = self.scratch_next[i];
        }
        for _ in 1..k {
            let mut changed = false;
            for j in 0..k {
                for i in 0..k {
                    if i == j || self.scratch_avail[j] == INF {
                        continue;
                    }
                    let via = SimTime(
                        self.scratch_avail[j]
                            .0
                            .saturating_add(self.lookahead.bound(j, i).0),
                    );
                    if via < self.scratch_avail[i] {
                        self.scratch_avail[i] = via;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Runs all events up to and including time `t`, then sets the clock
    /// to `t`. Windowed execution: shards run maximal conservative windows
    /// per round; rounds repeat until nothing at or before `t` remains.
    pub fn run_until(&mut self, t: SimTime) {
        self.run_windows(t, &mut None);
        if t > self.clock {
            self.clock = t;
        }
    }

    /// Runs for a span of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.clock + d;
        self.run_until(t);
    }

    /// [`run_until`](Self::run_until) with wall-clock profiling, for
    /// scaling benchmarks. Shards still execute serially (bit-identical to
    /// the unprofiled run); the profile reports what each shard's windows
    /// cost and the resulting critical path.
    pub fn run_until_profiled(&mut self, t: SimTime) -> RunProfile {
        let mut profile = RunProfile {
            busy_s: vec![0.0; self.shards.len()],
            ..RunProfile::default()
        };
        let t0 = Instant::now();
        let mut prof = Some(&mut profile);
        self.run_windows(t, &mut prof);
        if t > self.clock {
            self.clock = t;
        }
        profile.wall_s = t0.elapsed().as_secs_f64();
        // All non-window time is coordinator work, paid serially.
        let busy: f64 = profile.busy_s.iter().sum();
        profile.critical_path_s += (profile.wall_s - busy).max(0.0);
        profile
    }

    /// The serial window loop shared by [`run_until`](Self::run_until) and
    /// [`run_until_profiled`](Self::run_until_profiled); `profile`
    /// accumulates the per-round critical path.
    fn run_windows(&mut self, t: SimTime, profile: &mut Option<&mut RunProfile>) {
        let k = self.shards.len();
        loop {
            self.availability();
            let min_next = self.scratch_next.iter().copied().min().unwrap_or(INF);
            let ctrl_next = self.ctrl.peek().map(|e| e.at).unwrap_or(INF);
            if min_next > t && ctrl_next > t {
                return;
            }
            // Control fires once every process event at or before its
            // instant has executed: at an equal instant, process events
            // sort below CTRL_ORIGIN keys.
            if ctrl_next <= t && min_next > ctrl_next {
                let e = self.ctrl.pop().expect("peeked");
                self.clock = e.at;
                self.exec_ctrl(e);
                continue;
            }
            if let Some(p) = profile.as_deref_mut() {
                p.rounds += 1;
            }
            let mut round_max = 0.0f64;
            let bounds: Vec<Option<SimTime>> = (0..k)
                .map(|i| {
                    let mut horizon = INF;
                    for j in 0..k {
                        if j == i || self.scratch_avail[j] == INF {
                            continue;
                        }
                        let h = SimTime(
                            self.scratch_avail[j]
                                .0
                                .saturating_add(self.lookahead.bound(j, i).0),
                        );
                        horizon = horizon.min(h);
                    }
                    // Inclusive window bound: strictly below the horizon
                    // (an arrival can land exactly on it), at most the
                    // earliest control instant, at most the target.
                    let mut b = t.min(SimTime(ctrl_next.0));
                    if horizon != INF {
                        b = b.min(SimTime(horizon.0 - 1));
                    }
                    (self.scratch_next[i] <= b).then_some(b)
                })
                .collect();
            for (i, b) in bounds.iter().enumerate() {
                let Some(b) = b else { continue };
                let map = self.map;
                if let Some(p) = profile.as_deref_mut() {
                    let w0 = Instant::now();
                    self.shards[i].run_window(&map, i, *b);
                    let dt = w0.elapsed().as_secs_f64();
                    p.busy_s[i] += dt;
                    round_max = round_max.max(dt);
                } else {
                    self.shards[i].run_window(&map, i, *b);
                }
            }
            if let Some(p) = profile.as_deref_mut() {
                p.critical_path_s += round_max;
            }
            self.drain_outboxes();
        }
    }

    /// Executes the globally next event (or control operation) if due at
    /// or before `t`; returns whether one ran. The clock is left on the
    /// executed event — the building block for event-driven waits.
    ///
    /// Sequential canonical stepping: equivalent to a single merged queue
    /// ordered by `(time, key)`, so interleaving `step_until` with
    /// [`run_until`](Self::run_until) preserves bit-identical traces at
    /// every shard count.
    pub fn step_until(&mut self, t: SimTime) -> bool {
        let k = self.shards.len();
        let mut best: Option<(SimTime, u64, usize)> = None;
        for i in 0..k {
            if let Some((at, key)) = self.shards[i].wheel.peek() {
                if best.map(|(ba, bk, _)| (at, key) < (ba, bk)).unwrap_or(true) {
                    best = Some((at, key, i));
                }
            }
        }
        if let Some(e) = self.ctrl.peek() {
            let ckey = canon_key(CTRL_ORIGIN, e.seq);
            if best
                .map(|(ba, bk, _)| (e.at, ckey) < (ba, bk))
                .unwrap_or(true)
            {
                best = Some((e.at, ckey, k));
            }
        }
        let Some((at, _, who)) = best else {
            return false;
        };
        if at > t {
            return false;
        }
        debug_assert!(at >= self.clock, "time went backwards");
        self.clock = at;
        if who == k {
            let e = self.ctrl.pop().expect("peeked");
            self.exec_ctrl(e);
        } else {
            let map = self.map;
            self.shards[who].pop_execute(&map, who);
            self.drain_outboxes();
        }
        true
    }

    /// Drains the event queue with `limit` as a safety bound; returns
    /// whether the simulation went idle (semantics of
    /// [`Sim::run_until_idle`](crate::Sim::run_until_idle)).
    pub fn run_until_idle(&mut self, limit: SimTime) -> bool {
        self.run_windows(limit, &mut None);
        let idle = self.pending_events() == 0;
        if !idle && limit > self.clock {
            self.clock = limit;
        }
        idle
    }
}

impl<P, Md, S> ShardedSim<P, Md, S>
where
    P: Process + Send,
    P::Msg: Send,
    P::Timer: Send,
    Md: ShardMedium + Send,
    S: TraceSink<P::Msg> + Send,
{
    /// [`run_until`](Self::run_until) with each round's shard windows on
    /// scoped OS threads — bit-identical to the serial run (windows touch
    /// only shard-owned state; the merge is the same barrier drain), just
    /// faster on multi-core hosts.
    pub fn run_until_parallel(&mut self, t: SimTime) {
        self.run_windows_parallel(t);
        if t > self.clock {
            self.clock = t;
        }
    }

    fn run_windows_parallel(&mut self, t: SimTime) {
        // Mirrors run_windows; kept separate because the scoped-thread
        // round needs the Send bounds of this impl block.
        let k = self.shards.len();
        loop {
            self.availability();
            let min_next = self.scratch_next.iter().copied().min().unwrap_or(INF);
            let ctrl_next = self.ctrl.peek().map(|e| e.at).unwrap_or(INF);
            if min_next > t && ctrl_next > t {
                return;
            }
            if ctrl_next <= t && min_next > ctrl_next {
                let e = self.ctrl.pop().expect("peeked");
                self.clock = e.at;
                self.exec_ctrl(e);
                continue;
            }
            let mut bounds = vec![None; k];
            for (i, b) in bounds.iter_mut().enumerate() {
                let mut horizon = INF;
                for j in 0..k {
                    if j == i || self.scratch_avail[j] == INF {
                        continue;
                    }
                    let h = SimTime(
                        self.scratch_avail[j]
                            .0
                            .saturating_add(self.lookahead.bound(j, i).0),
                    );
                    horizon = horizon.min(h);
                }
                let mut bb = t.min(SimTime(ctrl_next.0));
                if horizon != INF {
                    bb = bb.min(SimTime(horizon.0 - 1));
                }
                *b = (self.scratch_next[i] <= bb).then_some(bb);
            }
            let map = self.map;
            std::thread::scope(|sc| {
                for (i, (shard, b)) in self.shards.iter_mut().zip(&bounds).enumerate() {
                    if let Some(b) = *b {
                        sc.spawn(move || shard.run_window(&map, i, b));
                    }
                }
            });
            self.drain_outboxes();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::PerfectMedium;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u64),
        Pong(u64),
    }

    impl Payload for Msg {
        fn size_bytes(&self) -> usize {
            9
        }
    }

    struct Node {
        peer: ProcId,
        initiator: bool,
        pings_seen: u64,
        pongs_seen: u64,
        ticks: u64,
        broken_links: Vec<ProcId>,
    }

    impl Node {
        fn new(peer: ProcId, initiator: bool) -> Self {
            Node {
                peer,
                initiator,
                pings_seen: 0,
                pongs_seen: 0,
                ticks: 0,
                broken_links: Vec::new(),
            }
        }
    }

    impl Process for Node {
        type Msg = Msg;
        type Timer = ();

        fn on_boot(&mut self, ctx: &mut Ctx<'_, Msg, ()>) {
            if self.initiator {
                ctx.send(self.peer, Msg::Ping(0));
                ctx.set_timer(SimDuration::from_secs(1), ());
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg, ()>, from: ProcId, msg: Msg) {
            match msg {
                Msg::Ping(n) => {
                    self.pings_seen += 1;
                    ctx.send(from, Msg::Pong(n));
                }
                Msg::Pong(_) => self.pongs_seen += 1,
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg, ()>, _tag: ()) {
            self.ticks += 1;
            if self.ticks < 3 {
                ctx.set_timer(SimDuration::from_secs(1), ());
            }
        }

        fn on_link_broken(&mut self, _ctx: &mut Ctx<'_, Msg, ()>, peer: ProcId) {
            self.broken_links.push(peer);
        }
    }

    fn world(seed: u64, shards: usize, n: u32) -> ShardedSim<Node, PerfectMedium> {
        let mut sim = ShardedSim::new(
            seed,
            shards,
            PerfectMedium::new(SimDuration::from_millis(50)),
        );
        for i in 0..n {
            sim.add_process(Node::new((i + 1) % n, i % 2 == 0));
        }
        sim
    }

    fn state_fingerprint(sim: &ShardedSim<Node, PerfectMedium>) -> Vec<(u64, u64, u64, bool)> {
        (0..sim.process_count() as ProcId)
            .map(|p| {
                sim.proc(p)
                    .map(|n| (n.pings_seen, n.pongs_seen, n.ticks, true))
                    .unwrap_or((0, 0, 0, false))
            })
            .collect()
    }

    #[test]
    fn ping_pong_round_trip_across_shard_counts() {
        for shards in [1, 2, 3, 8] {
            let mut sim = world(1, shards, 6);
            sim.run_for(SimDuration::from_secs(10));
            assert_eq!(sim.proc(1).unwrap().pings_seen, 1, "shards={shards}");
            assert_eq!(sim.proc(0).unwrap().ticks, 3, "shards={shards}");
        }
    }

    #[test]
    fn final_state_identical_for_every_shard_count() {
        let mut reference = world(7, 1, 10);
        reference.run_for(SimDuration::from_secs(20));
        let want = state_fingerprint(&reference);
        for shards in [2, 3, 4, 8] {
            let mut sim = world(7, shards, 10);
            sim.run_for(SimDuration::from_secs(20));
            assert_eq!(state_fingerprint(&sim), want, "shards={shards}");
            assert_eq!(
                sim.events_executed(),
                reference.events_executed(),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn stepping_matches_windowed_execution() {
        let mut windowed = world(3, 4, 10);
        windowed.run_for(SimDuration::from_secs(10));
        let mut stepped = world(3, 4, 10);
        let t = SimTime::ZERO + SimDuration::from_secs(10);
        while stepped.step_until(t) {}
        // Stepping leaves the clock at the last event; align it.
        assert_eq!(
            state_fingerprint(&stepped),
            state_fingerprint(&windowed),
            "window vs step divergence"
        );
        assert_eq!(stepped.events_executed(), windowed.events_executed());
    }

    #[test]
    fn parallel_rounds_match_serial() {
        let mut serial = world(11, 4, 12);
        serial.run_for(SimDuration::from_secs(15));
        let mut parallel = world(11, 4, 12);
        parallel.run_until_parallel(SimTime::ZERO + SimDuration::from_secs(15));
        assert_eq!(state_fingerprint(&parallel), state_fingerprint(&serial));
        assert_eq!(parallel.events_executed(), serial.events_executed());
    }

    #[test]
    fn crash_drops_in_flight_and_breaks_future_sends() {
        for shards in [1, 3] {
            let mut sim = world(2, shards, 2);
            sim.crash(1);
            sim.run_for(SimDuration::from_secs(60));
            assert_eq!(sim.proc(0).unwrap().pongs_seen, 0, "shards={shards}");
            assert!(!sim.is_up(1));
            sim.with_proc(0, |_n, ctx| ctx.send(1, Msg::Ping(9)));
            sim.run_for(SimDuration::from_secs(60));
            assert_eq!(
                sim.proc(0).unwrap().broken_links,
                vec![1],
                "shards={shards}"
            );
        }
    }

    #[test]
    fn scheduled_crash_and_restart_fire_in_order() {
        for shards in [1, 2, 8] {
            let mut sim = world(4, shards, 4);
            sim.schedule_crash(SimTime::ZERO + SimDuration::from_secs(2), 1);
            sim.schedule_restart(
                SimTime::ZERO + SimDuration::from_secs(4),
                1,
                Node::new(2, false),
            );
            sim.run_for(SimDuration::from_secs(3));
            assert!(!sim.is_up(1), "shards={shards}");
            sim.run_for(SimDuration::from_secs(3));
            assert!(sim.is_up(1), "shards={shards}");
            assert_eq!(sim.proc(1).unwrap().pings_seen, 0, "fresh state");
        }
    }

    #[test]
    fn scheduled_restart_of_live_process_is_dropped() {
        let mut sim = world(5, 3, 4);
        sim.schedule_restart(
            SimTime::ZERO + SimDuration::from_secs(1),
            0,
            Node::new(1, true),
        );
        sim.run_for(SimDuration::from_secs(5));
        // A reboot would have re-pinged; proc 1 must have seen exactly one.
        assert_eq!(sim.proc(1).unwrap().pings_seen, 1);
    }

    #[test]
    fn scheduled_call_runs_between_equal_time_events() {
        for shards in [1, 4] {
            let mut sim = world(6, shards, 4);
            sim.schedule_call(SimTime::ZERO + SimDuration::from_secs(2), |s| {
                s.with_proc(0, |_n, ctx| ctx.send(1, Msg::Ping(99)));
            });
            sim.run_for(SimDuration::from_secs(3));
            assert_eq!(sim.proc(1).unwrap().pings_seen, 2, "shards={shards}");
        }
    }

    #[test]
    fn run_until_idle_drains_and_reports() {
        let mut sim = world(9, 2, 2);
        assert!(sim.run_until_idle(SimTime::ZERO + SimDuration::from_secs(60)));
        assert_eq!(sim.pending_events(), 0);
        assert_eq!(sim.proc(0).unwrap().ticks, 3);
    }

    #[test]
    fn profiled_run_accounts_every_round() {
        let mut sim = world(10, 4, 8);
        let p = sim.run_until_profiled(SimTime::ZERO + SimDuration::from_secs(10));
        assert!(p.rounds > 0);
        assert!(p.wall_s >= 0.0 && p.critical_path_s >= 0.0);
        assert!(p.critical_path_s <= p.wall_s + 1e-9);
        let mut check = world(10, 4, 8);
        check.run_for(SimDuration::from_secs(10));
        assert_eq!(sim.events_executed(), check.events_executed());
    }

    #[test]
    fn cross_shard_ratio_reported() {
        let mut sim = world(12, 4, 8);
        sim.run_for(SimDuration::from_secs(5));
        let (local, cross) = sim.send_stats();
        assert!(local + cross > 0);
        // Ring neighbours under round-robin assignment are always on
        // another shard when k > 1.
        assert!(cross > 0);
    }
}
