//! Per-process timer tables with O(1) arm/cancel and lazy heap removal.
//!
//! The kernel's event heap never deletes entries; a fired heap entry is
//! checked against the table's generation counter, so cancelled or
//! superseded timers are ignored when they surface. This is the standard
//! timer-wheel trade: tiny constant cost at fire time instead of heap
//! surgery at cancel time.

use crate::process::ProcId;

/// Handle identifying one armed timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle {
    pub(crate) proc: ProcId,
    pub(crate) slot: u32,
    pub(crate) gen: u64,
}

impl TimerHandle {
    /// Fabricates a handle outside any kernel — for test doubles of
    /// timer-returning interfaces. A synthetic handle never matches a real
    /// kernel timer.
    pub fn synthetic(proc: ProcId, slot: u32, gen: u64) -> Self {
        TimerHandle { proc, slot, gen }
    }
}

struct Slot<T> {
    gen: u64,
    tag: Option<T>,
}

/// Timer storage for one process.
pub struct TimerTable<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for TimerTable<T> {
    fn default() -> Self {
        TimerTable {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }
}

impl<T> TimerTable<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        TimerTable::default()
    }

    /// Number of currently armed timers.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Arms a timer, returning its handle.
    pub(crate) fn arm(&mut self, proc: ProcId, tag: T) -> TimerHandle {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            s.gen += 1;
            s.tag = Some(tag);
            TimerHandle {
                proc,
                slot,
                gen: s.gen,
            }
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 1,
                tag: Some(tag),
            });
            TimerHandle { proc, slot, gen: 1 }
        }
    }

    /// Cancels `h` if still armed.
    pub(crate) fn cancel(&mut self, h: TimerHandle) {
        if let Some(s) = self.slots.get_mut(h.slot as usize) {
            if s.gen == h.gen && s.tag.is_some() {
                s.tag = None;
                self.free.push(h.slot);
                self.live -= 1;
            }
        }
    }

    /// Consumes the timer if `h` is still current, returning its tag.
    pub(crate) fn fire(&mut self, h: TimerHandle) -> Option<T> {
        let s = self.slots.get_mut(h.slot as usize)?;
        if s.gen != h.gen {
            return None;
        }
        let tag = s.tag.take();
        if tag.is_some() {
            self.free.push(h.slot);
            self.live -= 1;
        }
        tag
    }

    /// Drops every armed timer (process crash).
    pub(crate) fn clear(&mut self) {
        for (i, s) in self.slots.iter_mut().enumerate() {
            if s.tag.take().is_some() {
                self.free.push(i as u32);
            }
            // Bump the generation so stale heap entries can never match.
            s.gen += 1;
        }
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_fire_consumes() {
        let mut t: TimerTable<&str> = TimerTable::new();
        let h = t.arm(0, "a");
        assert_eq!(t.live(), 1);
        assert_eq!(t.fire(h), Some("a"));
        assert_eq!(t.live(), 0);
        assert_eq!(t.fire(h), None, "second fire is stale");
    }

    #[test]
    fn cancel_prevents_fire() {
        let mut t: TimerTable<u32> = TimerTable::new();
        let h = t.arm(0, 7);
        t.cancel(h);
        assert_eq!(t.fire(h), None);
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn slot_reuse_does_not_resurrect_old_handles() {
        let mut t: TimerTable<u32> = TimerTable::new();
        let h1 = t.arm(0, 1);
        t.cancel(h1);
        let h2 = t.arm(0, 2);
        assert_eq!(h1.slot, h2.slot, "slot should be reused");
        assert_eq!(t.fire(h1), None, "old generation must not fire");
        assert_eq!(t.fire(h2), Some(2));
    }

    #[test]
    fn clear_drops_everything_and_invalidates() {
        let mut t: TimerTable<u32> = TimerTable::new();
        let hs: Vec<_> = (0..10).map(|i| t.arm(0, i)).collect();
        t.clear();
        assert_eq!(t.live(), 0);
        for h in hs {
            assert_eq!(t.fire(h), None);
        }
    }

    #[test]
    fn double_cancel_is_harmless() {
        let mut t: TimerTable<u32> = TimerTable::new();
        let h = t.arm(0, 1);
        t.cancel(h);
        t.cancel(h);
        assert_eq!(t.live(), 0);
        // Free list must not contain the slot twice.
        let h2 = t.arm(0, 2);
        let h3 = t.arm(0, 3);
        assert_ne!(h2.slot, h3.slot);
    }
}
