//! Hierarchical timing wheel for kernel timers.
//!
//! The dominant event class in every FUSE experiment is the periodic
//! liveness-ping timer: thousands of nodes re-arm one timer per ping period.
//! A binary heap charges O(log n) sift per arm and per expiry; this wheel
//! makes both amortized O(1) (cancellation is already O(1) via the
//! generation check in [`crate::timer::TimerTable`], so cancelled entries
//! are simply ignored when they surface).
//!
//! # Structure
//!
//! Time is bucketed into *ticks* of 2^`TICK_SHIFT` ns (≈1 ms). Eleven
//! levels of 64 slots each cover the entire 64-bit tick space (66 bits of
//! span), so there is no overflow path to reason about. An entry's level is
//! the highest 6-bit digit in which its tick differs from the wheel cursor —
//! the layout used by kernel timer wheels and tokio's driver. Each level
//! keeps a 64-bit occupancy bitmap, so finding the next non-empty slot is a
//! shift plus `trailing_zeros` rather than a scan.
//!
//! # Exactness
//!
//! Slots are coarser than timestamps, so expiring a slot *cascades* its
//! entries down to finer levels; entries whose tick has been reached move
//! into a small `due` heap ordered by the exact `(time, seq)` pair. The
//! kernel merges that heap with its message queue, which preserves the
//! kernel's determinism contract: earliest first, FIFO among equal
//! timestamps, regardless of which structure an event came from. `prepare`
//! maintains the invariant that makes the merge sound: whenever [`peek`]
//! returns an entry, no entry anywhere in the wheel precedes it.
//!
//! [`peek`]: TimingWheel::peek

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// log2 of the tick length in nanoseconds (2^20 ns ≈ 1.05 ms).
const TICK_SHIFT: u32 = 20;
/// log2 of slots per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels; 11 × 6 bits ≥ 64, so every u64 tick distance has a level.
const LEVELS: usize = 11;

fn tick_of(at: SimTime) -> u64 {
    at.nanos() >> TICK_SHIFT
}

/// One timer-wheel entry: an exact deadline, the global kernel sequence
/// number (FIFO tie-break), and an opaque token the kernel resolves on
/// expiry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WheelEntry<T> {
    /// Exact deadline.
    pub at: SimTime,
    /// Global kernel sequence number.
    pub seq: u64,
    /// Kernel token (a timer handle).
    pub token: T,
}

/// Min-heap adapter: earliest `(at, seq)` first.
struct DueEntry<T>(WheelEntry<T>);

impl<T> PartialEq for DueEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.0.at, self.0.seq) == (other.0.at, other.0.seq)
    }
}

impl<T> Eq for DueEntry<T> {}

impl<T> PartialOrd for DueEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for DueEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for BinaryHeap's max-at-top.
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

struct Level<T> {
    occupied: u64,
    slots: [Vec<WheelEntry<T>>; SLOTS],
}

impl<T> Level<T> {
    fn new() -> Self {
        Level {
            occupied: 0,
            slots: std::array::from_fn(|_| Vec::new()),
        }
    }

    /// Next occupied slot and its deadline (slot-start tick), relative to
    /// `cursor`. Slots at indices below the cursor's belong to the next
    /// rotation of this level.
    fn next_expiration(&self, level: usize, cursor: u64) -> Option<(usize, u64)> {
        if self.occupied == 0 {
            return None;
        }
        let shift = LEVEL_BITS * level as u32;
        let slot_range = 1u64 << shift;
        // At the top level the range would be 2^66; wrapping to 0 makes the
        // mask below all-ones, which is exactly right (one rotation covers
        // everything, so there is no "next rotation").
        let level_range = slot_range.wrapping_shl(LEVEL_BITS);
        let cur_slot = ((cursor >> shift) & (SLOTS as u64 - 1)) as usize;
        let base = cursor & !level_range.wrapping_sub(1);
        let ahead = self.occupied >> cur_slot;
        if ahead != 0 {
            let idx = cur_slot + ahead.trailing_zeros() as usize;
            Some((idx, base + idx as u64 * slot_range))
        } else {
            // A slot behind the cursor's index belongs to the next rotation
            // of this level (unreachable at the top level, where the
            // invariant `tick > cursor` keeps every occupied slot ahead).
            debug_assert!(level_range != 0, "top level cannot wrap");
            let idx = self.occupied.trailing_zeros() as usize;
            Some((
                idx,
                base.wrapping_add(level_range) + idx as u64 * slot_range,
            ))
        }
    }
}

/// Hierarchical timing wheel; see the module docs.
pub struct TimingWheel<T> {
    levels: Vec<Level<T>>,
    /// Current position in ticks. Invariant: every entry stored in a level
    /// slot has `tick > cursor`; entries at or before the cursor live in
    /// `due`.
    cursor: u64,
    due: BinaryHeap<DueEntry<T>>,
    len: usize,
    /// Cached result of [`Self::next_expiring_slot`], kept current by
    /// inserts (monotone min) and invalidated by cascades, so the common
    /// peek/pop path does not rescan all levels.
    next_slot: Option<(usize, usize, u64)>,
    scan_needed: bool,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        TimingWheel::new()
    }
}

impl<T> TimingWheel<T> {
    /// Empty wheel positioned at time zero.
    pub fn new() -> Self {
        TimingWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            cursor: 0,
            due: BinaryHeap::new(),
            len: 0,
            next_slot: None,
            scan_needed: false,
        }
    }

    /// Number of entries (armed, including lazily-cancelled ones).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry. O(1).
    pub fn insert(&mut self, entry: WheelEntry<T>) {
        self.len += 1;
        let tick = tick_of(entry.at);
        if tick <= self.cursor {
            // Already inside the window the cursor has passed (e.g. a
            // zero-delay timer armed from a handler): goes straight to the
            // exact-order heap.
            self.due.push(DueEntry(entry));
        } else {
            self.insert_into_slot(entry, tick);
        }
    }

    fn insert_into_slot(&mut self, entry: WheelEntry<T>, tick: u64) {
        let level = level_for(self.cursor, tick);
        let shift = LEVEL_BITS * level as u32;
        let idx = ((tick >> shift) & (SLOTS as u64 - 1)) as usize;
        self.levels[level].slots[idx].push(entry);
        self.levels[level].occupied |= 1 << idx;
        if !self.scan_needed {
            // A freshly placed slot is never behind the cursor's index at
            // its level, so its deadline is simply the slot-start tick;
            // fold it into the cached minimum.
            let deadline = tick & !((1u64 << shift) - 1);
            if self.next_slot.is_none_or(|(_, _, d)| deadline < d) {
                self.next_slot = Some((level, idx, deadline));
            }
        }
    }

    /// Earliest entry's `(at, seq)`, or `None` if empty. Amortized O(1):
    /// cascade work done here is charged to the entries it relocates, each
    /// of which only ever moves to a lower level.
    pub fn peek(&mut self) -> Option<(SimTime, u64)> {
        self.prepare();
        self.due.peek().map(|e| (e.0.at, e.0.seq))
    }

    /// Removes and returns the earliest entry.
    pub fn pop(&mut self) -> Option<WheelEntry<T>> {
        self.prepare();
        let e = self.due.pop()?;
        self.len -= 1;
        Some(e.0)
    }

    /// Restores the invariant that `due` holds every entry that could
    /// precede any slot entry: expires slots (cascading) until the next
    /// slot deadline lies strictly beyond the exact tick at the head of
    /// `due`.
    fn prepare(&mut self) {
        if self.len == 0 {
            return;
        }
        loop {
            if self.scan_needed {
                self.next_slot = self.next_expiring_slot();
                self.scan_needed = false;
            }
            let Some((level, idx, deadline)) = self.next_slot else {
                return;
            };
            if let Some(due_head) = self.due.peek() {
                if deadline > tick_of(due_head.0.at) {
                    // Every slot entry is at a strictly later tick than the
                    // due head; the head is globally earliest.
                    return;
                }
            }
            self.cursor = self.cursor.max(deadline);
            // Invalidate before cascading: the emptied slot may have been
            // the cached minimum, and re-inserts during the cascade must
            // not fold into a stale cache.
            self.scan_needed = true;
            self.cascade(level, idx);
        }
    }

    /// Minimum slot-start deadline over all levels.
    fn next_expiring_slot(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for (level, l) in self.levels.iter().enumerate() {
            if let Some((idx, deadline)) = l.next_expiration(level, self.cursor) {
                if best.is_none_or(|(_, _, d)| deadline < d) {
                    best = Some((level, idx, deadline));
                }
            }
        }
        best
    }

    /// Empties one slot, re-inserting its entries relative to the (already
    /// advanced) cursor: reached ticks go to `due`, the rest drop to finer
    /// levels.
    fn cascade(&mut self, level: usize, idx: usize) {
        self.levels[level].occupied &= !(1 << idx);
        let mut entries = std::mem::take(&mut self.levels[level].slots[idx]);
        for entry in entries.drain(..) {
            let tick = tick_of(entry.at);
            if tick <= self.cursor {
                self.due.push(DueEntry(entry));
            } else {
                debug_assert!(
                    level_for(self.cursor, tick) < level,
                    "cascade must strictly lower an entry's level"
                );
                self.insert_into_slot(entry, tick);
            }
        }
        // Hand the emptied Vec back to its slot so its capacity is reused:
        // steady-state operation allocates nothing.
        self.levels[level].slots[idx] = entries;
    }
}

/// Level containing `tick` as seen from `cursor`: index of the highest
/// 6-bit digit in which they differ. Requires `tick > cursor`; the result
/// is always `< LEVELS` because 11 levels cover 66 bits.
fn level_for(cursor: u64, tick: u64) -> usize {
    debug_assert!(tick > cursor);
    let highest_bit = 63 - (cursor ^ tick).leading_zeros();
    (highest_bit / LEVEL_BITS) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn entry(at_nanos: u64, seq: u64) -> WheelEntry<u64> {
        WheelEntry {
            at: SimTime(at_nanos),
            seq,
            token: seq,
        }
    }

    fn drain(w: &mut TimingWheel<u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = w.pop() {
            out.push((e.at.nanos(), e.seq));
        }
        out
    }

    #[test]
    fn orders_across_levels() {
        let mut w = TimingWheel::new();
        // Nanosecond deadlines spanning level 0 through far horizons.
        let nanos = [
            1u64,
            1 << 21,
            (1 << 26) + 5,
            (1 << 32) + 7,
            (1 << 38) + 11,
            3,
            1 << 30,
            (1 << 62) + 13,
        ];
        for (i, &n) in nanos.iter().enumerate() {
            w.insert(entry(n, i as u64));
        }
        let mut expect: Vec<(u64, u64)> = nanos
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u64))
            .collect();
        expect.sort_unstable();
        assert_eq!(drain(&mut w), expect);
    }

    #[test]
    fn fifo_among_equal_deadlines() {
        let mut w = TimingWheel::new();
        for seq in 0..100u64 {
            w.insert(entry(5_000_000, seq));
        }
        let popped = drain(&mut w);
        assert_eq!(
            popped,
            (0..100).map(|s| (5_000_000, s)).collect::<Vec<_>>(),
            "equal timestamps must come out in insertion-sequence order"
        );
    }

    #[test]
    fn same_tick_different_nanos_order_exactly() {
        // Deadlines inside one ~1 ms tick must still order by exact time,
        // and insertion order must not matter.
        let mut w = TimingWheel::new();
        w.insert(entry(500, 0));
        w.insert(entry(100, 1));
        w.insert(entry(300, 2));
        assert_eq!(drain(&mut w), vec![(100, 1), (300, 2), (500, 0)]);
    }

    #[test]
    fn late_insert_at_passed_tick_goes_due() {
        let mut w = TimingWheel::new();
        w.insert(entry(10_000_000, 0));
        assert_eq!(w.pop().map(|e| e.seq), Some(0));
        // Cursor has advanced past tick 0; a new entry behind it must still
        // surface (and before later ones).
        w.insert(entry(1_000, 1));
        w.insert(entry(20_000_000, 2));
        assert_eq!(drain(&mut w), vec![(1_000, 1), (20_000_000, 2)]);
    }

    #[test]
    fn far_horizon_does_not_shadow_near_entries() {
        // A year-scale deadline parked at a high level must not delay or
        // reorder near-term entries inserted afterwards.
        let mut w = TimingWheel::new();
        let year = SimDuration::from_secs(365 * 24 * 3600).nanos();
        w.insert(entry(year, 0));
        w.insert(entry(42, 1));
        w.insert(entry(year + 5, 2));
        w.insert(entry(1_000_000, 3));
        assert_eq!(
            drain(&mut w),
            vec![(42, 1), (1_000_000, 3), (year, 0), (year + 5, 2)]
        );
    }

    #[test]
    fn interleaved_insert_pop_preserves_order() {
        let mut w = TimingWheel::new();
        let ms = SimDuration::from_millis(1).nanos();
        w.insert(entry(7 * ms, 0));
        w.insert(entry(3 * ms, 1));
        assert_eq!(w.pop().map(|e| e.at.nanos()), Some(3 * ms));
        w.insert(entry(5 * ms, 2));
        w.insert(entry(4 * ms, 3));
        assert_eq!(drain(&mut w), vec![(4 * ms, 3), (5 * ms, 2), (7 * ms, 0)]);
        assert!(w.is_empty());
    }

    #[test]
    fn equal_deadline_slots_across_levels_merge_exactly() {
        // Regression shape: entries at the same boundary tick reachable
        // through different levels' slots. All entries at the boundary tick
        // must surface before any later ones, in seq order.
        let mut w = TimingWheel::new();
        let tick64 = 64u64 << TICK_SHIFT; // level-1 boundary
        w.insert(entry(tick64 + 100, 0)); // level 1 as seen from cursor 0
        w.insert(entry(5, 1)); // forces the cursor through level 0 first
        w.insert(entry(tick64 + 50, 2));
        assert_eq!(w.pop().map(|e| e.seq), Some(1));
        w.insert(entry(tick64 + 70, 3));
        assert_eq!(
            drain(&mut w),
            vec![(tick64 + 50, 2), (tick64 + 70, 3), (tick64 + 100, 0)]
        );
    }

    #[test]
    fn randomized_against_sorted_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut w = TimingWheel::new();
        let mut reference: Vec<(u64, u64)> = Vec::new();
        let mut seq = 0u64;
        let mut popped = Vec::new();
        let mut floor = 0u64; // pops are monotone; inserts must not precede
        for _ in 0..5_000 {
            if rng.gen_bool(0.6) || w.is_empty() {
                // Mixed horizons: same tick, nearby ticks, far future.
                let at = floor
                    + match rng.gen_range(0u32..5) {
                        0 => rng.gen_range(0..1_000),
                        1 => rng.gen_range(0..10_000_000),
                        2 => rng.gen_range(0..10_000_000_000),
                        3 => rng.gen_range(0..2_000_000_000_000),
                        _ => rng.gen_range(0..(1u64 << 48)),
                    };
                w.insert(entry(at, seq));
                reference.push((at, seq));
                seq += 1;
            } else {
                let e = w.pop().expect("non-empty");
                floor = e.at.nanos();
                popped.push((e.at.nanos(), e.seq));
            }
        }
        popped.extend(drain(&mut w));
        reference.sort_unstable();
        assert_eq!(popped, reference);
    }
}
