//! The original single-heap scheduler, preserved as a reference
//! implementation.
//!
//! Before the timing-wheel rewrite, every event — deliveries (payload
//! inline), timers, and boxed scripted calls — went through one
//! `BinaryHeap`, paying an O(log n) sift per push/pop, moving whole
//! `P::Msg` payloads during sifts, and allocating a box per scripted call.
//! [`BaselineSim`] keeps that scheduler verbatim, for two purposes:
//!
//! * **Differential testing** — `tests/kernel_equivalence.rs` drives
//!   identical scripts through [`BaselineSim`] and [`crate::Sim`] and
//!   requires bit-identical traces; any divergence in the wheel's merge
//!   logic fails loudly.
//! * **Benchmarking** — `sim_event_throughput` in `fuse_bench` measures
//!   both kernels on the paper's dominant workload (1k processes arming
//!   periodic liveness pings) so the speedup is a number, not a claim; the
//!   ratio lands in `BENCH_PR1.json`.
//!
//! The public API mirrors [`crate::Sim`]'s subset that scripts use. New
//! experiments should always use [`crate::Sim`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::medium::{Medium, Verdict};
use crate::process::{Action, Ctx, Payload, ProcId, Process};
use crate::time::{SimDuration, SimTime};
use crate::timer::{TimerHandle, TimerTable};
use crate::trace::{NullTrace, TraceSink};

enum Event<P: Process, Md, S> {
    Deliver {
        from: ProcId,
        to: ProcId,
        msg: P::Msg,
    },
    Timer(TimerHandle),
    LinkBroken {
        proc: ProcId,
        peer: ProcId,
    },
    Crash(ProcId),
    Restart(ProcId, Box<P>),
    Call(Box<dyn FnOnce(&mut BaselineSim<P, Md, S>)>),
}

struct HeapEntry<P: Process, Md, S> {
    at: SimTime,
    seq: u64,
    ev: Event<P, Md, S>,
}

impl<P: Process, Md, S> PartialEq for HeapEntry<P, Md, S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<P: Process, Md, S> Eq for HeapEntry<P, Md, S> {}

impl<P: Process, Md, S> PartialOrd for HeapEntry<P, Md, S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P: Process, Md, S> Ord for HeapEntry<P, Md, S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first, and
        // FIFO (smallest sequence number) among equal timestamps.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct ProcSlot<P: Process> {
    proc: Option<P>,
    timers: TimerTable<P::Timer>,
}

/// Pre-rewrite simulation kernel; see the module docs.
pub struct BaselineSim<P: Process, Md, S = NullTrace> {
    clock: SimTime,
    seq: u64,
    heap: BinaryHeap<HeapEntry<P, Md, S>>,
    procs: Vec<ProcSlot<P>>,
    rng: StdRng,
    medium: Md,
    trace: S,
    scratch_actions: Vec<Action<P::Msg>>,
    scratch_timers: Vec<(TimerHandle, SimTime)>,
    events_executed: u64,
}

impl<P: Process, Md: Medium> BaselineSim<P, Md, NullTrace> {
    /// Creates a baseline simulation with the default (no-op) trace sink.
    pub fn new(seed: u64, medium: Md) -> Self {
        BaselineSim::with_trace(seed, medium, NullTrace)
    }
}

impl<P: Process, Md: Medium, S: TraceSink<P::Msg>> BaselineSim<P, Md, S> {
    /// Creates a baseline simulation observing events through `trace`.
    pub fn with_trace(seed: u64, medium: Md, trace: S) -> Self {
        BaselineSim {
            clock: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            procs: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            medium,
            trace,
            scratch_actions: Vec::new(),
            scratch_timers: Vec::new(),
            events_executed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Total events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.events_executed
    }

    /// Events still queued.
    pub fn pending_events(&self) -> usize {
        self.heap.len()
    }

    /// Whether process `id` is currently alive.
    pub fn is_up(&self, id: ProcId) -> bool {
        self.procs
            .get(id as usize)
            .map(|s| s.proc.is_some())
            .unwrap_or(false)
    }

    /// Immutable view of a live process's state.
    pub fn proc(&self, id: ProcId) -> Option<&P> {
        self.procs.get(id as usize).and_then(|s| s.proc.as_ref())
    }

    /// The medium, for fault injection.
    pub fn medium_mut(&mut self) -> &mut Md {
        &mut self.medium
    }

    /// The trace sink, for metrics extraction.
    pub fn trace_mut(&mut self) -> &mut S {
        &mut self.trace
    }

    /// Immutable trace access.
    pub fn trace(&self) -> &S {
        &self.trace
    }

    /// Adds a process, boots it, and returns its id.
    pub fn add_process(&mut self, p: P) -> ProcId {
        let id = self.procs.len() as ProcId;
        self.procs.push(ProcSlot {
            proc: Some(p),
            timers: TimerTable::new(),
        });
        self.medium.node_up(id);
        self.trace.on_lifecycle(self.clock, id, true);
        self.dispatch(id, |p, ctx| p.on_boot(ctx));
        id
    }

    /// Crashes process `id`: state dropped, timers cleared, medium informed.
    pub fn crash(&mut self, id: ProcId) {
        let slot = &mut self.procs[id as usize];
        if slot.proc.take().is_none() {
            return;
        }
        slot.timers.clear();
        self.medium.node_down(id);
        self.trace.on_lifecycle(self.clock, id, false);
    }

    /// Restarts a crashed process with fresh state `p` (same id).
    pub fn restart(&mut self, id: ProcId, p: P) {
        let slot = &mut self.procs[id as usize];
        assert!(slot.proc.is_none(), "restart of a live process");
        slot.proc = Some(p);
        self.medium.node_up(id);
        self.trace.on_lifecycle(self.clock, id, true);
        self.dispatch(id, |p, ctx| p.on_boot(ctx));
    }

    /// Runs `f` against live process `id`; `None` if it is down.
    pub fn with_proc<R>(
        &mut self,
        id: ProcId,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg, P::Timer>) -> R,
    ) -> Option<R> {
        let mut out = None;
        let ran = self.dispatch_inner(id, |p, ctx| {
            out = Some(f(p, ctx));
        });
        if ran {
            out
        } else {
            None
        }
    }

    /// Schedules `f(&mut BaselineSim)` to run at absolute time `at`.
    pub fn schedule_call(&mut self, at: SimTime, f: impl FnOnce(&mut Self) + 'static) {
        assert!(at >= self.clock, "cannot schedule in the past");
        self.push(at, Event::Call(Box::new(f)));
    }

    /// Schedules a crash of `id` at `at` (mirrors [`crate::Sim::schedule_crash`]
    /// for the differential tests; this kernel still boxes per restart).
    pub fn schedule_crash(&mut self, at: SimTime, id: ProcId) {
        assert!(at >= self.clock, "cannot schedule in the past");
        self.push(at, Event::Crash(id));
    }

    /// Schedules a restart of `id` with `state` at `at`; dropped if the
    /// process is still up at fire time (mirrors
    /// [`crate::Sim::schedule_restart`]).
    pub fn schedule_restart(&mut self, at: SimTime, id: ProcId, state: P) {
        assert!(at >= self.clock, "cannot schedule in the past");
        self.push(at, Event::Restart(id, Box::new(state)));
    }

    /// Executes a single event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(entry) = self.heap.pop() else {
            return false;
        };
        debug_assert!(entry.at >= self.clock, "time went backwards");
        self.clock = entry.at;
        self.events_executed += 1;
        match entry.ev {
            Event::Deliver { from, to, msg } => {
                if self.is_up(to) {
                    self.trace.on_deliver(self.clock, from, to, &msg);
                    self.dispatch(to, |p, ctx| p.on_message(ctx, from, msg));
                }
            }
            Event::Timer(h) => {
                let slot = &mut self.procs[h.proc as usize];
                if slot.proc.is_none() {
                    return true;
                }
                if let Some(tag) = slot.timers.fire(h) {
                    self.dispatch(h.proc, |p, ctx| p.on_timer(ctx, tag));
                }
            }
            Event::LinkBroken { proc, peer } => {
                self.dispatch(proc, |p, ctx| p.on_link_broken(ctx, peer));
            }
            Event::Crash(id) => self.crash(id),
            Event::Restart(id, state) => {
                if !self.is_up(id) {
                    self.restart(id, *state);
                }
            }
            Event::Call(f) => f(self),
        }
        true
    }

    /// Runs all events up to and including time `t`, then sets the clock to
    /// `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(entry) = self.heap.peek() {
            if entry.at > t {
                break;
            }
            self.step();
        }
        if t > self.clock {
            self.clock = t;
        }
    }

    /// Runs for a span of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.clock + d;
        self.run_until(t);
    }

    fn push(&mut self, at: SimTime, ev: Event<P, Md, S>) {
        self.seq += 1;
        self.heap.push(HeapEntry {
            at,
            seq: self.seq,
            ev,
        });
    }

    fn dispatch(&mut self, id: ProcId, f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg, P::Timer>)) {
        self.dispatch_inner(id, f);
    }

    fn dispatch_inner(
        &mut self,
        id: ProcId,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg, P::Timer>),
    ) -> bool {
        let mut actions = std::mem::take(&mut self.scratch_actions);
        let mut new_timers = std::mem::take(&mut self.scratch_timers);
        let ran = {
            let slot = match self.procs.get_mut(id as usize) {
                Some(s) => s,
                None => return false,
            };
            let ProcSlot { proc, timers } = slot;
            match proc.as_mut() {
                Some(p) => {
                    let mut ctx = Ctx {
                        now: self.clock,
                        self_id: id,
                        rng: &mut self.rng,
                        timers,
                        actions: &mut actions,
                        new_timers: &mut new_timers,
                    };
                    f(p, &mut ctx);
                    true
                }
                None => false,
            }
        };
        for (handle, at) in new_timers.drain(..) {
            self.push(at, Event::Timer(handle));
        }
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => self.perform_send(id, to, msg),
            }
        }
        self.scratch_actions = actions;
        self.scratch_timers = new_timers;
        ran
    }

    fn perform_send(&mut self, from: ProcId, to: ProcId, msg: P::Msg) {
        let size = msg.size_bytes();
        let class = msg.class();
        let verdict = self
            .medium
            .unicast(self.clock, &mut self.rng, from, to, size, class);
        self.trace
            .on_send(self.clock, from, to, &msg, size, &verdict);
        match verdict {
            Verdict::Deliver { at } => {
                debug_assert!(at >= self.clock);
                self.push(at, Event::Deliver { from, to, msg });
            }
            Verdict::Break { sender_notice } => {
                self.push(
                    sender_notice,
                    Event::LinkBroken {
                        proc: from,
                        peer: to,
                    },
                );
            }
            Verdict::Drop => {}
        }
    }
}
