//! Deterministic discrete-event simulation kernel.
//!
//! The paper evaluates FUSE with "a scalable discrete event simulator and a
//! live implementation with up to 400 virtual nodes", sharing one code base
//! "except for the base messaging layer" (§7). This crate is that shared
//! substrate: protocol code is written once against the [`Process`] trait and
//! runs unchanged under any [`Medium`] (the messaging layer), from a perfect
//! test network to the ModelNet-like wide-area emulation in `fuse-net`.
//!
//! Determinism contract: for a fixed seed and fixed call sequence, every run
//! produces the identical event trace. All randomness flows from one seeded
//! RNG; the event queue breaks time ties by insertion sequence; protocol
//! crates use `fuse-util`'s deterministic collections.

pub mod baseline;
pub mod kernel;
pub mod medium;
pub mod process;
pub mod shard;
pub mod sync;
pub mod time;
pub mod timer;
pub mod trace;
pub mod wheel;

pub use baseline::BaselineSim;
pub use kernel::Sim;
pub use medium::{Medium, PerfectMedium, ProcBitSet, Verdict};
pub use process::{Payload, ProcId, Process};
pub use shard::{RunProfile, ShardedSim};
pub use sync::{canon_key, Lookahead, ShardMap, ShardMedium, CTRL_ORIGIN};
pub use time::{SimDuration, SimTime};
pub use timer::{TimerHandle, TimerTable};
pub use trace::{NullTrace, TraceSink};
