//! Simulated time.
//!
//! Instants ([`SimTime`]) and durations ([`SimDuration`]) are nanoseconds in
//! `u64` — enough for ~584 years of simulated time, far beyond any
//! experiment. Keeping instants and durations as distinct types prevents the
//! classic bug of adding two absolute timestamps.

use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the epoch.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds since the epoch.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference, as a duration.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds from fractional seconds (rounds to nanoseconds).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "negative or non-finite duration");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Builds from fractional milliseconds (rounds to nanoseconds).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Nanosecond count.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scales by a float factor (e.g. jitter), rounding.
    pub fn mul_f64(self, k: f64) -> Self {
        assert!(k >= 0.0 && k.is_finite());
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("sim time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("sim time subtraction underflow"),
        )
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl std::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_secs(60);
        assert_eq!(t.nanos(), 60_000_000_000);
        let d = t - SimTime::ZERO;
        assert_eq!(d, SimDuration::from_secs(60));
        assert_eq!(t.since(SimTime::ZERO), d);
        // Saturating since: earlier.since(later) is zero, not a panic.
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
        assert_eq!(SimDuration::from_micros(2500).as_millis_f64(), 2.5);
        assert_eq!(SimDuration::from_millis_f64(2.5).nanos(), 2_500_000);
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.saturating_mul(3), SimDuration::from_secs(6));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::ZERO - (SimTime::ZERO + SimDuration::from_secs(1));
    }
}
