//! Simulated time.
//!
//! [`SimTime`]/[`SimDuration`] are aliases of the transport-neutral
//! [`fuse_util::time`] types: the protocol stack is sans-io and speaks
//! `fuse_util::Time` everywhere, and under this kernel the driver-defined
//! epoch is simply "simulation start". The aliases keep kernel-side code
//! and its callers reading naturally (`SimTime` really is simulated time
//! here) without introducing a second nanosecond type.

pub use fuse_util::time::{Duration as SimDuration, Time as SimTime};
