//! Synchronization machinery of the sharded kernel: shard assignment,
//! conservative lookahead bounds, and the canonical event keys that make a
//! sharded run's trace independent of the shard count.
//!
//! # Canonical keys
//!
//! The single-kernel [`Sim`](crate::Sim) orders same-instant events by a
//! global insertion sequence — cheap, but meaningless across shards: the
//! insertion interleaving depends on which shard ran first. The sharded
//! kernel instead keys every event by `(time, origin << 40 | counter)`,
//! where `origin` is the process that *scheduled* the event and `counter`
//! a per-origin monotone count. A process's handler executions are totally
//! ordered regardless of sharding, so its counter values — and therefore
//! every key — are identical for every shard count. Merging per-shard
//! streams by `(time, key)` yields one canonical global order; ties cannot
//! collide because origins are distinct by construction.
//!
//! Kernel-level control operations (scripted crashes, restarts, calls) use
//! the reserved [`CTRL_ORIGIN`], which is larger than any process id: at an
//! equal instant, control sorts *after* every process event, matching the
//! "run events through `t`, then mutate" semantics scripts already rely on.
//!
//! # Conservative lookahead
//!
//! Shard `i` may execute events up to (strictly below) its *horizon*
//! `min over j≠i of (next_j + B(j, i))`, where `next_j` is shard `j`'s
//! earliest pending event and `B(j, i)` a lower bound on the latency of any
//! `j → i` message ([`Lookahead`]). Any message shard `j` has not yet sent
//! is created at some `τ ≥ next_j` and arrives at `τ + latency ≥ next_j +
//! B(j, i)` — at or past the horizon — so everything below the horizon is
//! causally settled. Since `B > 0`, the globally-earliest shard always
//! clears its own next event and every round makes progress.

use crate::medium::Medium;
use crate::process::ProcId;
use crate::time::SimDuration;

/// Largest representable canonical origin (24 bits), reserved for
/// kernel-level control operations so they sort after every process event
/// at an equal instant.
pub const CTRL_ORIGIN: u32 = (1 << 24) - 1;

/// Number of low bits holding the per-origin counter in a canonical key.
pub const KEY_COUNTER_BITS: u32 = 40;

/// Packs `(origin, counter)` into a canonical event key. Same-instant
/// events order by origin first, then by per-origin schedule order.
#[inline]
pub fn canon_key(origin: ProcId, counter: u64) -> u64 {
    debug_assert!(origin <= CTRL_ORIGIN, "origin exceeds 24-bit key space");
    debug_assert!(
        counter < (1 << KEY_COUNTER_BITS),
        "per-origin counter overflow"
    );
    (u64::from(origin) << KEY_COUNTER_BITS) | counter
}

/// Round-robin assignment of processes to shards.
///
/// `shard_of(p) = p mod k` interleaves consecutive ids across shards:
/// neighbouring processes (which protocols tend to make talk to each
/// other) land on *different* shards, making the assignment a worst-case
/// stress for cross-shard traffic rather than a best case — exactly what a
/// determinism harness wants to exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
}

impl ShardMap {
    /// A map over `shards` shards (must be ≥ 1).
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        ShardMap { shards }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning process `p`.
    #[inline]
    pub fn shard_of(&self, p: ProcId) -> usize {
        p as usize % self.shards
    }

    /// `p`'s dense index within its owning shard.
    #[inline]
    pub fn local_of(&self, p: ProcId) -> usize {
        p as usize / self.shards
    }

    /// Inverse of ([`shard_of`](ShardMap::shard_of),
    /// [`local_of`](ShardMap::local_of)).
    #[inline]
    pub fn global_of(&self, shard: usize, local: usize) -> ProcId {
        (local * self.shards + shard) as ProcId
    }
}

/// Dense `k × k` matrix of cross-shard latency lower bounds, row = sending
/// shard. Diagonal entries are unused (a shard needs no lookahead against
/// itself).
#[derive(Debug, Clone)]
pub struct Lookahead {
    shards: usize,
    bounds: Vec<SimDuration>,
}

impl Lookahead {
    /// Builds a matrix from row-major `bounds` (`shards × shards`
    /// entries). Every off-diagonal bound must be positive: a zero bound
    /// would stall the conservative window protocol.
    pub fn new(shards: usize, bounds: Vec<SimDuration>) -> Self {
        assert_eq!(bounds.len(), shards * shards, "bounds matrix shape");
        for i in 0..shards {
            for j in 0..shards {
                if i != j {
                    assert!(
                        bounds[i * shards + j] > SimDuration(0),
                        "cross-shard lookahead {i}->{j} must be positive"
                    );
                }
            }
        }
        Lookahead { shards, bounds }
    }

    /// Uniform bound `b` between every shard pair (e.g. a constant-latency
    /// medium).
    pub fn uniform(shards: usize, b: SimDuration) -> Self {
        Lookahead::new(shards, vec![b; shards * shards])
    }

    /// Lower bound on the latency of any message from shard `from` to
    /// shard `to`.
    #[inline]
    pub fn bound(&self, from: usize, to: usize) -> SimDuration {
        self.bounds[from * self.shards + to]
    }
}

/// A medium that can be replicated across shards.
///
/// Each shard owns a full replica; the kernel keeps the replicas
/// observably identical by broadcasting every topology-of-liveness
/// mutation (`node_up` / `node_down`) to all of them, and scripts must
/// broadcast their own fault-plane mutations the same way (the harness
/// does this between run windows, when every shard sits at a barrier).
/// Per-replica *caches* may freely diverge — only verdicts must agree.
pub trait ShardMedium: Medium + Sized {
    /// Clones this medium into `shards` equivalent replicas.
    ///
    /// Implementations must refuse configurations whose verdicts depend on
    /// per-replica mutable state that sends themselves warm up (e.g.
    /// first-contact connection caches): such state diverges across shard
    /// counts and would break trace equivalence.
    fn replicate(&self, shards: usize) -> Vec<Self>;

    /// Cross-shard latency lower bounds for the given assignment.
    ///
    /// `matrix[i * k + j]` bounds any message sent by a process of shard
    /// `i` to a process of shard `j` from below; every off-diagonal entry
    /// must be positive.
    fn shard_lookahead(&self, map: &ShardMap) -> Vec<SimDuration>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_assignment_round_trips() {
        let m = ShardMap::new(3);
        for p in 0..100u32 {
            let (s, l) = (m.shard_of(p), m.local_of(p));
            assert!(s < 3);
            assert_eq!(m.global_of(s, l), p);
        }
        // Locals are dense per shard.
        assert_eq!(m.local_of(0), 0);
        assert_eq!(m.local_of(3), 1);
        assert_eq!(m.local_of(6), 2);
    }

    #[test]
    fn canon_keys_order_by_origin_then_counter() {
        assert!(canon_key(0, 5) < canon_key(1, 0));
        assert!(canon_key(1, 0) < canon_key(1, 1));
        assert!(canon_key(7, u64::MAX >> 25) < canon_key(CTRL_ORIGIN, 0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_cross_shard_bound_is_rejected() {
        let _ = Lookahead::new(2, vec![SimDuration(0); 4]);
    }

    #[test]
    fn uniform_lookahead_reads_back() {
        let la = Lookahead::uniform(3, SimDuration::from_millis(5));
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(la.bound(i, j), SimDuration::from_millis(5));
            }
        }
    }
}
