//! The event loop: deliveries, timers and scripted calls, executed
//! deterministically in `(time, sequence)` order.
//!
//! # Scheduler structure (the hot path)
//!
//! Events are split by class, each in the structure that is cheapest for it:
//!
//! * **Timers and deliveries** — the two dominant classes (every node
//!   re-arms periodic liveness pings; every ping is a delivery) — live in a
//!   hierarchical [`TimingWheel`]: amortized O(1) arm and expiry, O(1) lazy
//!   cancel, no allocation in steady state. A delivery carries only a
//!   compact `(time, seq, slab index)` token; the potentially large
//!   `P::Msg` payload is parked in a generation-checked slab, so the
//!   scheduler moves a fixed 40-byte entry regardless of message size and
//!   payloads are neither cloned nor reallocated between send and delivery.
//! * **Scripted operations and link-break notices** are rare; they keep a
//!   residual binary heap. Scheduled crashes and restarts — the bulk of
//!   what churn experiments script — are unboxed enum variants (restart
//!   state parked in a recycling slab); only the catch-all
//!   [`Sim::schedule_call`] closure boxes.
//!
//! Both structures order by the global `(time, seq)` pair and the kernel
//! merges their fronts, so the observable semantics are identical to a
//! single queue: earliest first, FIFO among equal timestamps, bit-for-bit
//! deterministic for a fixed seed. `baseline::BaselineSim` preserves the
//! original single-heap scheduler; differential tests in
//! `tests/kernel_equivalence.rs` hold the two to identical traces.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::medium::{Medium, Verdict};
use crate::process::{Action, Ctx, Payload, ProcId, Process};
use crate::time::{SimDuration, SimTime};
use crate::timer::{TimerHandle, TimerTable};
use crate::trace::{NullTrace, TraceSink};
use crate::wheel::{TimingWheel, WheelEntry};

/// Time-keyed work carried by the wheel: timer expiries and message
/// deliveries (the deliver payload itself lives in [`MsgSlab`]; the wheel
/// entry stays a fixed 40 bytes regardless of message size).
enum Pending {
    Timer(TimerHandle),
    Deliver { idx: u32, gen: u32 },
}

/// Rare events kept in the residual heap: link-break notices and scripted
/// operations. Crash/restart — the operations churn experiments schedule by
/// the thousands — are plain enum variants (restart state parked in a slab),
/// so scripting them allocates nothing per call; only the catch-all
/// [`Sim::schedule_call`] closure still boxes.
enum EventRef<P: Process, Md, S> {
    LinkBroken { proc: ProcId, peer: ProcId },
    Crash(ProcId),
    Restart { id: ProcId, idx: u32, gen: u32 },
    Call(Box<dyn FnOnce(&mut Sim<P, Md, S>)>),
}

struct HeapEntry<P: Process, Md, S> {
    at: SimTime,
    seq: u64,
    ev: EventRef<P, Md, S>,
}

impl<P: Process, Md, S> PartialEq for HeapEntry<P, Md, S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<P: Process, Md, S> Eq for HeapEntry<P, Md, S> {}

impl<P: Process, Md, S> PartialOrd for HeapEntry<P, Md, S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P: Process, Md, S> Ord for HeapEntry<P, Md, S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first, and
        // FIFO (smallest sequence number) among equal timestamps.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Generation-checked slab: values stay put between schedule and
/// consumption, queue entries refer to them by index, and slots recycle
/// through a free list — steady-state insert/take never allocates.
/// Generations catch (programming) errors where a stale index would
/// resurrect a consumed slot. Used for in-flight message payloads and for
/// parked restart states.
pub(crate) struct Slab<T> {
    slots: Vec<(u32, Option<T>)>,
    free: Vec<u32>,
}

impl<T> Slab<T> {
    pub(crate) fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    pub(crate) fn insert(&mut self, value: T) -> (u32, u32) {
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            slot.0 = slot.0.wrapping_add(1);
            debug_assert!(slot.1.is_none(), "free-list slot still occupied");
            slot.1 = Some(value);
            (idx, slot.0)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("more than 2^32 slab entries");
            self.slots.push((0, Some(value)));
            (idx, 0)
        }
    }

    pub(crate) fn take(&mut self, idx: u32, gen: u32) -> T {
        let slot = &mut self.slots[idx as usize];
        assert_eq!(slot.0, gen, "stale slab reference");
        let payload = slot.1.take().expect("slab slot consumed twice");
        self.free.push(idx);
        payload
    }
}

struct ProcSlot<P: Process> {
    proc: Option<P>,
    timers: TimerTable<P::Timer>,
}

/// The simulation world: processes, medium, clock and event queue.
///
/// # Examples
///
/// ```
/// use fuse_sim::{PerfectMedium, Payload, Process, ProcId, Sim, SimDuration};
///
/// #[derive(Clone)]
/// struct Hello;
/// impl Payload for Hello {
///     fn size_bytes(&self) -> usize { 5 }
/// }
///
/// struct Greeter { got: u32 }
/// impl Process for Greeter {
///     type Msg = Hello;
///     type Timer = ();
///     fn on_boot(&mut self, ctx: &mut fuse_sim::process::Ctx<'_, Hello, ()>) {
///         if ctx.self_id == 0 { ctx.send(1, Hello); }
///     }
///     fn on_message(&mut self, _ctx: &mut fuse_sim::process::Ctx<'_, Hello, ()>, _from: ProcId, _m: Hello) {
///         self.got += 1;
///     }
///     fn on_timer(&mut self, _ctx: &mut fuse_sim::process::Ctx<'_, Hello, ()>, _t: ()) {}
/// }
///
/// let medium = PerfectMedium::new(SimDuration::from_millis(10));
/// let mut sim = Sim::new(42, medium);
/// sim.add_process(Greeter { got: 0 });
/// sim.add_process(Greeter { got: 0 });
/// sim.run_for(SimDuration::from_secs(1));
/// assert_eq!(sim.proc(1).unwrap().got, 1);
/// ```
pub struct Sim<P: Process, Md, S = NullTrace> {
    clock: SimTime,
    seq: u64,
    heap: BinaryHeap<HeapEntry<P, Md, S>>,
    wheel: TimingWheel<Pending>,
    msgs: Slab<(ProcId, ProcId, P::Msg)>,
    /// Parked states of scheduled restarts (consumed when the event fires).
    restarts: Slab<P>,
    procs: Vec<ProcSlot<P>>,
    rng: StdRng,
    medium: Md,
    trace: S,
    scratch_actions: Vec<Action<P::Msg>>,
    scratch_timers: Vec<(TimerHandle, SimTime)>,
    events_executed: u64,
}

impl<P: Process, Md: Medium> Sim<P, Md, NullTrace> {
    /// Creates a simulation with the default (no-op) trace sink.
    pub fn new(seed: u64, medium: Md) -> Self {
        Sim::with_trace(seed, medium, NullTrace)
    }
}

impl<P: Process, Md: Medium, S: TraceSink<P::Msg>> Sim<P, Md, S> {
    /// Creates a simulation observing events through `trace`.
    pub fn with_trace(seed: u64, medium: Md, trace: S) -> Self {
        Sim {
            clock: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            wheel: TimingWheel::new(),
            msgs: Slab::new(),
            restarts: Slab::new(),
            procs: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            medium,
            trace,
            scratch_actions: Vec::new(),
            scratch_timers: Vec::new(),
            events_executed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of processes ever added (including crashed ones).
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// Total events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.events_executed
    }

    /// Events still queued (including lazily-cancelled timers, which are
    /// discarded when they surface).
    pub fn pending_events(&self) -> usize {
        self.heap.len() + self.wheel.len()
    }

    /// Whether process `id` is currently alive.
    pub fn is_up(&self, id: ProcId) -> bool {
        self.procs
            .get(id as usize)
            .map(|s| s.proc.is_some())
            .unwrap_or(false)
    }

    /// Immutable view of a live process's state.
    pub fn proc(&self, id: ProcId) -> Option<&P> {
        self.procs.get(id as usize).and_then(|s| s.proc.as_ref())
    }

    /// The medium, for fault injection.
    pub fn medium_mut(&mut self) -> &mut Md {
        &mut self.medium
    }

    /// Immutable medium access.
    pub fn medium(&self) -> &Md {
        &self.medium
    }

    /// The trace sink, for metrics extraction.
    pub fn trace_mut(&mut self) -> &mut S {
        &mut self.trace
    }

    /// Immutable trace access.
    pub fn trace(&self) -> &S {
        &self.trace
    }

    /// Kernel RNG; scripts may draw from it (deterministically).
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Adds a process, boots it, and returns its id.
    pub fn add_process(&mut self, p: P) -> ProcId {
        let id = self.procs.len() as ProcId;
        self.procs.push(ProcSlot {
            proc: Some(p),
            timers: TimerTable::new(),
        });
        self.medium.node_up(id);
        self.trace.on_lifecycle(self.clock, id, true);
        self.dispatch(id, |p, ctx| p.on_boot(ctx));
        id
    }

    /// Crashes process `id`: state dropped, timers cleared, medium informed.
    ///
    /// In-flight messages *to* the process are discarded on arrival; messages
    /// it already sent still propagate (packets in flight survive a sender
    /// crash).
    pub fn crash(&mut self, id: ProcId) {
        let slot = &mut self.procs[id as usize];
        if slot.proc.take().is_none() {
            return;
        }
        slot.timers.clear();
        self.medium.node_down(id);
        self.trace.on_lifecycle(self.clock, id, false);
    }

    /// Restarts a crashed process with fresh state `p` (same id).
    pub fn restart(&mut self, id: ProcId, p: P) {
        let slot = &mut self.procs[id as usize];
        assert!(slot.proc.is_none(), "restart of a live process");
        slot.proc = Some(p);
        self.medium.node_up(id);
        self.trace.on_lifecycle(self.clock, id, true);
        self.dispatch(id, |p, ctx| p.on_boot(ctx));
    }

    /// Runs `f` against live process `id` with a full handler context; the
    /// entry point for scripted API calls (e.g. `CreateGroup`).
    ///
    /// Returns `None` if the process is down.
    pub fn with_proc<R>(
        &mut self,
        id: ProcId,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg, P::Timer>) -> R,
    ) -> Option<R> {
        let mut out = None;
        let ran = self.dispatch_inner(id, |p, ctx| {
            out = Some(f(p, ctx));
        });
        if ran {
            out
        } else {
            None
        }
    }

    /// Schedules `f(&mut Sim)` to run at absolute time `at`.
    ///
    /// The catch-all scripting hook — it boxes the closure. The two
    /// operations churn scripts issue by the thousands have unboxed
    /// first-class forms: [`schedule_crash`] and [`schedule_restart`].
    ///
    /// [`schedule_crash`]: Sim::schedule_crash
    /// [`schedule_restart`]: Sim::schedule_restart
    pub fn schedule_call(&mut self, at: SimTime, f: impl FnOnce(&mut Self) + 'static) {
        assert!(at >= self.clock, "cannot schedule in the past");
        self.push(at, EventRef::Call(Box::new(f)));
    }

    /// Schedules `f(&mut Sim)` to run `after` from now.
    pub fn schedule_in(&mut self, after: SimDuration, f: impl FnOnce(&mut Self) + 'static) {
        self.push(self.clock + after, EventRef::Call(Box::new(f)));
    }

    /// Schedules a crash of process `id` at absolute time `at` without
    /// allocating: the operation is a plain enum variant in the event
    /// queue. Idempotent at fire time (crashing a dead process is a no-op),
    /// exactly like calling [`crash`] then.
    ///
    /// [`crash`]: Sim::crash
    pub fn schedule_crash(&mut self, at: SimTime, id: ProcId) {
        assert!(at >= self.clock, "cannot schedule in the past");
        self.push(at, EventRef::Crash(id));
    }

    /// Schedules a restart of process `id` with `state` at absolute time
    /// `at`. The state is parked in a recycling slab until the event fires
    /// — no per-call box. If the process is still up at fire time the
    /// restart is dropped (the parked state is discarded), so alternating
    /// crash/restart schedules compose safely with other failure injection.
    pub fn schedule_restart(&mut self, at: SimTime, id: ProcId, state: P) {
        assert!(at >= self.clock, "cannot schedule in the past");
        let (idx, gen) = self.restarts.insert(state);
        self.push(at, EventRef::Restart { id, idx, gen });
    }

    /// `(time, seq)` of the next event across both queues, and whether it
    /// comes from the timer wheel.
    fn next_front(&mut self) -> Option<(SimTime, u64, bool)> {
        let heap_front = self.heap.peek().map(|e| (e.at, e.seq));
        let wheel_front = self.wheel.peek();
        match (heap_front, wheel_front) {
            (None, None) => None,
            (Some((at, seq)), None) => Some((at, seq, false)),
            (None, Some((at, seq))) => Some((at, seq, true)),
            (Some((ha, hs)), Some((wa, ws))) => {
                if (ha, hs) < (wa, ws) {
                    Some((ha, hs, false))
                } else {
                    Some((wa, ws, true))
                }
            }
        }
    }

    /// Executes a single event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.step_through(SimTime(u64::MAX))
    }

    /// Executes the next event if it is due at or before `t`; returns
    /// whether an event ran. The clock is not advanced past the last
    /// executed event — the building block for event-driven waits
    /// (evaluate a predicate after every event instead of polling on a
    /// fixed interval).
    pub fn step_until(&mut self, t: SimTime) -> bool {
        self.step_through(t)
    }

    /// Executes the next event if it is due at or before `t`; the single
    /// front decision shared by [`step`] and the run loops (peeking and
    /// popping in one pass keeps the per-event cost down).
    ///
    /// [`step`]: Sim::step
    fn step_through(&mut self, t: SimTime) -> bool {
        let Some((at, seq, from_wheel)) = self.next_front() else {
            return false;
        };
        if at > t {
            return false;
        }
        debug_assert!(at >= self.clock, "time went backwards");
        self.clock = at;
        self.events_executed += 1;
        self.trace.on_event(at, seq);
        if from_wheel {
            let WheelEntry { token, .. } = self.wheel.pop().expect("peeked wheel entry exists");
            match token {
                Pending::Timer(h) => {
                    let slot = &mut self.procs[h.proc as usize];
                    if slot.proc.is_none() {
                        return true;
                    }
                    if let Some(tag) = slot.timers.fire(h) {
                        self.dispatch(h.proc, |p, ctx| p.on_timer(ctx, tag));
                    }
                }
                Pending::Deliver { idx, gen } => {
                    let (from, to, msg) = self.msgs.take(idx, gen);
                    if self.is_up(to) {
                        self.trace.on_deliver(self.clock, from, to, &msg);
                        self.dispatch(to, |p, ctx| p.on_message(ctx, from, msg));
                    }
                }
            }
            return true;
        }
        let entry = self.heap.pop().expect("peeked heap entry exists");
        match entry.ev {
            EventRef::LinkBroken { proc, peer } => {
                self.dispatch(proc, |p, ctx| p.on_link_broken(ctx, peer));
            }
            EventRef::Crash(id) => self.crash(id),
            EventRef::Restart { id, idx, gen } => {
                let state = self.restarts.take(idx, gen);
                if !self.is_up(id) {
                    self.restart(id, state);
                }
            }
            EventRef::Call(f) => f(self),
        }
        true
    }

    /// Executes events through time `t` (inclusive) without touching the
    /// clock afterwards; shared drain loop of [`run_until`] and
    /// [`run_until_idle`].
    ///
    /// [`run_until`]: Sim::run_until
    /// [`run_until_idle`]: Sim::run_until_idle
    fn run_events_through(&mut self, t: SimTime) {
        while self.step_through(t) {}
    }

    /// Runs all events up to and including time `t`, then sets the clock to
    /// `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.run_events_through(t);
        if t > self.clock {
            self.clock = t;
        }
    }

    /// Runs for a span of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.clock + d;
        self.run_until(t);
    }

    /// Drains the event queue, with `limit` as a safety bound, and reports
    /// whether the simulation went idle.
    ///
    /// * Queue drained at some `t <= limit`: returns `true`, clock left at
    ///   the last executed event (*not* advanced to `limit` — the caller
    ///   learns when the system quiesced).
    /// * Events remain beyond `limit`: returns `false`, clock set to
    ///   `limit` exactly like [`run_until`].
    ///
    /// Lazily-cancelled timers still count as queued events (they surface
    /// and are discarded), so an "idle" verdict may require sweeping past
    /// their deadlines.
    ///
    /// [`run_until`]: Sim::run_until
    pub fn run_until_idle(&mut self, limit: SimTime) -> bool {
        self.run_events_through(limit);
        let idle = self.pending_events() == 0;
        if !idle && limit > self.clock {
            self.clock = limit;
        }
        idle
    }

    fn push(&mut self, at: SimTime, ev: EventRef<P, Md, S>) {
        self.seq += 1;
        self.heap.push(HeapEntry {
            at,
            seq: self.seq,
            ev,
        });
    }

    fn dispatch(&mut self, id: ProcId, f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg, P::Timer>)) {
        self.dispatch_inner(id, f);
    }

    /// Runs a handler and flushes its effects. Returns whether it ran.
    fn dispatch_inner(
        &mut self,
        id: ProcId,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg, P::Timer>),
    ) -> bool {
        // Scratch buffers are taken to tolerate (rare) nested dispatches
        // from scripted calls.
        let mut actions = std::mem::take(&mut self.scratch_actions);
        let mut new_timers = std::mem::take(&mut self.scratch_timers);
        let ran = {
            let slot = match self.procs.get_mut(id as usize) {
                Some(s) => s,
                None => return false,
            };
            let ProcSlot { proc, timers } = slot;
            match proc.as_mut() {
                Some(p) => {
                    let mut ctx = Ctx {
                        now: self.clock,
                        self_id: id,
                        rng: &mut self.rng,
                        timers,
                        actions: &mut actions,
                        new_timers: &mut new_timers,
                    };
                    f(p, &mut ctx);
                    true
                }
                None => false,
            }
        };
        // Timers before sends: sequence numbers must be allocated in the
        // same order as the single-heap kernel, or same-instant tie-breaks
        // would diverge from the baseline.
        for (handle, at) in new_timers.drain(..) {
            self.seq += 1;
            self.wheel.insert(WheelEntry {
                at,
                seq: self.seq,
                token: Pending::Timer(handle),
            });
        }
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => self.perform_send(id, to, msg),
            }
        }
        self.scratch_actions = actions;
        self.scratch_timers = new_timers;
        ran
    }

    fn perform_send(&mut self, from: ProcId, to: ProcId, msg: P::Msg) {
        let size = msg.size_bytes();
        let class = msg.class();
        let verdict = self
            .medium
            .unicast(self.clock, &mut self.rng, from, to, size, class);
        self.trace
            .on_send(self.clock, from, to, &msg, size, &verdict);
        match verdict {
            Verdict::Deliver { at } => {
                debug_assert!(at >= self.clock);
                let (idx, gen) = self.msgs.insert((from, to, msg));
                self.seq += 1;
                self.wheel.insert(WheelEntry {
                    at,
                    seq: self.seq,
                    token: Pending::Deliver { idx, gen },
                });
            }
            Verdict::Break { sender_notice } => {
                self.push(
                    sender_notice,
                    EventRef::LinkBroken {
                        proc: from,
                        peer: to,
                    },
                );
            }
            Verdict::Drop => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::PerfectMedium;
    use crate::process::Payload;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u64),
        Pong(u64),
    }

    impl Payload for Msg {
        fn size_bytes(&self) -> usize {
            9
        }

        fn class(&self) -> &'static str {
            match self {
                Msg::Ping(_) => "ping",
                Msg::Pong(_) => "pong",
            }
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Tag {
        Tick,
        Once,
    }

    struct Node {
        peer: ProcId,
        initiator: bool,
        pings_seen: u64,
        pongs_seen: u64,
        ticks: u64,
        broken_links: Vec<ProcId>,
        cancel_me: Option<TimerHandle>,
    }

    impl Node {
        fn new(peer: ProcId, initiator: bool) -> Self {
            Node {
                peer,
                initiator,
                pings_seen: 0,
                pongs_seen: 0,
                ticks: 0,
                broken_links: Vec::new(),
                cancel_me: None,
            }
        }
    }

    impl Process for Node {
        type Msg = Msg;
        type Timer = Tag;

        fn on_boot(&mut self, ctx: &mut Ctx<'_, Msg, Tag>) {
            if self.initiator {
                ctx.send(self.peer, Msg::Ping(0));
                ctx.set_timer(SimDuration::from_secs(1), Tag::Tick);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg, Tag>, from: ProcId, msg: Msg) {
            match msg {
                Msg::Ping(n) => {
                    self.pings_seen += 1;
                    ctx.send(from, Msg::Pong(n));
                }
                Msg::Pong(_) => self.pongs_seen += 1,
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg, Tag>, tag: Tag) {
            match tag {
                Tag::Tick => {
                    self.ticks += 1;
                    if self.ticks < 3 {
                        ctx.set_timer(SimDuration::from_secs(1), Tag::Tick);
                    }
                }
                Tag::Once => panic!("cancelled timer fired"),
            }
        }

        fn on_link_broken(&mut self, _ctx: &mut Ctx<'_, Msg, Tag>, peer: ProcId) {
            self.broken_links.push(peer);
        }
    }

    fn two_nodes(seed: u64) -> Sim<Node, PerfectMedium> {
        let mut sim = Sim::new(seed, PerfectMedium::new(SimDuration::from_millis(50)));
        sim.add_process(Node::new(1, true));
        sim.add_process(Node::new(0, false));
        sim
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = two_nodes(1);
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(sim.proc(1).unwrap().pings_seen, 1);
        assert_eq!(sim.proc(0).unwrap().pongs_seen, 1);
        assert_eq!(sim.proc(0).unwrap().ticks, 3);
    }

    #[test]
    fn clock_advances_to_run_until_target() {
        let mut sim = two_nodes(1);
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(30));
    }

    #[test]
    fn crash_drops_in_flight_and_breaks_future_sends() {
        let mut sim = two_nodes(2);
        sim.crash(1);
        sim.run_for(SimDuration::from_secs(60));
        // The initial ping was in flight at crash time; dropped on arrival.
        assert_eq!(sim.proc(0).unwrap().pongs_seen, 0);
        assert!(!sim.is_up(1));
        // Sending again to the dead node breaks the link.
        sim.with_proc(0, |_n, ctx| ctx.send(1, Msg::Ping(9)));
        sim.run_for(SimDuration::from_secs(60));
        assert_eq!(sim.proc(0).unwrap().broken_links, vec![1]);
    }

    #[test]
    fn restart_reboots_with_fresh_state() {
        let mut sim = two_nodes(3);
        sim.run_for(SimDuration::from_secs(5));
        sim.crash(0);
        sim.restart(0, Node::new(1, true));
        sim.run_for(SimDuration::from_secs(5));
        // Rebooted initiator pings again.
        assert_eq!(sim.proc(1).unwrap().pings_seen, 2);
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let mut sim = two_nodes(4);
        sim.with_proc(0, |n, ctx| {
            let h = ctx.set_timer(SimDuration::from_secs(2), Tag::Once);
            n.cancel_me = Some(h);
        });
        sim.with_proc(0, |n, ctx| {
            let h = n.cancel_me.take().unwrap();
            ctx.cancel_timer(h);
        });
        // Would panic in on_timer if the cancel failed.
        sim.run_for(SimDuration::from_secs(10));
    }

    #[test]
    fn crash_clears_timers() {
        let mut sim = two_nodes(5);
        sim.with_proc(1, |_n, ctx| {
            ctx.set_timer(SimDuration::from_secs(1), Tag::Once);
        });
        sim.crash(1);
        // Timer cleared by crash; a restarted node must not receive it.
        sim.restart(1, Node::new(0, false));
        sim.run_for(SimDuration::from_secs(10));
    }

    #[test]
    fn equal_time_events_fifo() {
        // Two messages sent in one handler with identical latency must be
        // delivered in send order.
        struct Seq {
            seen: Vec<u64>,
        }
        #[derive(Clone)]
        struct N(u64);
        impl Payload for N {
            fn size_bytes(&self) -> usize {
                8
            }
        }
        impl Process for Seq {
            type Msg = N;
            type Timer = ();
            fn on_boot(&mut self, ctx: &mut Ctx<'_, N, ()>) {
                if ctx.self_id == 0 {
                    for i in 0..16 {
                        ctx.send(1, N(i));
                    }
                }
            }
            fn on_message(&mut self, _c: &mut Ctx<'_, N, ()>, _f: ProcId, m: N) {
                self.seen.push(m.0);
            }
            fn on_timer(&mut self, _c: &mut Ctx<'_, N, ()>, _t: ()) {}
        }
        let mut sim: Sim<Seq, PerfectMedium> =
            Sim::new(7, PerfectMedium::new(SimDuration::from_millis(5)));
        sim.add_process(Seq { seen: vec![] });
        sim.add_process(Seq { seen: vec![] });
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.proc(1).unwrap().seen, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn timer_and_message_at_same_instant_interleave_by_seq() {
        // A timer armed before a send, both landing at the same instant,
        // must fire before the delivery (smaller sequence number), even
        // though they now live in different scheduler structures.
        struct Race {
            order: Vec<&'static str>,
        }
        #[derive(Clone)]
        struct M;
        impl Payload for M {
            fn size_bytes(&self) -> usize {
                1
            }
        }
        impl Process for Race {
            type Msg = M;
            type Timer = ();
            fn on_boot(&mut self, ctx: &mut Ctx<'_, M, ()>) {
                if ctx.self_id == 1 {
                    // Timer first (seq k), send second (seq k+1); the
                    // medium latency makes the delivery land exactly when
                    // the timer fires.
                    ctx.set_timer(SimDuration::from_millis(5), ());
                    ctx.send(1, M);
                }
            }
            fn on_message(&mut self, _c: &mut Ctx<'_, M, ()>, _f: ProcId, _m: M) {
                self.order.push("msg");
            }
            fn on_timer(&mut self, _c: &mut Ctx<'_, M, ()>, _t: ()) {
                self.order.push("timer");
            }
        }
        let mut sim: Sim<Race, PerfectMedium> =
            Sim::new(7, PerfectMedium::new(SimDuration::from_millis(5)));
        sim.add_process(Race { order: vec![] });
        sim.add_process(Race { order: vec![] });
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.proc(1).unwrap().order, vec!["timer", "msg"]);
    }

    #[test]
    fn scheduled_calls_run_at_their_time() {
        let mut sim = two_nodes(6);
        sim.schedule_call(SimTime::ZERO + SimDuration::from_secs(2), |s| {
            s.with_proc(0, |_n, ctx| ctx.send(1, Msg::Ping(99)));
        });
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.proc(1).unwrap().pings_seen, 1);
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(sim.proc(1).unwrap().pings_seen, 2);
    }

    #[test]
    fn scheduled_crash_and_restart_fire_unboxed() {
        let mut sim = two_nodes(11);
        sim.schedule_crash(SimTime::ZERO + SimDuration::from_secs(2), 1);
        sim.schedule_restart(
            SimTime::ZERO + SimDuration::from_secs(4),
            1,
            Node::new(0, false),
        );
        sim.run_for(SimDuration::from_secs(3));
        assert!(!sim.is_up(1));
        sim.run_for(SimDuration::from_secs(3));
        assert!(sim.is_up(1));
        // Restarted node has fresh state.
        assert_eq!(sim.proc(1).unwrap().pings_seen, 0);
    }

    #[test]
    fn scheduled_restart_of_live_process_is_dropped() {
        let mut sim = two_nodes(12);
        sim.schedule_restart(
            SimTime::ZERO + SimDuration::from_secs(1),
            0,
            Node::new(1, true),
        );
        sim.run_for(SimDuration::from_secs(5));
        // Process 0 was never down: the parked state must be discarded, not
        // rebooted over live state (a reboot would re-ping).
        assert_eq!(sim.proc(1).unwrap().pings_seen, 1);
        // Scheduled crash of an already-dead process is a no-op too.
        sim.crash(0);
        sim.schedule_crash(sim.now() + SimDuration::from_secs(1), 0);
        sim.run_for(SimDuration::from_secs(5));
        assert!(!sim.is_up(0));
    }

    #[test]
    fn deterministic_event_counts_across_runs() {
        let mut a = two_nodes(42);
        let mut b = two_nodes(42);
        a.run_for(SimDuration::from_secs(100));
        b.run_for(SimDuration::from_secs(100));
        assert_eq!(a.events_executed(), b.events_executed());
        assert_eq!(a.proc(0).unwrap().ticks, b.proc(0).unwrap().ticks);
    }

    #[test]
    fn with_proc_on_dead_process_returns_none() {
        let mut sim = two_nodes(8);
        sim.crash(1);
        assert!(sim.with_proc(1, |_n, _c| 42).is_none());
        assert_eq!(sim.with_proc(0, |_n, _c| 42), Some(42));
    }

    #[test]
    fn run_until_idle_drains_and_reports() {
        // The ping-pong plus three ticks quiesces after ~3 s; the drain
        // must stop there, leave the clock at the last event, and report
        // idle.
        let mut sim = two_nodes(9);
        let limit = SimTime::ZERO + SimDuration::from_secs(60);
        assert!(sim.run_until_idle(limit));
        assert_eq!(sim.pending_events(), 0);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(3));
        let ticks = sim.proc(0).unwrap().ticks;
        assert_eq!(ticks, 3, "all periodic work must have run");

        // With a limit before quiescence, events remain and the clock
        // advances exactly to the limit.
        let mut sim2 = two_nodes(9);
        let early = SimTime::ZERO + SimDuration::from_millis(1500);
        assert!(!sim2.run_until_idle(early));
        assert!(sim2.pending_events() > 0);
        assert_eq!(sim2.now(), early);
    }

    #[test]
    fn run_until_idle_counts_cancelled_timers_as_pending() {
        let mut sim = two_nodes(10);
        sim.run_until_idle(SimTime::ZERO + SimDuration::from_secs(60));
        sim.with_proc(0, |n, ctx| {
            let h = ctx.set_timer(SimDuration::from_secs(5), Tag::Once);
            n.cancel_me = Some(h);
        });
        sim.with_proc(0, |n, ctx| {
            let h = n.cancel_me.take().unwrap();
            ctx.cancel_timer(h);
        });
        // The cancelled timer still occupies a queue slot until swept.
        assert_eq!(sim.pending_events(), 1);
        assert!(sim.run_until_idle(SimTime::ZERO + SimDuration::from_secs(60)));
        assert_eq!(sim.pending_events(), 0);
    }
}
