//! The process abstraction: protocol code as event handlers.

use rand::rngs::StdRng;

use crate::time::{SimDuration, SimTime};
use crate::timer::{TimerHandle, TimerTable};

/// Index of a simulated process (a "virtual node" in the paper's terms).
/// This is the transport-neutral [`fuse_util::PeerAddr`]: sans-io protocol
/// code addresses peers by the same dense index under every driver.
pub type ProcId = fuse_util::PeerAddr;

pub use fuse_util::Payload;

/// A simulated process: boots, receives messages, and handles timers.
///
/// Handlers interact with the world exclusively through [`Ctx`]; this is what
/// makes runs replayable and lets the same protocol code run over any
/// [`crate::Medium`].
pub trait Process: Sized {
    /// Message payload type exchanged between processes of this kind.
    type Msg: Payload;
    /// Timer tag type (what a timer means to the protocol).
    type Timer: Clone;

    /// Called once when the process is added or restarted.
    fn on_boot(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>);

    /// Called when a message is delivered.
    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        from: ProcId,
        msg: Self::Msg,
    );

    /// Called when a live timer fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>, tag: Self::Timer);

    /// Called when the transport discovers a broken connection to `peer`
    /// (e.g. TCP gave up retransmitting). Default: ignored.
    fn on_link_broken(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>, peer: ProcId) {
        let _ = (ctx, peer);
    }
}

/// Deferred effects produced by a handler, applied by the kernel afterwards.
pub(crate) enum Action<M> {
    Send { to: ProcId, msg: M },
}

/// Handler-side view of the world.
///
/// Sends are queued and performed by the kernel when the handler returns (in
/// order); timers are armed immediately so the returned [`TimerHandle`] is
/// usable right away.
pub struct Ctx<'a, M, T> {
    /// Current simulated time.
    pub now: SimTime,
    /// The process this handler runs on.
    pub self_id: ProcId,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) timers: &'a mut TimerTable<T>,
    pub(crate) actions: &'a mut Vec<Action<M>>,
    pub(crate) new_timers: &'a mut Vec<(TimerHandle, SimTime)>,
}

impl<'a, M, T> Ctx<'a, M, T> {
    /// Queues a message to `to`.
    pub fn send(&mut self, to: ProcId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Arms a timer firing `after` from now, carrying `tag`.
    pub fn set_timer(&mut self, after: SimDuration, tag: T) -> TimerHandle {
        let h = self.timers.arm(self.self_id, tag);
        self.new_timers.push((h, self.now + after));
        h
    }

    /// Cancels a previously armed timer; harmless if already fired.
    pub fn cancel_timer(&mut self, h: TimerHandle) {
        self.timers.cancel(h);
    }

    /// Deterministic randomness for jitter and sampling.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}
