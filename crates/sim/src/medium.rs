//! The messaging layer: what happens to a message once sent.
//!
//! Implementations decide latency, loss and connection breakage. The kernel
//! consults the medium once per send; everything else (event ordering,
//! delivery, crash filtering) is kernel business.

use rand::rngs::StdRng;

use crate::process::ProcId;
use crate::time::{SimDuration, SimTime};

/// Fate of one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Delivered at the given instant.
    Deliver {
        /// Delivery instant (>= send time).
        at: SimTime,
    },
    /// Not delivered; the sender's transport notices a broken connection at
    /// `sender_notice` (TCP retransmission budget exhausted).
    Break {
        /// When the sender learns of the break.
        sender_notice: SimTime,
    },
    /// Silently lost (no transport-level signal to the sender).
    Drop,
}

/// The base messaging layer (the only part the paper swaps between its
/// simulator and its ModelNet cluster).
pub trait Medium {
    /// Decides the fate of one `size`-byte message from `from` to `to`.
    ///
    /// `class` is the payload's [`Payload::class`] label — the decoded
    /// message type. Media that model the paper's §3.5 content-based
    /// adversary ("an adversary dropping packets based on their content")
    /// may drop on it; plain media ignore it.
    ///
    /// [`Payload::class`]: crate::Payload::class
    fn unicast(
        &mut self,
        now: SimTime,
        rng: &mut StdRng,
        from: ProcId,
        to: ProcId,
        size: usize,
        class: &'static str,
    ) -> Verdict;

    /// Informs the medium a process came up (join/restart).
    fn node_up(&mut self, id: ProcId) {
        let _ = id;
    }

    /// Informs the medium a process went down (crash).
    fn node_down(&mut self, id: ProcId) {
        let _ = id;
    }
}

/// Dense `ProcId`-indexed bitset: branchless, cache-resident membership for
/// the per-send liveness check (process ids are small consecutive integers,
/// so one cache line covers 512 of them).
#[derive(Debug, Clone, Default)]
pub struct ProcBitSet {
    words: Vec<u64>,
}

impl ProcBitSet {
    /// Marks `id` present.
    pub fn insert(&mut self, id: ProcId) {
        let w = id as usize / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (id as usize % 64);
    }

    /// Marks `id` absent.
    pub fn remove(&mut self, id: ProcId) {
        if let Some(w) = self.words.get_mut(id as usize / 64) {
            *w &= !(1u64 << (id as usize % 64));
        }
    }

    /// Whether `id` is present.
    pub fn contains(&self, id: ProcId) -> bool {
        self.words
            .get(id as usize / 64)
            .is_some_and(|w| w >> (id as usize % 64) & 1 == 1)
    }
}

/// Loss-free medium with constant one-way latency; for unit tests.
#[derive(Debug, Clone)]
pub struct PerfectMedium {
    /// One-way latency applied to every message.
    pub latency: SimDuration,
    down: ProcBitSet,
    /// How long after sending to a dead peer the sender notices the break.
    pub dead_peer_notice: SimDuration,
}

impl PerfectMedium {
    /// Creates a perfect medium with the given one-way latency.
    pub fn new(latency: SimDuration) -> Self {
        PerfectMedium {
            latency,
            down: ProcBitSet::default(),
            dead_peer_notice: SimDuration::from_secs(20),
        }
    }
}

impl Medium for PerfectMedium {
    fn unicast(
        &mut self,
        now: SimTime,
        _rng: &mut StdRng,
        _from: ProcId,
        to: ProcId,
        _size: usize,
        _class: &'static str,
    ) -> Verdict {
        if self.down.contains(to) {
            Verdict::Break {
                sender_notice: now + self.dead_peer_notice,
            }
        } else {
            Verdict::Deliver {
                at: now + self.latency,
            }
        }
    }

    fn node_up(&mut self, id: ProcId) {
        self.down.remove(id);
    }

    fn node_down(&mut self, id: ProcId) {
        self.down.insert(id);
    }
}

impl crate::sync::ShardMedium for PerfectMedium {
    fn replicate(&self, shards: usize) -> Vec<Self> {
        vec![self.clone(); shards]
    }

    fn shard_lookahead(&self, map: &crate::sync::ShardMap) -> Vec<SimDuration> {
        assert!(
            self.latency > SimDuration::ZERO,
            "sharded runs need a positive medium latency for lookahead"
        );
        vec![self.latency; map.shards() * map.shards()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_insert_remove_contains() {
        let mut s = ProcBitSet::default();
        assert!(!s.contains(0));
        for id in [0u32, 1, 63, 64, 65, 1000] {
            s.insert(id);
            assert!(s.contains(id), "{id} after insert");
        }
        assert!(!s.contains(2));
        assert!(!s.contains(999));
        s.remove(64);
        assert!(!s.contains(64));
        assert!(s.contains(63) && s.contains(65), "neighbors untouched");
        // Removing beyond the allocated words is a no-op, not a panic.
        s.remove(1_000_000);
        // Re-insert after remove.
        s.insert(64);
        assert!(s.contains(64));
    }

    #[test]
    fn perfect_medium_breaks_sends_to_down_nodes() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = PerfectMedium::new(SimDuration::from_millis(10));
        let now = SimTime::ZERO;
        assert!(matches!(
            m.unicast(now, &mut rng, 0, 1, 8, "msg"),
            Verdict::Deliver { .. }
        ));
        m.node_down(1);
        assert_eq!(
            m.unicast(now, &mut rng, 0, 1, 8, "msg"),
            Verdict::Break {
                sender_notice: now + m.dead_peer_notice
            }
        );
        m.node_up(1);
        assert!(matches!(
            m.unicast(now, &mut rng, 0, 1, 8, "msg"),
            Verdict::Deliver { .. }
        ));
    }
}
