//! The messaging layer: what happens to a message once sent.
//!
//! Implementations decide latency, loss and connection breakage. The kernel
//! consults the medium once per send; everything else (event ordering,
//! delivery, crash filtering) is kernel business.

use rand::rngs::StdRng;

use crate::process::ProcId;
use crate::time::{SimDuration, SimTime};

/// Fate of one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Delivered at the given instant.
    Deliver {
        /// Delivery instant (>= send time).
        at: SimTime,
    },
    /// Not delivered; the sender's transport notices a broken connection at
    /// `sender_notice` (TCP retransmission budget exhausted).
    Break {
        /// When the sender learns of the break.
        sender_notice: SimTime,
    },
    /// Silently lost (no transport-level signal to the sender).
    Drop,
}

/// The base messaging layer (the only part the paper swaps between its
/// simulator and its ModelNet cluster).
pub trait Medium {
    /// Decides the fate of one `size`-byte message from `from` to `to`.
    fn unicast(
        &mut self,
        now: SimTime,
        rng: &mut StdRng,
        from: ProcId,
        to: ProcId,
        size: usize,
    ) -> Verdict;

    /// Informs the medium a process came up (join/restart).
    fn node_up(&mut self, id: ProcId) {
        let _ = id;
    }

    /// Informs the medium a process went down (crash).
    fn node_down(&mut self, id: ProcId) {
        let _ = id;
    }
}

/// Loss-free medium with constant one-way latency; for unit tests.
#[derive(Debug, Clone)]
pub struct PerfectMedium {
    /// One-way latency applied to every message.
    pub latency: SimDuration,
    down: std::collections::BTreeSet<ProcId>,
    /// How long after sending to a dead peer the sender notices the break.
    pub dead_peer_notice: SimDuration,
}

impl PerfectMedium {
    /// Creates a perfect medium with the given one-way latency.
    pub fn new(latency: SimDuration) -> Self {
        PerfectMedium {
            latency,
            down: std::collections::BTreeSet::new(),
            dead_peer_notice: SimDuration::from_secs(20),
        }
    }
}

impl Medium for PerfectMedium {
    fn unicast(
        &mut self,
        now: SimTime,
        _rng: &mut StdRng,
        _from: ProcId,
        to: ProcId,
        _size: usize,
    ) -> Verdict {
        if self.down.contains(&to) {
            Verdict::Break {
                sender_notice: now + self.dead_peer_notice,
            }
        } else {
            Verdict::Deliver {
                at: now + self.latency,
            }
        }
    }

    fn node_up(&mut self, id: ProcId) {
        self.down.remove(&id);
    }

    fn node_down(&mut self, id: ProcId) {
        self.down.insert(id);
    }
}
