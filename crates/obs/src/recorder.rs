//! The standard event sink and its mergeable aggregates.
//!
//! A [`Recorder`] folds the typed event stream into [`Aggregates`]:
//! monotone counters, per-class byte accounting, a canonical notification
//! log, and per-class latency reservoirs. Aggregates merge by summing
//! counters and concatenating logs into a canonical order, so folding one
//! recorder per node (or per shard) produces bit-identical results
//! regardless of how the work was partitioned — the property the sharded
//! chaos cross-checks assert.

use std::collections::BTreeMap;

use crate::event::{Event, ObsSink, ReasonKind};
use crate::reservoir::{ClassCounter, Reservoir};

/// One application-visible burn notification, as logged by a recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct NotifyRecord {
    /// Driver timestamp (nanoseconds since the driver's epoch).
    pub at_nanos: u64,
    /// The notified node (recorder origin).
    pub origin: u32,
    /// Notification sequence number.
    pub seq: u64,
    /// Why the group burned.
    pub reason: ReasonKind,
}

/// A scripted phase marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PhaseMark {
    /// Driver timestamp (nanoseconds since the driver's epoch).
    pub at_nanos: u64,
    /// Phase label.
    pub label: &'static str,
}

/// Mergeable observation aggregates.
///
/// Every field is either a monotone counter (merge = sum), a per-class
/// counter (merge = pointwise sum), a log (merge = concatenate, then sort
/// into the canonical order), or a reservoir (merge = multiset union).
/// Equality is canonical: log order after [`Aggregates::merge_from`] and
/// reservoir sample order are deterministic functions of the recorded
/// events, never of the partitioning.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Aggregates {
    // --- FUSE protocol counters (the FuseStats view reads these) ---
    /// Groups successfully created.
    pub groups_created: u64,
    /// Group creations that failed.
    pub creates_failed: u64,
    /// Application notifications delivered.
    pub notifications: u64,
    /// Hard notifications sent.
    pub hard_sent: u64,
    /// Soft notifications sent.
    pub soft_sent: u64,
    /// Repair rounds started.
    pub repairs_started: u64,
    /// Repair rounds failed.
    pub repairs_failed: u64,
    /// Liveness links expired.
    pub links_expired: u64,
    /// Reconciliations after hash disagreement.
    pub reconciles: u64,
    /// Group-state hashes computed.
    pub hashes_computed: u64,
    /// Peers suspected by the liveness plane.
    pub suspects: u64,
    /// Suspicions refuted (would-be false positives).
    pub refutations: u64,
    /// Peers declared dead.
    pub peer_deaths: u64,
    // --- transport counters (the Network accessors read these) ---
    /// Connections broken.
    pub breaks: u64,
    /// Messages silently eaten by the content adversary.
    pub content_drops: u64,
    /// Bytes offered to the transport.
    pub bytes_offered: u64,
    /// Bytes delivered by the transport.
    pub bytes_delivered: u64,
    /// Bytes offered, per message class.
    pub offered_by_class: ClassCounter,
    /// Bytes delivered, per message class.
    pub delivered_by_class: ClassCounter,
    /// Content-adversary drops, per message class.
    pub drops_by_class: ClassCounter,
    // --- logs and distributions ---
    /// Every notification, in canonical `(at, origin, seq)` order after a
    /// merge.
    pub notify_log: Vec<NotifyRecord>,
    /// Scripted phase markers.
    pub phases: Vec<PhaseMark>,
    /// Per-class latency reservoirs (seconds).
    pub latency: BTreeMap<&'static str, Reservoir>,
}

impl Aggregates {
    /// Creates empty aggregates.
    pub fn new() -> Self {
        Aggregates::default()
    }

    /// The latency reservoir for `class`, creating it if absent.
    pub fn latency_reservoir(&mut self, class: &'static str) -> &mut Reservoir {
        self.latency.entry(class).or_default()
    }

    /// Records one latency sample under `class`.
    pub fn add_latency(&mut self, class: &'static str, seconds: f64) {
        self.latency_reservoir(class).add(seconds);
    }

    /// The refuted fraction of suspicions — the detector's false-positive
    /// rate in the QoS sense (suspicions that a live peer later refuted).
    pub fn false_positive_rate(&self) -> f64 {
        self.refutations as f64 / (self.suspects.max(1)) as f64
    }

    /// Absorbs `other`, restoring the canonical log order.
    ///
    /// Merging is commutative and associative up to equality: counters
    /// sum, reservoirs take multiset union, and the logs are re-sorted by
    /// `(at, origin, seq)` / `(at, label)`, which are unique per record.
    pub fn merge_from(&mut self, other: &Aggregates) {
        self.groups_created += other.groups_created;
        self.creates_failed += other.creates_failed;
        self.notifications += other.notifications;
        self.hard_sent += other.hard_sent;
        self.soft_sent += other.soft_sent;
        self.repairs_started += other.repairs_started;
        self.repairs_failed += other.repairs_failed;
        self.links_expired += other.links_expired;
        self.reconciles += other.reconciles;
        self.hashes_computed += other.hashes_computed;
        self.suspects += other.suspects;
        self.refutations += other.refutations;
        self.peer_deaths += other.peer_deaths;
        self.breaks += other.breaks;
        self.content_drops += other.content_drops;
        self.bytes_offered += other.bytes_offered;
        self.bytes_delivered += other.bytes_delivered;
        self.offered_by_class.merge_from(&other.offered_by_class);
        self.delivered_by_class
            .merge_from(&other.delivered_by_class);
        self.drops_by_class.merge_from(&other.drops_by_class);
        self.notify_log.extend_from_slice(&other.notify_log);
        self.notify_log.sort_unstable();
        self.phases.extend_from_slice(&other.phases);
        self.phases.sort_unstable();
        for (class, res) in &other.latency {
            self.latency_reservoir(class).merge_from(res);
        }
    }
}

/// The standard [`ObsSink`]: folds events into [`Aggregates`].
///
/// `origin` identifies the node the recorder is attached to; it is
/// stamped into notification log records so merged logs stay canonically
/// ordered.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    origin: u32,
    agg: Aggregates,
}

impl Recorder {
    /// Creates a recorder with origin 0.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Creates a recorder attached to node `origin`.
    pub fn with_origin(origin: u32) -> Self {
        Recorder {
            origin,
            agg: Aggregates::default(),
        }
    }

    /// The node this recorder is attached to.
    pub fn origin(&self) -> u32 {
        self.origin
    }

    /// Read-only view of the aggregates. Reading never perturbs them.
    pub fn aggregates(&self) -> &Aggregates {
        &self.agg
    }

    /// Consumes the recorder, yielding its aggregates.
    pub fn into_aggregates(self) -> Aggregates {
        self.agg
    }
}

impl ObsSink for Recorder {
    fn record(&mut self, ev: Event) {
        let a = &mut self.agg;
        match ev {
            Event::GroupCreated => a.groups_created += 1,
            Event::CreateFailed => a.creates_failed += 1,
            Event::Notified {
                reason,
                at_nanos,
                seq,
            } => {
                a.notifications += 1;
                a.notify_log.push(NotifyRecord {
                    at_nanos,
                    origin: self.origin,
                    seq,
                    reason,
                });
            }
            Event::HardSent { n } => a.hard_sent += n,
            Event::SoftSent => a.soft_sent += 1,
            Event::RepairStarted => a.repairs_started += 1,
            Event::RepairFailed => a.repairs_failed += 1,
            Event::LinkExpired => a.links_expired += 1,
            Event::Reconciled => a.reconciles += 1,
            Event::HashComputed => a.hashes_computed += 1,
            Event::PeerSuspected => a.suspects += 1,
            Event::PeerRefuted => a.refutations += 1,
            Event::PeerDead => a.peer_deaths += 1,
            Event::BytesOffered { class, bytes } => {
                a.bytes_offered += bytes;
                a.offered_by_class.bump_by(class, bytes);
            }
            Event::BytesDelivered { class, bytes } => {
                a.bytes_delivered += bytes;
                a.delivered_by_class.bump_by(class, bytes);
            }
            Event::ContentDropped { class } => {
                a.content_drops += 1;
                a.drops_by_class.bump(class);
            }
            Event::ConnectionBroken => a.breaks += 1,
            Event::PhaseStart { label, at_nanos } => {
                a.phases.push(PhaseMark { at_nanos, label });
            }
            Event::LatencySample { class, seconds } => a.add_latency(class, seconds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn notified(r: &mut Recorder, reason: ReasonKind, at_nanos: u64, seq: u64) {
        r.record(Event::Notified {
            reason,
            at_nanos,
            seq,
        });
    }

    #[test]
    fn recorder_folds_every_event_kind() {
        let mut r = Recorder::with_origin(7);
        r.record(Event::GroupCreated);
        r.record(Event::CreateFailed);
        notified(&mut r, ReasonKind::LivenessExpired, 5, 1);
        r.record(Event::HardSent { n: 3 });
        r.record(Event::SoftSent);
        r.record(Event::RepairStarted);
        r.record(Event::RepairFailed);
        r.record(Event::LinkExpired);
        r.record(Event::Reconciled);
        r.record(Event::HashComputed);
        r.record(Event::PeerSuspected);
        r.record(Event::PeerRefuted);
        r.record(Event::PeerDead);
        r.record(Event::BytesOffered {
            class: "ping",
            bytes: 40,
        });
        r.record(Event::BytesDelivered {
            class: "ping",
            bytes: 40,
        });
        r.record(Event::ContentDropped { class: "ack" });
        r.record(Event::ConnectionBroken);
        r.record(Event::PhaseStart {
            label: "kill",
            at_nanos: 2,
        });
        r.record(Event::LatencySample {
            class: "kill",
            seconds: 1.5,
        });
        let a = r.aggregates();
        assert_eq!(a.groups_created, 1);
        assert_eq!(a.creates_failed, 1);
        assert_eq!(a.notifications, 1);
        assert_eq!(a.hard_sent, 3);
        assert_eq!(a.soft_sent, 1);
        assert_eq!(a.repairs_started, 1);
        assert_eq!(a.repairs_failed, 1);
        assert_eq!(a.links_expired, 1);
        assert_eq!(a.reconciles, 1);
        assert_eq!(a.hashes_computed, 1);
        assert_eq!(a.suspects, 1);
        assert_eq!(a.refutations, 1);
        assert_eq!(a.peer_deaths, 1);
        assert_eq!(a.breaks, 1);
        assert_eq!(a.content_drops, 1);
        assert_eq!(a.bytes_offered, 40);
        assert_eq!(a.bytes_delivered, 40);
        assert_eq!(a.offered_by_class.get("ping"), 40);
        assert_eq!(a.drops_by_class.get("ack"), 1);
        assert_eq!(
            a.notify_log,
            vec![NotifyRecord {
                at_nanos: 5,
                origin: 7,
                seq: 1,
                reason: ReasonKind::LivenessExpired
            }]
        );
        assert_eq!(a.phases.len(), 1);
        assert_eq!(a.latency["kill"].len(), 1);
        assert_eq!(a.false_positive_rate(), 1.0);
    }

    #[test]
    fn merge_is_partition_invariant() {
        // The same event stream, recorded whole vs split across two
        // recorders and merged in either order, aggregates identically.
        let mut whole = Recorder::with_origin(1);
        let mut part_a = Recorder::with_origin(1);
        let mut part_b = Recorder::with_origin(1);
        let events = [
            Event::GroupCreated,
            Event::BytesOffered {
                class: "ping",
                bytes: 10,
            },
            Event::Notified {
                reason: ReasonKind::ExplicitSignal,
                at_nanos: 3,
                seq: 1,
            },
            Event::PeerSuspected,
            Event::Notified {
                reason: ReasonKind::LivenessExpired,
                at_nanos: 9,
                seq: 2,
            },
            Event::LatencySample {
                class: "kill",
                seconds: 2.0,
            },
            Event::LatencySample {
                class: "kill",
                seconds: 1.0,
            },
        ];
        for (i, ev) in events.iter().enumerate() {
            whole.record(*ev);
            if i % 2 == 0 {
                part_a.record(*ev);
            } else {
                part_b.record(*ev);
            }
        }
        let mut whole_agg = whole.into_aggregates();
        // Canonicalize the whole-stream log the same way merges do.
        let empty = Aggregates::new();
        whole_agg.merge_from(&empty);

        let mut ab = Aggregates::new();
        ab.merge_from(part_a.aggregates());
        ab.merge_from(part_b.aggregates());
        let mut ba = Aggregates::new();
        ba.merge_from(part_b.aggregates());
        ba.merge_from(part_a.aggregates());
        assert_eq!(ab, ba, "merge order must not matter");
        assert_eq!(ab, whole_agg, "partitioning must not matter");
        assert_eq!(ab.notify_log.len(), 2);
        assert_eq!(ab.notify_log[0].seq, 1, "canonical order by (at, ...)");
    }

    #[test]
    fn false_positive_rate_handles_zero_suspicions() {
        let a = Aggregates::new();
        assert_eq!(a.false_positive_rate(), 0.0);
    }
}
