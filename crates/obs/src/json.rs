//! Minimal JSON reader/writer for the `BENCH_*.json` documents.
//!
//! The workspace has no serde; the bench gate only needs to pull numbers
//! out of the documents the bench runner itself emits, so a ~100-line
//! recursive-descent parser covers it: objects, arrays, strings (no escape
//! exotica beyond `\"`, `\\`, `\/`, `\n`, `\t`, `\r`), numbers, booleans,
//! null. [`render`] is the inverse — it exists so tools like `fuse-load`
//! and `chaos explore --slo` can splice a section into an existing
//! `BENCH_*.json` (parse, mutate, re-render) without a serializer
//! dependency. It lives here rather than in `fuse_bench` so crates below
//! the bench crate in the dependency graph can use it.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a dot-separated path of object keys (e.g.
    /// `"wire_hot_path.sha1.16384B.auto_gib_s"`).
    pub fn get(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for key in path.split('.') {
            match cur {
                Value::Obj(fields) => {
                    cur = &fields.iter().find(|(k, _)| k == key)?.1;
                }
                _ => return None,
            }
        }
        Some(cur)
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// On an object: replaces the value under `key`, or appends the pair if
    /// the key is absent. Panics on non-objects (a usage bug — the bench
    /// documents are always rooted in an object).
    pub fn set(&mut self, key: &str, value: Value) {
        let Value::Obj(fields) = self else {
            panic!("Value::set on a non-object");
        };
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => fields.push((key.to_string(), value)),
        }
    }
}

/// Renders a value back to JSON text (2-space indent, document field
/// order preserved). Non-finite numbers render as `null` — JSON has no
/// spelling for them, and a gate metric that went NaN should read as
/// missing, not parse-error the whole document.
pub fn render(v: &Value) -> String {
    let mut out = String::new();
    render_into(v, 0, &mut out);
    out.push('\n');
    out
}

fn render_into(v: &Value, indent: usize, out: &mut String) {
    let pad = |n: usize, out: &mut String| out.push_str(&"  ".repeat(n));
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) if n.is_finite() => out.push_str(&format!("{n}")),
        Value::Num(_) => out.push_str("null"),
        Value::Str(s) => render_string(s, out),
        Value::Arr(items) if items.is_empty() => out.push_str("[]"),
        Value::Arr(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                pad(indent + 1, out);
                render_into(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            pad(indent, out);
            out.push(']');
        }
        Value::Obj(fields) if fields.is_empty() => out.push_str("{}"),
        Value::Obj(fields) => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                pad(indent + 1, out);
                render_string(k, out);
                out.push_str(": ");
                render_into(val, indent + 1, out);
                out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
            }
            pad(indent, out);
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    other => return Err(format!("unsupported escape \\{}", *other as char)),
                });
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 passes through byte-wise.
                let len = utf8_len(c);
                let chunk = b.get(*pos..*pos + len).ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        fields.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents_and_paths() {
        let doc = r#"{
            "a": {"b": {"c": 1.5, "16384B": 2}},
            "list": [1, 2, 3],
            "s": "hi \"there\"",
            "t": true, "n": null
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a.b.c").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("a.b.16384B").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("t"), Some(&Value::Bool(true)));
        assert_eq!(v.get("n"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
        assert_eq!(
            v.get("list"),
            Some(&Value::Arr(vec![
                Value::Num(1.0),
                Value::Num(2.0),
                Value::Num(3.0)
            ]))
        );
        assert_eq!(v.get("s"), Some(&Value::Str("hi \"there\"".into())));
    }

    #[test]
    fn parses_own_bench_output_shapes() {
        let doc = r#"{"x": -1.25e3, "y": 0.000, "z": {"k": [{"q": 7}]}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("x").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(v.get("y").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn render_round_trips_through_parse() {
        let doc = r#"{
            "pr": 9,
            "a": {"b": {"c": 1.5, "16384B": 2}},
            "list": [1, -2.25, 3e3],
            "s": "hi \"there\"\nline two",
            "t": true, "n": null, "empty": {}, "earr": []
        }"#;
        let v = parse(doc).unwrap();
        let text = render(&v);
        let back = parse(&text).expect("rendered text parses");
        assert_eq!(back, v, "parse(render(v)) == v");
    }

    #[test]
    fn set_replaces_and_appends() {
        let mut v = parse(r#"{"pr": 7, "x": 1}"#).unwrap();
        v.set("pr", Value::Num(9.0));
        v.set(
            "node_load",
            Value::Obj(vec![("nodes".into(), Value::Num(10.0))]),
        );
        assert_eq!(v.get("pr").unwrap().as_f64(), Some(9.0));
        assert_eq!(v.get("node_load.nodes").unwrap().as_f64(), Some(10.0));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
