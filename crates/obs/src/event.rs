//! The typed observation grammar.
//!
//! Instrumented code (the FUSE protocol layer, the simulated network, the
//! chaos runner) emits [`Event`]s through an [`ObsSink`] instead of
//! mutating bespoke counter structs. Events are plain-old-data: class
//! labels are `&'static str`, timestamps are nanosecond counts stamped by
//! the caller from its driver's clock, and notification reasons are the
//! payload-free [`ReasonKind`] mirror of the wire-level reason enum.

/// Why a group burned, as a payload-free tag.
///
/// Mirrors `fuse_core`'s `NotifyReason` variant-for-variant (that crate
/// owns the wire encoding; this one owns aggregation), so recorded events
/// stay comparable across planes and shard counts without string labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReasonKind {
    /// A member deliberately signalled the group.
    ExplicitSignal,
    /// Group creation did not complete.
    CreateFailed,
    /// A liveness link expired without refutation.
    LivenessExpired,
    /// A repair round exhausted its budget.
    RepairFailed,
    /// A transport connection to a group peer broke.
    ConnectionBroken,
    /// A message referenced a group this node no longer knows.
    UnknownGroup,
}

impl ReasonKind {
    /// The canonical lowercase label (matches `NotifyReason::label`).
    pub fn label(self) -> &'static str {
        match self {
            ReasonKind::ExplicitSignal => "explicit-signal",
            ReasonKind::CreateFailed => "create-failed",
            ReasonKind::LivenessExpired => "liveness-expired",
            ReasonKind::RepairFailed => "repair-failed",
            ReasonKind::ConnectionBroken => "connection-broken",
            ReasonKind::UnknownGroup => "unknown-group",
        }
    }

    /// The coarse outcome class — the plane-agnostic projection.
    ///
    /// The per-group and shared liveness planes can legitimately detect
    /// the same failure through different paths (a liveness expiry on one,
    /// a broken connection or failed repair on the other), so cross-plane
    /// comparisons hold outcomes equal at this granularity, not per
    /// detection path.
    pub fn class(self) -> ReasonClass {
        match self {
            ReasonKind::ExplicitSignal => ReasonClass::Signaled,
            ReasonKind::CreateFailed => ReasonClass::CreateFailed,
            ReasonKind::LivenessExpired
            | ReasonKind::RepairFailed
            | ReasonKind::ConnectionBroken
            | ReasonKind::UnknownGroup => ReasonClass::Detected,
        }
    }
}

impl std::fmt::Display for ReasonKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The coarse burn-outcome class a [`ReasonKind`] projects onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReasonClass {
    /// Application-initiated (explicit signal).
    Signaled,
    /// The group never finished forming.
    CreateFailed,
    /// The failure detector fired (any detection path).
    Detected,
}

/// One typed observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A group finished forming on this node.
    GroupCreated,
    /// A group creation attempt failed.
    CreateFailed,
    /// The application was notified that a group burned. `at_nanos` is
    /// driver time; `seq` is the notification sequence number.
    Notified {
        /// Why the group burned.
        reason: ReasonKind,
        /// Driver timestamp (nanoseconds since the driver's epoch).
        at_nanos: u64,
        /// Notification sequence number.
        seq: u64,
    },
    /// `n` hard notifications were sent.
    HardSent {
        /// How many were sent.
        n: u64,
    },
    /// A soft notification was sent.
    SoftSent,
    /// A repair round started.
    RepairStarted,
    /// A repair round failed.
    RepairFailed,
    /// A liveness link expired.
    LinkExpired,
    /// A state reconciliation ran after a hash disagreement.
    Reconciled,
    /// A group-state hash was computed.
    HashComputed,
    /// The liveness plane suspected a peer.
    PeerSuspected,
    /// A suspicion was refuted (the peer proved alive) — a would-be
    /// false positive.
    PeerRefuted,
    /// A peer was declared dead.
    PeerDead,
    /// `bytes` were offered to the transport for a message of `class`.
    BytesOffered {
        /// Message class label.
        class: &'static str,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// `bytes` were delivered by the transport.
    BytesDelivered {
        /// Message class label.
        class: &'static str,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// The content adversary silently ate a message of `class`.
    ContentDropped {
        /// Message class label.
        class: &'static str,
    },
    /// A transport connection broke.
    ConnectionBroken,
    /// A scripted phase began (chaos runner marker).
    PhaseStart {
        /// Phase label (e.g. the fault class it provokes).
        label: &'static str,
        /// Driver timestamp (nanoseconds since the driver's epoch).
        at_nanos: u64,
    },
    /// A measured latency sample, in seconds, under a class label.
    LatencySample {
        /// Sample class label (e.g. `"kill"`).
        class: &'static str,
        /// The measured latency in seconds.
        seconds: f64,
    },
}

/// Where instrumented code sends its events.
///
/// The standard implementation is [`crate::Recorder`]; tests can supply
/// their own to assert on raw event streams.
pub trait ObsSink {
    /// Accepts one event.
    fn record(&mut self, ev: Event);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_labels_and_classes_are_stable() {
        let all = [
            ReasonKind::ExplicitSignal,
            ReasonKind::CreateFailed,
            ReasonKind::LivenessExpired,
            ReasonKind::RepairFailed,
            ReasonKind::ConnectionBroken,
            ReasonKind::UnknownGroup,
        ];
        let labels: Vec<_> = all.iter().map(|r| r.label()).collect();
        assert_eq!(
            labels,
            [
                "explicit-signal",
                "create-failed",
                "liveness-expired",
                "repair-failed",
                "connection-broken",
                "unknown-group"
            ]
        );
        assert_eq!(ReasonKind::ExplicitSignal.class(), ReasonClass::Signaled);
        assert_eq!(ReasonKind::CreateFailed.class(), ReasonClass::CreateFailed);
        for r in &all[2..] {
            assert_eq!(r.class(), ReasonClass::Detected, "{r}");
        }
    }
}
