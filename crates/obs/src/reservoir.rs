//! The one shared quantile/percentile implementation.
//!
//! The paper reports 25th/50th/75th percentiles (Figures 7–8), CDFs
//! (Figures 6, 9, 11) and simple rates (Figure 10); the bench and load
//! reports add p99/p999 tails. [`Reservoir`] and [`Cdf`] regenerate
//! exactly those shapes, for every consumer in the workspace.

/// Streaming collection of samples with percentile extraction.
///
/// Samples are kept in full (experiments collect at most a few hundred
/// thousand points) and sorted lazily on first query. Two reservoirs
/// compare equal when they hold the same multiset of samples — the lazy
/// sort state is not observable.
#[derive(Debug, Clone, Default)]
pub struct Reservoir {
    samples: Vec<f64>,
    sorted: bool,
}

impl Reservoir {
    /// Creates an empty reservoir.
    pub fn new() -> Self {
        Reservoir::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "non-finite sample");
        self.samples.push(v);
        self.sorted = false;
    }

    /// Builds a reservoir from raw samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut r = Reservoir::new();
        for &v in samples {
            r.add(v);
        }
        r
    }

    /// Absorbs every sample of `other`. Merging is commutative and
    /// associative up to reservoir equality, which is what makes
    /// per-shard aggregates shard-count-invariant.
    pub fn merge_from(&mut self, other: &Reservoir) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples, in insertion order until a quantile query sorts
    /// them (treat as an unordered multiset).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }

    /// Returns the `q`-quantile (0.0 ..= 1.0) using nearest-rank
    /// interpolation, or `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        self.ensure_sorted();
        let n = self.samples.len();
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Largest sample.
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.last().copied()
    }

    /// Smallest sample.
    pub fn min(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.first().copied()
    }

    /// Consumes the reservoir, producing a full CDF.
    pub fn into_cdf(mut self) -> Cdf {
        self.ensure_sorted();
        Cdf {
            sorted: self.samples,
        }
    }
}

impl PartialEq for Reservoir {
    /// Multiset equality: insertion order and lazy-sort state are
    /// implementation details, not observable values.
    fn eq(&self, other: &Self) -> bool {
        if self.samples.len() != other.samples.len() {
            return false;
        }
        let mut a = self.samples.clone();
        let mut b = other.samples.clone();
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        a == b
    }
}

/// An empirical cumulative distribution function over collected samples.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from raw samples.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Cdf { sorted: samples }
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Value at quantile `q` (nearest rank).
    pub fn value_at(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        assert!((0.0..=1.0).contains(&q));
        let idx = ((q * (self.sorted.len() - 1) as f64).round()) as usize;
        Some(self.sorted[idx])
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` when the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Renders the CDF as `(value, fraction)` points, downsampled to at most
    /// `max_points` evenly spaced ranks — the series a plot would show.
    pub fn series(&self, max_points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || max_points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        let step = (n.max(max_points) / max_points).max(1);
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            out.push((self.sorted[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|&(v, _)| v) != self.sorted.last().copied() {
            out.push((*self.sorted.last().expect("non-empty"), 1.0));
        }
        out
    }
}

/// Counts events per named class; renders rates over a time window.
///
/// Used for the Figure 10 "messages per second" accounting and the
/// per-class byte accounting in [`crate::Aggregates`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassCounter {
    counts: std::collections::BTreeMap<&'static str, u64>,
}

impl ClassCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        ClassCounter::default()
    }

    /// Adds one event of class `name`.
    pub fn bump(&mut self, name: &'static str) {
        *self.counts.entry(name).or_insert(0) += 1;
    }

    /// Adds `n` events of class `name`.
    pub fn bump_by(&mut self, name: &'static str, n: u64) {
        *self.counts.entry(name).or_insert(0) += n;
    }

    /// Adds every count of `other` into this counter.
    pub fn merge_from(&mut self, other: &ClassCounter) {
        for (name, n) in other.iter() {
            self.bump_by(name, n);
        }
    }

    /// Total events across all classes.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Count for one class.
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Iterates `(class, count)` in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Resets all counts to zero, keeping the class keys.
    pub fn clear(&mut self) {
        for v in self.counts.values_mut() {
            *v = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_distribution() {
        let mut s = Reservoir::new();
        for i in 1..=100 {
            s.add(i as f64);
        }
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
        let med = s.median().unwrap();
        assert!((med - 50.5).abs() < 1e-9, "median {med}");
        assert!((s.quantile(0.25).unwrap() - 25.75).abs() < 1e-9);
        assert_eq!(s.mean(), Some(50.5));
    }

    #[test]
    fn empty_reservoir_yields_none() {
        let mut s = Reservoir::new();
        assert_eq!(s.median(), None);
        assert_eq!(s.mean(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn equality_ignores_order_and_sort_state() {
        let mut a = Reservoir::from_samples(&[3.0, 1.0, 2.0]);
        let b = Reservoir::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
        a.median();
        assert_eq!(a, b, "querying a quantile must not affect equality");
        let c = Reservoir::from_samples(&[1.0, 2.0]);
        assert_ne!(a, c);
    }

    #[test]
    fn merge_is_order_insensitive() {
        let parts = [vec![5.0, 1.0], vec![3.0], vec![4.0, 2.0]];
        let mut fwd = Reservoir::new();
        for p in &parts {
            fwd.merge_from(&Reservoir::from_samples(p));
        }
        let mut rev = Reservoir::new();
        for p in parts.iter().rev() {
            rev.merge_from(&Reservoir::from_samples(p));
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.len(), 5);
        assert_eq!(fwd.median(), Some(3.0));
    }

    #[test]
    fn cdf_fraction_and_value_agree() {
        let c = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_at_or_below(0.5), 0.0);
        assert_eq!(c.fraction_at_or_below(2.0), 0.5);
        assert_eq!(c.fraction_at_or_below(10.0), 1.0);
        assert_eq!(c.value_at(0.0), Some(1.0));
        assert_eq!(c.value_at(1.0), Some(4.0));
    }

    #[test]
    fn cdf_series_is_monotone_and_ends_at_one() {
        let c = Cdf::from_samples((0..1000).map(|i| i as f64).collect());
        let pts = c.series(32);
        assert!(pts.len() <= 34);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn class_counter_accumulates() {
        let mut c = ClassCounter::new();
        c.bump("ping");
        c.bump("ping");
        c.bump_by("ack", 3);
        assert_eq!(c.get("ping"), 2);
        assert_eq!(c.get("ack"), 3);
        assert_eq!(c.total(), 5);
        let mut d = ClassCounter::new();
        d.bump("ping");
        d.merge_from(&c);
        assert_eq!(d.get("ping"), 3);
        c.clear();
        assert_eq!(c.total(), 0);
    }
}
