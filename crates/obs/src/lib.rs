//! The deterministic observability plane.
//!
//! Every measurement surface in the workspace — protocol counters in
//! `fuse_core`, byte accounting in `fuse_net`, chaos run reports in
//! `fuse_harness`, live-load quantiles in `fuse_load` — reads from this
//! crate instead of keeping its own ad-hoc counter struct. Three pieces:
//!
//! * [`event`] — the typed observation grammar ([`Event`]) and the sink
//!   trait ([`ObsSink`]) instrumented code emits through. Events carry no
//!   strings beyond `&'static str` class labels, so recording is
//!   allocation-light and deterministic.
//! * [`recorder`] — [`Recorder`], the standard sink: folds events into
//!   [`Aggregates`] (named counters, per-class byte accounting, a
//!   notification log, per-class latency reservoirs). Aggregates merge
//!   commutatively and canonically, so summing per-shard (or per-node)
//!   recorders yields bit-identical results for any shard count.
//! * [`reservoir`] — [`Reservoir`], the one shared quantile
//!   implementation (p50/p99/p999 by linear interpolation), plus [`Cdf`]
//!   and [`ClassCounter`] for the experiment figures.
//!
//! The crate is dependency-free and sans-io: it never reads a clock —
//! every event that needs a timestamp carries one, stamped by the caller
//! from its driver's notion of `now`.
//!
//! [`json`] hosts the workspace's minimal JSON reader/writer (moved here
//! from `fuse_bench` so tools below the bench crate in the dependency
//! graph — e.g. the chaos binary's `--slo --merge-into` path — can splice
//! sections into `BENCH_*.json` documents).

pub mod event;
pub mod json;
pub mod recorder;
pub mod reservoir;

pub use event::{Event, ObsSink, ReasonClass, ReasonKind};
pub use recorder::{Aggregates, NotifyRecord, PhaseMark, Recorder};
pub use reservoir::{Cdf, ClassCounter, Reservoir};
