//! Wire-format primitives for the FUSE reproduction.
//!
//! Two facilities live here:
//!
//! * [`codec`] — a compact, deterministic binary encoding with explicit
//!   [`Encode`]/[`Decode`] implementations for every protocol message. Every
//!   simulated message is sized by actually encoding it, so byte accounting
//!   in the experiments (e.g. the 20-byte piggyback hash of paper §7.5) is
//!   measured rather than asserted.
//! * [`sha1`](mod@sha1) — SHA-1, implemented from scratch and validated against the
//!   FIPS 180-1 test vectors. The paper piggybacks "a SHA1 hash (20 bytes)"
//!   of the jointly-monitored FUSE ID list on overlay ping requests (§6.1).

pub mod codec;
pub mod sha1;

pub use codec::{Decode, DecodeError, Encode, Reader, Writer};
pub use sha1::{sha1, Digest, Sha1};
