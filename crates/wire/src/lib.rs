//! Wire-format primitives for the FUSE reproduction.
//!
//! Two facilities live here:
//!
//! * [`codec`] — a compact, deterministic binary encoding with explicit
//!   [`Encode`]/[`Decode`] implementations for every protocol message.
//!   Encoding is **single-pass**: every impl carries an exact arithmetic
//!   [`Encode::size_hint`], so sizing never runs a counting encode and
//!   encoding into a reusable [`EncodeBuf`] is allocation-free in steady
//!   state. Byte accounting in the experiments (e.g. the 20-byte piggyback
//!   hash of paper §7.5) remains exact — the hints are property-tested
//!   against real encodings, and [`codec::twopass`] preserves the original
//!   two-pass path as the differential reference.
//! * [`sha1`](mod@sha1) — SHA-1, implemented from scratch (80-round unrolled
//!   compression; [`sha1::reference`] keeps the rolled loop for differential
//!   tests) and validated against the FIPS 180-1 test vectors. The paper
//!   piggybacks "a SHA1 hash (20 bytes)" of the jointly-monitored FUSE ID
//!   list on overlay ping requests (§6.1).

pub mod codec;
pub mod sha1;

pub use codec::{varint_len, Decode, DecodeError, Encode, EncodeBuf, Reader, Writer};
pub use sha1::{sha1, Digest, Sha1};
