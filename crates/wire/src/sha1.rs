//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! The allowed dependency set contains no cryptographic hash, and the paper's
//! FUSE implementation piggybacks a 20-byte SHA-1 digest on overlay pings, so
//! we implement the function here. SHA-1 is cryptographically broken for
//! collision resistance, but the protocol only needs what the paper needed in
//! 2004: a compact fingerprint whose accidental collision probability is
//! negligible.
//!
//! Two implementations sit behind the one public API:
//!
//! * a **fully unrolled scalar** compression (80 rounds in the standard
//!   four-phase split, 16-word circular message schedule, register rotation
//!   by argument permutation instead of data moves) — the rolled loop
//!   topped out at ~0.27 GiB/s because the per-round `match` and the
//!   80-word schedule array defeated instruction-level parallelism;
//! * on x86-64 with the SHA extensions (runtime-detected), the **SHA-NI**
//!   block function (`sha1rnds4`/`sha1nexte`/`sha1msg1`/`sha1msg2`),
//!   several times faster again.
//!
//! [`reference`](mod@reference) preserves the original rolled
//! implementation and [`sha1_portable`] pins the scalar unrolled path;
//! differential tests hold all paths bit-identical over random inputs and
//! lengths.

/// A 20-byte SHA-1 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 20]);

impl Digest {
    /// Digest of the empty message; used as the "no groups on this link"
    /// sentinel by the piggyback layer.
    pub fn of_empty() -> Self {
        sha1(&[])
    }

    /// Hex rendering, mostly for debugging and test assertions.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(40);
        for b in self.0 {
            use std::fmt::Write as _;
            write!(s, "{b:02x}").expect("write to String cannot fail");
        }
        s
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sha1:{}", &self.to_hex()[..12])
    }
}

const K0: u32 = 0x5A827999;
const K1: u32 = 0x6ED9EBA1;
const K2: u32 = 0x8F1BBCDC;
const K3: u32 = 0xCA62C1D6;

/// One schedule expansion: `w[i & 15]` becomes word `i` (`i >= 16`),
/// overwriting the slot whose value is no longer needed.
macro_rules! sched {
    ($w:ident, $i:literal) => {{
        let t = $w[($i + 13) & 15] ^ $w[($i + 8) & 15] ^ $w[($i + 2) & 15] ^ $w[$i & 15];
        $w[$i & 15] = t.rotate_left(1);
        $w[$i & 15]
    }};
}

/// Round with f = Ch(b,c,d) (rounds 0–19), in the 3-op form
/// `d ^ (b & (c ^ d))`. The five state registers rotate by argument
/// permutation at the call sites, so each round is pure ALU work on locals:
/// no shuffling moves, no round-number branch.
macro_rules! r_ch {
    ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $wi:expr) => {
        $e = $e
            .wrapping_add($a.rotate_left(5))
            .wrapping_add($d ^ ($b & ($c ^ $d)))
            .wrapping_add(K0)
            .wrapping_add($wi);
        $b = $b.rotate_left(30);
    };
}

/// Round with f = Parity(b,c,d) (rounds 20–39 and 60–79; `$k` picks the
/// phase constant).
macro_rules! r_par {
    ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $k:expr, $wi:expr) => {
        $e = $e
            .wrapping_add($a.rotate_left(5))
            .wrapping_add($b ^ $c ^ $d)
            .wrapping_add($k)
            .wrapping_add($wi);
        $b = $b.rotate_left(30);
    };
}

/// Round with f = Maj(b,c,d) (rounds 40–59), in the 4-op form
/// `(b & c) | (d & (b | c))`.
macro_rules! r_maj {
    ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $wi:expr) => {
        $e = $e
            .wrapping_add($a.rotate_left(5))
            .wrapping_add(($b & $c) | ($d & ($b | $c)))
            .wrapping_add(K2)
            .wrapping_add($wi);
        $b = $b.rotate_left(30);
    };
}

/// Fully unrolled SHA-1 compression of one 64-byte block into `state`.
fn compress(state: &mut [u32; 5], block: &[u8; 64]) {
    let mut w = [0u32; 16];
    for i in 0..16 {
        w[i] = u32::from_be_bytes([
            block[i * 4],
            block[i * 4 + 1],
            block[i * 4 + 2],
            block[i * 4 + 3],
        ]);
    }
    let [mut a, mut b, mut c, mut d, mut e] = *state;

    // Phase 1: Ch, rounds 0..16 from the block, 16..20 from the schedule.
    r_ch!(a, b, c, d, e, w[0]);
    r_ch!(e, a, b, c, d, w[1]);
    r_ch!(d, e, a, b, c, w[2]);
    r_ch!(c, d, e, a, b, w[3]);
    r_ch!(b, c, d, e, a, w[4]);
    r_ch!(a, b, c, d, e, w[5]);
    r_ch!(e, a, b, c, d, w[6]);
    r_ch!(d, e, a, b, c, w[7]);
    r_ch!(c, d, e, a, b, w[8]);
    r_ch!(b, c, d, e, a, w[9]);
    r_ch!(a, b, c, d, e, w[10]);
    r_ch!(e, a, b, c, d, w[11]);
    r_ch!(d, e, a, b, c, w[12]);
    r_ch!(c, d, e, a, b, w[13]);
    r_ch!(b, c, d, e, a, w[14]);
    r_ch!(a, b, c, d, e, w[15]);
    r_ch!(e, a, b, c, d, sched!(w, 16));
    r_ch!(d, e, a, b, c, sched!(w, 17));
    r_ch!(c, d, e, a, b, sched!(w, 18));
    r_ch!(b, c, d, e, a, sched!(w, 19));

    // Phase 2: Parity with K1, rounds 20..40.
    r_par!(a, b, c, d, e, K1, sched!(w, 20));
    r_par!(e, a, b, c, d, K1, sched!(w, 21));
    r_par!(d, e, a, b, c, K1, sched!(w, 22));
    r_par!(c, d, e, a, b, K1, sched!(w, 23));
    r_par!(b, c, d, e, a, K1, sched!(w, 24));
    r_par!(a, b, c, d, e, K1, sched!(w, 25));
    r_par!(e, a, b, c, d, K1, sched!(w, 26));
    r_par!(d, e, a, b, c, K1, sched!(w, 27));
    r_par!(c, d, e, a, b, K1, sched!(w, 28));
    r_par!(b, c, d, e, a, K1, sched!(w, 29));
    r_par!(a, b, c, d, e, K1, sched!(w, 30));
    r_par!(e, a, b, c, d, K1, sched!(w, 31));
    r_par!(d, e, a, b, c, K1, sched!(w, 32));
    r_par!(c, d, e, a, b, K1, sched!(w, 33));
    r_par!(b, c, d, e, a, K1, sched!(w, 34));
    r_par!(a, b, c, d, e, K1, sched!(w, 35));
    r_par!(e, a, b, c, d, K1, sched!(w, 36));
    r_par!(d, e, a, b, c, K1, sched!(w, 37));
    r_par!(c, d, e, a, b, K1, sched!(w, 38));
    r_par!(b, c, d, e, a, K1, sched!(w, 39));

    // Phase 3: Maj, rounds 40..60.
    r_maj!(a, b, c, d, e, sched!(w, 40));
    r_maj!(e, a, b, c, d, sched!(w, 41));
    r_maj!(d, e, a, b, c, sched!(w, 42));
    r_maj!(c, d, e, a, b, sched!(w, 43));
    r_maj!(b, c, d, e, a, sched!(w, 44));
    r_maj!(a, b, c, d, e, sched!(w, 45));
    r_maj!(e, a, b, c, d, sched!(w, 46));
    r_maj!(d, e, a, b, c, sched!(w, 47));
    r_maj!(c, d, e, a, b, sched!(w, 48));
    r_maj!(b, c, d, e, a, sched!(w, 49));
    r_maj!(a, b, c, d, e, sched!(w, 50));
    r_maj!(e, a, b, c, d, sched!(w, 51));
    r_maj!(d, e, a, b, c, sched!(w, 52));
    r_maj!(c, d, e, a, b, sched!(w, 53));
    r_maj!(b, c, d, e, a, sched!(w, 54));
    r_maj!(a, b, c, d, e, sched!(w, 55));
    r_maj!(e, a, b, c, d, sched!(w, 56));
    r_maj!(d, e, a, b, c, sched!(w, 57));
    r_maj!(c, d, e, a, b, sched!(w, 58));
    r_maj!(b, c, d, e, a, sched!(w, 59));

    // Phase 4: Parity with K3, rounds 60..80.
    r_par!(a, b, c, d, e, K3, sched!(w, 60));
    r_par!(e, a, b, c, d, K3, sched!(w, 61));
    r_par!(d, e, a, b, c, K3, sched!(w, 62));
    r_par!(c, d, e, a, b, K3, sched!(w, 63));
    r_par!(b, c, d, e, a, K3, sched!(w, 64));
    r_par!(a, b, c, d, e, K3, sched!(w, 65));
    r_par!(e, a, b, c, d, K3, sched!(w, 66));
    r_par!(d, e, a, b, c, K3, sched!(w, 67));
    r_par!(c, d, e, a, b, K3, sched!(w, 68));
    r_par!(b, c, d, e, a, K3, sched!(w, 69));
    r_par!(a, b, c, d, e, K3, sched!(w, 70));
    r_par!(e, a, b, c, d, K3, sched!(w, 71));
    r_par!(d, e, a, b, c, K3, sched!(w, 72));
    r_par!(c, d, e, a, b, K3, sched!(w, 73));
    r_par!(b, c, d, e, a, K3, sched!(w, 74));
    r_par!(a, b, c, d, e, K3, sched!(w, 75));
    r_par!(e, a, b, c, d, K3, sched!(w, 76));
    r_par!(d, e, a, b, c, K3, sched!(w, 77));
    r_par!(c, d, e, a, b, K3, sched!(w, 78));
    r_par!(b, c, d, e, a, K3, sched!(w, 79));

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
}

/// Compresses a run of whole 64-byte blocks, dispatching to the fastest
/// available implementation: SHA-NI when the CPU has it **and** the run is
/// at least two blocks (the XMM state load/shuffle/store around a single
/// block costs more than the unrolled scalar rounds save — measured ~2×
/// slower on one-shot 64 B inputs, which is what the piggyback digest
/// mostly hashes), else the unrolled scalar rounds.
fn compress_blocks(state: &mut [u32; 5], data: &[u8]) {
    debug_assert_eq!(data.len() % 64, 0);
    #[cfg(target_arch = "x86_64")]
    if data.len() >= 128 && shani::available() {
        // SAFETY: feature presence checked at runtime just above.
        unsafe { shani::compress_blocks(state, data) };
        return;
    }
    for block in data.chunks_exact(64) {
        compress(state, block.try_into().expect("64-byte chunk"));
    }
}

/// The x86-64 SHA-extensions block function — a faithful transliteration of
/// Intel's published `sha1rnds4` schedule (four rounds per step, message
/// words rotating through four XMM registers).
#[cfg(target_arch = "x86_64")]
mod shani {
    use std::arch::x86_64::*;

    /// Whether the running CPU has every extension the block function uses
    /// (`std` caches the detection, so steady-state calls are one relaxed
    /// atomic load).
    pub fn available() -> bool {
        is_x86_feature_detected!("sha")
            && is_x86_feature_detected!("ssse3")
            && is_x86_feature_detected!("sse4.1")
    }

    /// One steady-state 4-round group: absorb `$m0` into the running E,
    /// advance ABCD, and push the message schedule one step.
    macro_rules! grp {
        ($abcd:ident, $e_in:ident, $e_out:ident, $m0:ident, $m1:ident, $m2:ident, $m3:ident, $f:literal) => {
            $e_in = _mm_sha1nexte_epu32($e_in, $m0);
            $e_out = $abcd;
            $m1 = _mm_sha1msg2_epu32($m1, $m0);
            $abcd = _mm_sha1rnds4_epu32::<$f>($abcd, $e_in);
            $m3 = _mm_sha1msg1_epu32($m3, $m0);
            $m2 = _mm_xor_si128($m2, $m0);
        };
    }

    /// # Safety
    /// Requires the `sha`, `ssse3` and `sse4.1` CPU features (see
    /// [`available`]); `data.len()` must be a multiple of 64.
    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    pub unsafe fn compress_blocks(state: &mut [u32; 5], data: &[u8]) {
        // Big-endian lane loads with the word order reversed to match the
        // ABCD register layout (A in the highest lane).
        let mask = _mm_set_epi64x(0x0001020304050607, 0x08090a0b0c0d0e0f);
        let mut abcd = _mm_loadu_si128(state.as_ptr().cast::<__m128i>());
        abcd = _mm_shuffle_epi32::<0x1B>(abcd);
        let mut e0 = _mm_set_epi32(state[4] as i32, 0, 0, 0);
        let mut e1;

        for block in data.chunks_exact(64) {
            let abcd_save = abcd;
            let e0_save = e0;
            let p = block.as_ptr().cast::<__m128i>();
            let mut msg0 = _mm_shuffle_epi8(_mm_loadu_si128(p), mask);
            let mut msg1 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(1)), mask);
            let mut msg2 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(2)), mask);
            let mut msg3 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(3)), mask);

            // Rounds 0–3: plain add, the E chain starts here.
            e0 = _mm_add_epi32(e0, msg0);
            e1 = abcd;
            abcd = _mm_sha1rnds4_epu32::<0>(abcd, e0);

            // Rounds 4–7.
            e1 = _mm_sha1nexte_epu32(e1, msg1);
            e0 = abcd;
            abcd = _mm_sha1rnds4_epu32::<0>(abcd, e1);
            msg0 = _mm_sha1msg1_epu32(msg0, msg1);

            // Rounds 8–11.
            e0 = _mm_sha1nexte_epu32(e0, msg2);
            e1 = abcd;
            abcd = _mm_sha1rnds4_epu32::<0>(abcd, e0);
            msg1 = _mm_sha1msg1_epu32(msg1, msg2);
            msg0 = _mm_xor_si128(msg0, msg2);

            // Rounds 12–15.
            e1 = _mm_sha1nexte_epu32(e1, msg3);
            e0 = abcd;
            msg0 = _mm_sha1msg2_epu32(msg0, msg3);
            abcd = _mm_sha1rnds4_epu32::<0>(abcd, e1);
            msg2 = _mm_sha1msg1_epu32(msg2, msg3);
            msg1 = _mm_xor_si128(msg1, msg3);

            // Rounds 16–67: thirteen steady-state groups.
            grp!(abcd, e0, e1, msg0, msg1, msg2, msg3, 0); // 16–19
            grp!(abcd, e1, e0, msg1, msg2, msg3, msg0, 1); // 20–23
            grp!(abcd, e0, e1, msg2, msg3, msg0, msg1, 1); // 24–27
            grp!(abcd, e1, e0, msg3, msg0, msg1, msg2, 1); // 28–31
            grp!(abcd, e0, e1, msg0, msg1, msg2, msg3, 1); // 32–35
            grp!(abcd, e1, e0, msg1, msg2, msg3, msg0, 1); // 36–39
            grp!(abcd, e0, e1, msg2, msg3, msg0, msg1, 2); // 40–43
            grp!(abcd, e1, e0, msg3, msg0, msg1, msg2, 2); // 44–47
            grp!(abcd, e0, e1, msg0, msg1, msg2, msg3, 2); // 48–51
            grp!(abcd, e1, e0, msg1, msg2, msg3, msg0, 2); // 52–55
            grp!(abcd, e0, e1, msg2, msg3, msg0, msg1, 2); // 56–59
            grp!(abcd, e1, e0, msg3, msg0, msg1, msg2, 3); // 60–63
            grp!(abcd, e0, e1, msg0, msg1, msg2, msg3, 3); // 64–67

            // Rounds 68–71: the schedule stops feeding msg1.
            e1 = _mm_sha1nexte_epu32(e1, msg1);
            e0 = abcd;
            msg2 = _mm_sha1msg2_epu32(msg2, msg1);
            abcd = _mm_sha1rnds4_epu32::<3>(abcd, e1);
            msg3 = _mm_xor_si128(msg3, msg1);

            // Rounds 72–75.
            e0 = _mm_sha1nexte_epu32(e0, msg2);
            e1 = abcd;
            msg3 = _mm_sha1msg2_epu32(msg3, msg2);
            abcd = _mm_sha1rnds4_epu32::<3>(abcd, e0);

            // Rounds 76–79.
            e1 = _mm_sha1nexte_epu32(e1, msg3);
            e0 = abcd;
            abcd = _mm_sha1rnds4_epu32::<3>(abcd, e1);

            // Fold back into the running state.
            e0 = _mm_sha1nexte_epu32(e0, e0_save);
            abcd = _mm_add_epi32(abcd, abcd_save);
        }

        abcd = _mm_shuffle_epi32::<0x1B>(abcd);
        _mm_storeu_si128(state.as_mut_ptr().cast::<__m128i>(), abcd);
        state[4] = _mm_extract_epi32::<3>(e0) as u32;
    }
}

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    len_bytes: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len_bytes: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len_bytes = self.len_bytes.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress_blocks(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        let whole = data.len() - data.len() % 64;
        if whole > 0 {
            compress_blocks(&mut self.state, &data[..whole]);
            data = &data[whole..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finalizes and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len_bytes.wrapping_mul(8);
        // Padding written in place: 0x80, zeros, then the 64-bit big-endian
        // bit length — one extra block only when fewer than 8 length bytes
        // fit after the terminator.
        let n = self.buf_len;
        self.buf[n] = 0x80;
        if n >= 56 {
            self.buf[n + 1..].fill(0);
            let block = self.buf;
            compress_blocks(&mut self.state, &block);
            self.buf.fill(0);
        } else {
            self.buf[n + 1..56].fill(0);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        compress_blocks(&mut self.state, &block);

        let mut out = [0u8; 20];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        Digest(out)
    }
}

/// One-shot SHA-1 of `data` (fastest available path).
pub fn sha1(data: &[u8]) -> Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-1 pinned to the **unrolled scalar** rounds, bypassing any
/// hardware block function — the portable hot path, kept callable so the
/// benchmarks can stake both levels and the differential tests can compare
/// all three implementations on any machine.
pub fn sha1_portable(data: &[u8]) -> Digest {
    let mut state = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];
    let mut block = [0u8; 64];
    let mut chunks = data.chunks_exact(64);
    for c in &mut chunks {
        block.copy_from_slice(c);
        compress(&mut state, &block);
    }
    let rest = chunks.remainder();
    block[..rest.len()].copy_from_slice(rest);
    block[rest.len()] = 0x80;
    if rest.len() >= 56 {
        block[rest.len() + 1..].fill(0);
        compress(&mut state, &block);
        block.fill(0);
    } else {
        block[rest.len() + 1..56].fill(0);
    }
    block[56..].copy_from_slice(&((data.len() as u64).wrapping_mul(8)).to_be_bytes());
    compress(&mut state, &block);
    let mut out = [0u8; 20];
    for (i, w) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
    }
    Digest(out)
}

/// The pre-unroll rolled implementation, preserved as the differential
/// reference: `reference::sha1(x) == sha1(x)` for all `x` (property-tested
/// over random lengths). Not used on any hot path.
pub mod reference {
    use super::Digest;

    fn compress(state: &mut [u32; 5], block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = *state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), super::K0),
                20..=39 => (b ^ c ^ d, super::K1),
                40..=59 => ((b & c) | (b & d) | (c & d), super::K2),
                _ => (b ^ c ^ d, super::K3),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
    }

    /// One-shot rolled-loop SHA-1 (reference for the unrolled hot path).
    pub fn sha1(data: &[u8]) -> Digest {
        let mut state = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];
        let mut block = [0u8; 64];
        let mut chunks = data.chunks_exact(64);
        for c in &mut chunks {
            block.copy_from_slice(c);
            compress(&mut state, &block);
        }
        let rest = chunks.remainder();
        block[..rest.len()].copy_from_slice(rest);
        block[rest.len()] = 0x80;
        if rest.len() >= 56 {
            block[rest.len() + 1..].fill(0);
            compress(&mut state, &block);
            block.fill(0);
        } else {
            block[rest.len() + 1..56].fill(0);
        }
        block[56..].copy_from_slice(&((data.len() as u64).wrapping_mul(8)).to_be_bytes());
        compress(&mut state, &block);
        let mut out = [0u8; 20];
        for (i, w) in state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        Digest(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_180_1_vectors() {
        assert_eq!(
            sha1(b"abc").to_hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            sha1(b"").to_hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_equals_oneshot_at_every_split() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        let expect = sha1(&data);
        for split in 0..data.len() {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn all_implementations_agree_at_all_padding_boundaries() {
        // 0..=130 crosses both the one-block and two-block padding edges
        // (55/56 and 119/120 bytes); `sha1` exercises SHA-NI when present.
        let data: Vec<u8> = (0..131u16)
            .map(|i| (i.wrapping_mul(97) % 256) as u8)
            .collect();
        for len in 0..=data.len() {
            let expect = reference::sha1(&data[..len]);
            assert_eq!(sha1(&data[..len]), expect, "auto path, len {len}");
            assert_eq!(sha1_portable(&data[..len]), expect, "scalar, len {len}");
        }
    }

    #[test]
    fn digest_is_20_bytes_as_the_paper_states() {
        assert_eq!(std::mem::size_of::<Digest>(), 20);
    }
}
