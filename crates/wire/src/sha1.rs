//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! The allowed dependency set contains no cryptographic hash, and the paper's
//! FUSE implementation piggybacks a 20-byte SHA-1 digest on overlay pings, so
//! we implement the function here. SHA-1 is cryptographically broken for
//! collision resistance, but the protocol only needs what the paper needed in
//! 2004: a compact fingerprint whose accidental collision probability is
//! negligible.

/// A 20-byte SHA-1 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 20]);

impl Digest {
    /// Digest of the empty message; used as the "no groups on this link"
    /// sentinel by the piggyback layer.
    pub fn of_empty() -> Self {
        sha1(&[])
    }

    /// Hex rendering, mostly for debugging and test assertions.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(40);
        for b in self.0 {
            use std::fmt::Write as _;
            write!(s, "{b:02x}").expect("write to String cannot fail");
        }
        s
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sha1:{}", &self.to_hex()[..12])
    }
}

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    len_bytes: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len_bytes: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len_bytes = self.len_bytes.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finalizes and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len_bytes.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // Manual final block write: appending the length must not re-count it.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 20];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_180_1_vectors() {
        assert_eq!(
            sha1(b"abc").to_hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            sha1(b"").to_hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_equals_oneshot_at_every_split() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        let expect = sha1(&data);
        for split in 0..data.len() {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn digest_is_20_bytes_as_the_paper_states() {
        assert_eq!(std::mem::size_of::<Digest>(), 20);
    }
}
