//! Compact deterministic binary codec.
//!
//! Protocol messages implement [`Encode`]/[`Decode`] by hand (the codebase
//! avoids proc-macro dependencies). Integers use LEB128 varints, so small
//! values — the common case for counters and indices — cost one byte;
//! fixed-width forms are available where the paper specifies exact sizes
//! (the 20-byte SHA-1 digest travels as raw bytes).
//!
//! Every message's on-wire size is obtained by encoding into a counting
//! writer; experiment byte accounting therefore reflects the real encoding.

use bytes::{BufMut, Bytes, BytesMut};

use crate::sha1::Digest;

/// Encoding sink. Implemented for a growing buffer and for a pure counter.
pub trait Writer {
    /// Appends raw bytes.
    fn put(&mut self, bytes: &[u8]);
}

/// Buffer-backed writer producing [`Bytes`].
#[derive(Default)]
pub struct BufWriter {
    buf: BytesMut,
}

impl BufWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BufWriter::default()
    }

    /// Finishes, returning the encoded bytes.
    pub fn into_bytes(self) -> Bytes {
        self.buf.freeze()
    }
}

impl Writer for BufWriter {
    fn put(&mut self, bytes: &[u8]) {
        self.buf.put_slice(bytes);
    }
}

/// Size-only writer: counts bytes without storing them.
#[derive(Default)]
pub struct CountWriter {
    count: usize,
}

impl CountWriter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        CountWriter::default()
    }

    /// Bytes "written" so far.
    pub fn count(&self) -> usize {
        self.count
    }
}

impl Writer for CountWriter {
    fn put(&mut self, bytes: &[u8]) {
        self.count += bytes.len();
    }
}

/// Decoding error: truncated input or invalid representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    Truncated,
    /// A length prefix or discriminant was out of range.
    Invalid(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated input"),
            DecodeError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decoding cursor over a byte slice.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Remaining undecoded bytes.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Fails unless the whole input was consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::Invalid("trailing bytes"))
        }
    }
}

/// Value that can be written to the wire.
pub trait Encode {
    /// Encodes `self` into `w`.
    fn encode(&self, w: &mut dyn Writer);

    /// On-wire size in bytes (by counting a real encode).
    fn wire_size(&self) -> usize {
        let mut c = CountWriter::new();
        self.encode(&mut c);
        c.count()
    }

    /// Convenience: encodes into a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut w = BufWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// Value that can be read back from the wire.
pub trait Decode: Sized {
    /// Decodes one value, advancing the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Convenience: decodes a complete buffer, rejecting trailing bytes.
    fn from_bytes(data: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(data);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

/// Writes a LEB128 varint.
pub fn put_varint(w: &mut dyn Writer, mut v: u64) {
    loop {
        let mut byte = (v & 0x7f) as u8;
        v >>= 7;
        if v != 0 {
            byte |= 0x80;
        }
        w.put(&[byte]);
        if v == 0 {
            break;
        }
    }
}

/// Reads a LEB128 varint.
pub fn get_varint(r: &mut Reader<'_>) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = r.take(1)?[0];
        if shift == 63 && byte > 1 {
            return Err(DecodeError::Invalid("varint overflow"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError::Invalid("varint too long"));
        }
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut dyn Writer) {
        put_varint(w, *self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        get_varint(r)
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut dyn Writer) {
        put_varint(w, u64::from(*self));
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let v = get_varint(r)?;
        u32::try_from(v).map_err(|_| DecodeError::Invalid("u32 overflow"))
    }
}

impl Encode for u16 {
    fn encode(&self, w: &mut dyn Writer) {
        put_varint(w, u64::from(*self));
    }
}

impl Decode for u16 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let v = get_varint(r)?;
        u16::try_from(v).map_err(|_| DecodeError::Invalid("u16 overflow"))
    }
}

impl Encode for u8 {
    fn encode(&self, w: &mut dyn Writer) {
        w.put(&[*self]);
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(r.take(1)?[0])
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut dyn Writer) {
        w.put(&[u8::from(*self)]);
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid("bool")),
        }
    }
}

impl Encode for usize {
    fn encode(&self, w: &mut dyn Writer) {
        put_varint(w, *self as u64);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let v = get_varint(r)?;
        usize::try_from(v).map_err(|_| DecodeError::Invalid("usize overflow"))
    }
}

impl Encode for String {
    fn encode(&self, w: &mut dyn Writer) {
        put_varint(w, self.len() as u64);
        w.put(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = get_varint(r)? as usize;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Invalid("utf-8"))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut dyn Writer) {
        put_varint(w, self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = get_varint(r)? as usize;
        // Guard against absurd length prefixes on truncated input.
        if len > r.remaining().saturating_mul(8).saturating_add(16) {
            return Err(DecodeError::Invalid("length prefix too large"));
        }
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut dyn Writer) {
        match self {
            None => w.put(&[0]),
            Some(v) => {
                w.put(&[1]);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(DecodeError::Invalid("option tag")),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut dyn Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl Encode for Bytes {
    fn encode(&self, w: &mut dyn Writer) {
        put_varint(w, self.len() as u64);
        w.put(self);
    }
}

impl Decode for Bytes {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = get_varint(r)? as usize;
        let raw = r.take(len)?;
        Ok(Bytes::copy_from_slice(raw))
    }
}

impl Encode for Digest {
    fn encode(&self, w: &mut dyn Writer) {
        // Fixed 20 bytes, exactly as the paper's piggyback hash.
        w.put(&self.0);
    }
}

impl Decode for Digest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let raw = r.take(20)?;
        let mut d = [0u8; 20];
        d.copy_from_slice(raw);
        Ok(Digest(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), v.wire_size());
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            roundtrip(v);
        }
    }

    #[test]
    fn varint_is_compact_for_small_values() {
        assert_eq!(5u64.wire_size(), 1);
        assert_eq!(127u64.wire_size(), 1);
        assert_eq!(128u64.wire_size(), 2);
    }

    #[test]
    fn truncated_varint_fails() {
        let mut r = Reader::new(&[0x80]);
        assert_eq!(get_varint(&mut r), Err(DecodeError::Truncated));
    }

    #[test]
    fn overlong_varint_fails() {
        let bytes = [0xff; 11];
        let mut r = Reader::new(&bytes);
        assert!(get_varint(&mut r).is_err());
    }

    #[test]
    fn strings_and_vecs_roundtrip() {
        roundtrip(String::from("fuse-group-1"));
        roundtrip(String::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(42u64));
        roundtrip(Option::<u64>::None);
        roundtrip((7u64, String::from("x")));
    }

    #[test]
    fn digest_is_exactly_20_wire_bytes() {
        let d = crate::sha1::sha1(b"group list");
        assert_eq!(d.wire_size(), 20);
        roundtrip(d);
    }

    #[test]
    fn invalid_bool_and_option_tags_fail() {
        assert!(bool::from_bytes(&[2]).is_err());
        assert!(Option::<u8>::from_bytes(&[9]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        assert!(u8::from_bytes(&[1, 2]).is_err());
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        // Vec claims 2^40 elements with 1 byte of payload.
        let mut w = BufWriter::new();
        put_varint(&mut w, 1 << 40);
        let mut b = w.into_bytes().to_vec();
        b.push(0);
        assert!(Vec::<u64>::from_bytes(&b).is_err());
    }
}
