//! Compact deterministic binary codec — single-pass on the hot path.
//!
//! Protocol messages implement [`Encode`]/[`Decode`] by hand (the codebase
//! avoids proc-macro dependencies). Integers use LEB128 varints, so small
//! values — the common case for counters and indices — cost one byte;
//! fixed-width forms are available where the paper specifies exact sizes
//! (the 20-byte SHA-1 digest travels as raw bytes).
//!
//! # The size-hint contract
//!
//! Every [`Encode`] impl provides [`size_hint`](Encode::size_hint): a cheap
//! arithmetic bound on the encoded length with the contract
//!
//! > `encoded_len <= size_hint()`, and for every type in this workspace the
//! > bound is **exact** (`encoded_len == size_hint()`).
//!
//! Exactness is what makes the encode path single-pass: sizing a message for
//! byte accounting ([`Encode::wire_size`]) is pure arithmetic — no counting
//! encode — and encoding reserves once and writes once. A type whose hint is
//! a loose upper bound must override `wire_size` (none in this workspace
//! does; the property tests pin hints to encoded lengths for every protocol
//! message).
//!
//! # Steady-state, allocation-free encoding
//!
//! [`EncodeBuf`] is a reusable encode scratch owned by long-lived components
//! (`FuseLayer`, benchmark loops): [`EncodeBuf::encode`] clears, reserves
//! `size_hint()` and encodes in one pass, returning the borrowed bytes —
//! zero allocations once the buffer has warmed up to the largest message.
//! [`EncodeBuf::encode_to_bytes`] does the same pass and pays exactly one
//! allocation for the owned [`Bytes`].
//!
//! The pre-PR-3 two-pass path (count via [`twopass::CountWriter`], then grow
//! a fresh buffer) is preserved in [`twopass`] as the reference
//! implementation; differential tests hold the single-pass path bit-identical
//! to it.

use bytes::Bytes;

use crate::sha1::Digest;

/// Encoding sink. Implemented for `Vec<u8>` (the single-pass buffer) and
/// for the two-pass reference writers in [`twopass`].
pub trait Writer {
    /// Appends raw bytes.
    fn put(&mut self, bytes: &[u8]);
}

impl Writer for Vec<u8> {
    fn put(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

/// Reusable single-pass encode buffer.
///
/// Owned by long-lived components so steady-state encodes neither size-count
/// nor allocate: the backing `Vec` is cleared (capacity retained) and
/// reserved to the message's exact [`size_hint`](Encode::size_hint) before
/// the one encode pass.
#[derive(Default)]
pub struct EncodeBuf {
    buf: Vec<u8>,
}

impl EncodeBuf {
    /// Creates an empty buffer (it warms up on first use).
    pub fn new() -> Self {
        EncodeBuf::default()
    }

    /// Creates a buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        EncodeBuf {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Encodes `v` in a single pass and returns the encoded bytes,
    /// borrowed from the reusable buffer. Allocation-free once the buffer
    /// capacity covers the message size.
    pub fn encode<'a, T: Encode + ?Sized>(&'a mut self, v: &T) -> &'a [u8] {
        self.buf.clear();
        let hint = v.size_hint();
        self.buf.reserve(hint);
        v.encode(&mut self.buf);
        debug_assert!(
            self.buf.len() <= hint,
            "size_hint violated: encoded {} bytes, hint {}",
            self.buf.len(),
            hint
        );
        &self.buf
    }

    /// Encodes `v` in a single pass into an owned [`Bytes`]; costs exactly
    /// the one allocation the owned buffer needs.
    pub fn encode_to_bytes<T: Encode + ?Sized>(&mut self, v: &T) -> Bytes {
        Bytes::copy_from_slice(self.encode(v))
    }

    /// Current capacity of the backing buffer.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

/// Number of bytes the LEB128 encoding of `v` occupies (1..=10).
#[inline]
pub fn varint_len(v: u64) -> usize {
    // ceil(significant_bits / 7), with v == 0 still costing one byte.
    let bits = 64 - (v | 1).leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Decoding error: truncated input or invalid representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    Truncated,
    /// A length prefix or discriminant was out of range.
    Invalid(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated input"),
            DecodeError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decoding cursor over a byte slice.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Remaining undecoded bytes.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Fails unless the whole input was consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::Invalid("trailing bytes"))
        }
    }
}

/// Value that can be written to the wire.
pub trait Encode {
    /// Encodes `self` into `w`.
    fn encode(&self, w: &mut dyn Writer);

    /// Cheap arithmetic bound on the encoded length: `encoded_len <=
    /// size_hint()`, exact for every type in this workspace (see the module
    /// docs for the contract).
    fn size_hint(&self) -> usize;

    /// Exact on-wire size in bytes. Defaults to [`size_hint`], which is
    /// exact for every impl here; a type with a loose hint must override
    /// this with a real count (e.g. [`twopass::counted_size`]).
    ///
    /// [`size_hint`]: Encode::size_hint
    fn wire_size(&self) -> usize {
        self.size_hint()
    }

    /// Convenience: single-pass encode into a fresh owned buffer (the
    /// buffer is reserved to `size_hint()` up front — no re-count, no
    /// growth). Hot paths should prefer a reusable [`EncodeBuf`].
    fn to_bytes(&self) -> Bytes {
        let hint = self.size_hint();
        let mut v = Vec::with_capacity(hint);
        self.encode(&mut v);
        debug_assert!(
            v.len() <= hint,
            "size_hint violated: encoded {} bytes, hint {hint}",
            v.len()
        );
        Bytes::from(v)
    }
}

/// Value that can be read back from the wire.
pub trait Decode: Sized {
    /// Decodes one value, advancing the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Convenience: decodes a complete buffer, rejecting trailing bytes.
    fn from_bytes(data: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(data);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

/// The pre-single-pass reference path: size by a counting encode, build
/// bytes by growing a buffer. Kept so differential tests can hold the
/// single-pass codec bit-identical (and size-identical) to the original
/// two-pass implementation; not used on any hot path.
pub mod twopass {
    use super::{Encode, Writer};
    use bytes::{BufMut, Bytes, BytesMut};

    /// Buffer-backed writer producing [`Bytes`] (reference path).
    #[derive(Default)]
    pub struct BufWriter {
        buf: BytesMut,
    }

    impl BufWriter {
        /// Creates an empty writer.
        pub fn new() -> Self {
            BufWriter::default()
        }

        /// Finishes, returning the encoded bytes.
        pub fn into_bytes(self) -> Bytes {
            self.buf.freeze()
        }
    }

    impl Writer for BufWriter {
        fn put(&mut self, bytes: &[u8]) {
            self.buf.put_slice(bytes);
        }
    }

    /// Size-only writer: counts bytes without storing them.
    #[derive(Default)]
    pub struct CountWriter {
        count: usize,
    }

    impl CountWriter {
        /// Creates a zeroed counter.
        pub fn new() -> Self {
            CountWriter::default()
        }

        /// Bytes "written" so far.
        pub fn count(&self) -> usize {
            self.count
        }
    }

    impl Writer for CountWriter {
        fn put(&mut self, bytes: &[u8]) {
            self.count += bytes.len();
        }
    }

    /// On-wire size by running a full counting encode (the original
    /// `wire_size`).
    pub fn counted_size<T: Encode + ?Sized>(v: &T) -> usize {
        let mut c = CountWriter::new();
        v.encode(&mut c);
        c.count()
    }

    /// Encoded bytes by growing a fresh buffer (the original `to_bytes`).
    pub fn to_bytes<T: Encode + ?Sized>(v: &T) -> Bytes {
        let mut w = BufWriter::new();
        v.encode(&mut w);
        w.into_bytes()
    }
}

/// Writes a LEB128 varint (staged on the stack: one `Writer::put` virtual
/// call per varint, not one per byte).
pub fn put_varint(w: &mut dyn Writer, mut v: u64) {
    let mut buf = [0u8; 10];
    let mut n = 0;
    loop {
        let mut byte = (v & 0x7f) as u8;
        v >>= 7;
        if v != 0 {
            byte |= 0x80;
        }
        buf[n] = byte;
        n += 1;
        if v == 0 {
            break;
        }
    }
    w.put(&buf[..n]);
}

/// Reads a LEB128 varint.
pub fn get_varint(r: &mut Reader<'_>) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = r.take(1)?[0];
        if shift == 63 && byte > 1 {
            return Err(DecodeError::Invalid("varint overflow"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError::Invalid("varint too long"));
        }
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut dyn Writer) {
        put_varint(w, *self);
    }

    fn size_hint(&self) -> usize {
        varint_len(*self)
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        get_varint(r)
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut dyn Writer) {
        put_varint(w, u64::from(*self));
    }

    fn size_hint(&self) -> usize {
        varint_len(u64::from(*self))
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let v = get_varint(r)?;
        u32::try_from(v).map_err(|_| DecodeError::Invalid("u32 overflow"))
    }
}

impl Encode for u16 {
    fn encode(&self, w: &mut dyn Writer) {
        put_varint(w, u64::from(*self));
    }

    fn size_hint(&self) -> usize {
        varint_len(u64::from(*self))
    }
}

impl Decode for u16 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let v = get_varint(r)?;
        u16::try_from(v).map_err(|_| DecodeError::Invalid("u16 overflow"))
    }
}

impl Encode for u8 {
    fn encode(&self, w: &mut dyn Writer) {
        w.put(&[*self]);
    }

    fn size_hint(&self) -> usize {
        1
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(r.take(1)?[0])
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut dyn Writer) {
        w.put(&[u8::from(*self)]);
    }

    fn size_hint(&self) -> usize {
        1
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid("bool")),
        }
    }
}

impl Encode for usize {
    fn encode(&self, w: &mut dyn Writer) {
        put_varint(w, *self as u64);
    }

    fn size_hint(&self) -> usize {
        varint_len(*self as u64)
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let v = get_varint(r)?;
        usize::try_from(v).map_err(|_| DecodeError::Invalid("usize overflow"))
    }
}

impl Encode for String {
    fn encode(&self, w: &mut dyn Writer) {
        put_varint(w, self.len() as u64);
        w.put(self.as_bytes());
    }

    fn size_hint(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = get_varint(r)? as usize;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Invalid("utf-8"))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut dyn Writer) {
        put_varint(w, self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }

    fn size_hint(&self) -> usize {
        varint_len(self.len() as u64) + self.iter().map(Encode::size_hint).sum::<usize>()
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = get_varint(r)? as usize;
        // Guard against absurd length prefixes on truncated input.
        if len > r.remaining().saturating_mul(8).saturating_add(16) {
            return Err(DecodeError::Invalid("length prefix too large"));
        }
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut dyn Writer) {
        match self {
            None => w.put(&[0]),
            Some(v) => {
                w.put(&[1]);
                v.encode(w);
            }
        }
    }

    fn size_hint(&self) -> usize {
        1 + self.as_ref().map_or(0, Encode::size_hint)
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(DecodeError::Invalid("option tag")),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut dyn Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }

    fn size_hint(&self) -> usize {
        self.0.size_hint() + self.1.size_hint()
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl Encode for Bytes {
    fn encode(&self, w: &mut dyn Writer) {
        put_varint(w, self.len() as u64);
        w.put(self);
    }

    fn size_hint(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }
}

impl Decode for Bytes {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = get_varint(r)? as usize;
        let raw = r.take(len)?;
        Ok(Bytes::copy_from_slice(raw))
    }
}

impl Encode for Digest {
    fn encode(&self, w: &mut dyn Writer) {
        // Fixed 20 bytes, exactly as the paper's piggyback hash.
        w.put(&self.0);
    }

    fn size_hint(&self) -> usize {
        20
    }
}

impl Decode for Digest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let raw = r.take(20)?;
        let mut d = [0u8; 20];
        d.copy_from_slice(raw);
        Ok(Digest(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), v.wire_size());
        assert_eq!(bytes.len(), v.size_hint(), "hints are exact in-tree");
        assert_eq!(
            bytes.len(),
            twopass::counted_size(&v),
            "single-pass size disagrees with the counting reference"
        );
        assert_eq!(
            &bytes[..],
            &twopass::to_bytes(&v)[..],
            "single-pass bytes disagree with the two-pass reference"
        );
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            roundtrip(v);
        }
    }

    #[test]
    fn varint_len_matches_encoding() {
        for shift in 0..64 {
            for delta in [0u64, 1] {
                let v = (1u64 << shift).wrapping_sub(delta);
                assert_eq!(varint_len(v), v.to_bytes().len(), "v = {v:#x}");
            }
        }
        assert_eq!(varint_len(0), 1);
        assert_eq!(varint_len(u64::MAX), 10);
    }

    #[test]
    fn varint_is_compact_for_small_values() {
        assert_eq!(5u64.wire_size(), 1);
        assert_eq!(127u64.wire_size(), 1);
        assert_eq!(128u64.wire_size(), 2);
    }

    #[test]
    fn truncated_varint_fails() {
        let mut r = Reader::new(&[0x80]);
        assert_eq!(get_varint(&mut r), Err(DecodeError::Truncated));
    }

    #[test]
    fn overlong_varint_fails() {
        let bytes = [0xff; 11];
        let mut r = Reader::new(&bytes);
        assert!(get_varint(&mut r).is_err());
    }

    #[test]
    fn strings_and_vecs_roundtrip() {
        roundtrip(String::from("fuse-group-1"));
        roundtrip(String::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(42u64));
        roundtrip(Option::<u64>::None);
        roundtrip((7u64, String::from("x")));
    }

    #[test]
    fn digest_is_exactly_20_wire_bytes() {
        let d = crate::sha1::sha1(b"group list");
        assert_eq!(d.wire_size(), 20);
        roundtrip(d);
    }

    #[test]
    fn encode_buf_reuses_capacity_and_matches_to_bytes() {
        let mut buf = EncodeBuf::new();
        let msgs: Vec<Vec<u64>> = vec![vec![1, 2, 3], vec![u64::MAX; 64], vec![]];
        // Warm up on the largest message, then ensure later encodes reuse.
        let _ = buf.encode(&msgs[1]);
        let cap = buf.capacity();
        for m in &msgs {
            assert_eq!(buf.encode(m), &m.to_bytes()[..]);
        }
        assert_eq!(buf.capacity(), cap, "warmed buffer must not reallocate");
        let owned = buf.encode_to_bytes(&msgs[0]);
        assert_eq!(&owned[..], &msgs[0].to_bytes()[..]);
    }

    #[test]
    fn invalid_bool_and_option_tags_fail() {
        assert!(bool::from_bytes(&[2]).is_err());
        assert!(Option::<u8>::from_bytes(&[9]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        assert!(u8::from_bytes(&[1, 2]).is_err());
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        // Vec claims 2^40 elements with 1 byte of payload.
        let mut b = Vec::new();
        put_varint(&mut b, 1 << 40);
        b.push(0);
        assert!(Vec::<u64>::from_bytes(&b).is_err());
    }
}
