//! Property tests for the wire codec: round-trip fidelity, decoder
//! robustness against arbitrary (hostile) inputs, and the single-pass
//! contracts — `size_hint()` exactness and bit-identity between the
//! single-pass path (plain `to_bytes`, reusable `EncodeBuf`) and the
//! preserved two-pass reference (`codec::twopass`).

use bytes::Bytes;
use fuse_wire::codec::twopass;
use fuse_wire::{sha1, varint_len, Decode, Encode, EncodeBuf};
use proptest::prelude::*;

/// The full single-pass-vs-two-pass equivalence check for one value.
fn assert_encode_equivalence<T: Encode>(v: &T) -> Result<(), TestCaseError> {
    let single = v.to_bytes();
    let two = twopass::to_bytes(v);
    prop_assert_eq!(&single[..], &two[..], "single-pass != two-pass bytes");
    prop_assert_eq!(single.len(), twopass::counted_size(v), "wire size drifted");
    prop_assert_eq!(single.len(), v.wire_size());
    prop_assert!(v.size_hint() >= single.len(), "size_hint() must bound len");
    prop_assert_eq!(v.size_hint(), single.len(), "hints are exact in-tree");
    let mut buf = EncodeBuf::new();
    prop_assert_eq!(buf.encode(v), &single[..], "EncodeBuf bytes differ");
    Ok(())
}

proptest! {
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let b = v.to_bytes();
        prop_assert_eq!(u64::from_bytes(&b).unwrap(), v);
        prop_assert_eq!(b.len(), v.wire_size());
        prop_assert_eq!(b.len(), varint_len(v));
    }

    /// Single-pass == two-pass, and hints are exact, across the primitive
    /// and composite impls the protocol messages are built from.
    #[test]
    fn encode_equivalence_for_primitives_and_composites(
        a in any::<u64>(),
        b in any::<u32>(),
        c in any::<u16>(),
        d in any::<u8>(),
        flag in any::<bool>(),
        s in ".{0,48}",
        v in prop::collection::vec(any::<u64>(), 0..24),
        pairs in prop::collection::vec((any::<u64>(), any::<u32>()), 0..16),
        raw in prop::collection::vec(any::<u8>(), 0..96),
        some in any::<bool>(),
    ) {
        assert_encode_equivalence(&a)?;
        assert_encode_equivalence(&b)?;
        assert_encode_equivalence(&c)?;
        assert_encode_equivalence(&d)?;
        assert_encode_equivalence(&flag)?;
        assert_encode_equivalence(&s.to_string())?;
        assert_encode_equivalence(&v)?;
        assert_encode_equivalence(&pairs)?;
        assert_encode_equivalence(&sha1(&raw))?;
        let bytes = Bytes::from(raw);
        assert_encode_equivalence(&bytes)?;
        let opt = if some { Some((a, bytes)) } else { None };
        assert_encode_equivalence(&opt)?;
    }

    /// A reused `EncodeBuf` must produce the same bytes regardless of what
    /// it encoded before (no stale-state bleed between messages).
    #[test]
    fn encode_buf_reuse_is_stateless(
        msgs in prop::collection::vec(prop::collection::vec(any::<u64>(), 0..32), 1..8)
    ) {
        let mut buf = EncodeBuf::new();
        for m in &msgs {
            prop_assert_eq!(buf.encode(m), &m.to_bytes()[..]);
        }
        // And in reverse order, same buffer.
        for m in msgs.iter().rev() {
            prop_assert_eq!(buf.encode(m), &m.to_bytes()[..]);
        }
    }

    #[test]
    fn string_roundtrip(s in ".{0,64}") {
        let owned = s.to_string();
        let b = owned.to_bytes();
        prop_assert_eq!(String::from_bytes(&b).unwrap(), owned);
    }

    #[test]
    fn vec_of_pairs_roundtrip(v in prop::collection::vec((any::<u64>(), any::<u32>()), 0..32)) {
        let b = v.to_bytes();
        prop_assert_eq!(Vec::<(u64, u32)>::from_bytes(&b).unwrap(), v);
    }

    #[test]
    fn option_bytes_roundtrip(payload in prop::collection::vec(any::<u8>(), 0..128), some in any::<bool>()) {
        let v = if some { Some(Bytes::from(payload)) } else { None };
        let b = v.to_bytes();
        prop_assert_eq!(Option::<Bytes>::from_bytes(&b).unwrap(), v);
    }

    /// The decoder must never panic on arbitrary input — only return
    /// errors. (This is the property that makes hostile peers survivable.)
    #[test]
    fn decoder_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = u64::from_bytes(&data);
        let _ = String::from_bytes(&data);
        let _ = Vec::<u64>::from_bytes(&data);
        let _ = Option::<Bytes>::from_bytes(&data);
        let _ = fuse_wire::Digest::from_bytes(&data);
    }

    /// Truncating a valid encoding must produce an error, never a panic or
    /// a silent success (except the degenerate zero-truncation).
    #[test]
    fn truncation_is_detected(v in prop::collection::vec(any::<u64>(), 1..16), cut in 1usize..8) {
        let b = v.to_bytes();
        let cut = cut.min(b.len());
        let truncated = &b[..b.len() - cut];
        prop_assert!(Vec::<u64>::from_bytes(truncated).is_err());
    }

    /// Incremental SHA-1 equals one-shot on arbitrary splits.
    #[test]
    fn sha1_incremental_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..512), split in any::<prop::sample::Index>()) {
        let k = split.index(data.len() + 1);
        let mut h = fuse_wire::Sha1::new();
        h.update(&data[..k]);
        h.update(&data[k..]);
        prop_assert_eq!(h.finalize(), sha1(&data));
    }

    /// All three SHA-1 implementations (dispatching, unrolled scalar,
    /// rolled reference) agree over random content and lengths 0..=4096 —
    /// the differential property behind the unroll and the SHA-NI path.
    #[test]
    fn sha1_unrolled_and_hw_match_reference(
        seed in any::<u64>(),
        len in 0usize..=4096,
    ) {
        let data: Vec<u8> = (0..len)
            .map(|i| {
                let k = (i as u64).wrapping_mul(1442695040888963407);
                (seed.wrapping_mul(6364136223846793005).wrapping_add(k) >> 33) as u8
            })
            .collect();
        let expect = fuse_wire::sha1::reference::sha1(&data);
        prop_assert_eq!(sha1(&data), expect, "dispatching path diverged");
        prop_assert_eq!(fuse_wire::sha1::sha1_portable(&data), expect, "scalar unroll diverged");
    }
}
