//! Property tests for the wire codec: round-trip fidelity and decoder
//! robustness against arbitrary (hostile) inputs.

use bytes::Bytes;
use fuse_wire::{sha1, Decode, Encode};
use proptest::prelude::*;

proptest! {
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let b = v.to_bytes();
        prop_assert_eq!(u64::from_bytes(&b).unwrap(), v);
        prop_assert_eq!(b.len(), v.wire_size());
    }

    #[test]
    fn string_roundtrip(s in ".{0,64}") {
        let owned = s.to_string();
        let b = owned.to_bytes();
        prop_assert_eq!(String::from_bytes(&b).unwrap(), owned);
    }

    #[test]
    fn vec_of_pairs_roundtrip(v in prop::collection::vec((any::<u64>(), any::<u32>()), 0..32)) {
        let b = v.to_bytes();
        prop_assert_eq!(Vec::<(u64, u32)>::from_bytes(&b).unwrap(), v);
    }

    #[test]
    fn option_bytes_roundtrip(payload in prop::collection::vec(any::<u8>(), 0..128), some in any::<bool>()) {
        let v = if some { Some(Bytes::from(payload)) } else { None };
        let b = v.to_bytes();
        prop_assert_eq!(Option::<Bytes>::from_bytes(&b).unwrap(), v);
    }

    /// The decoder must never panic on arbitrary input — only return
    /// errors. (This is the property that makes hostile peers survivable.)
    #[test]
    fn decoder_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = u64::from_bytes(&data);
        let _ = String::from_bytes(&data);
        let _ = Vec::<u64>::from_bytes(&data);
        let _ = Option::<Bytes>::from_bytes(&data);
        let _ = fuse_wire::Digest::from_bytes(&data);
    }

    /// Truncating a valid encoding must produce an error, never a panic or
    /// a silent success (except the degenerate zero-truncation).
    #[test]
    fn truncation_is_detected(v in prop::collection::vec(any::<u64>(), 1..16), cut in 1usize..8) {
        let b = v.to_bytes();
        let cut = cut.min(b.len());
        let truncated = &b[..b.len() - cut];
        prop_assert!(Vec::<u64>::from_bytes(truncated).is_err());
    }

    /// Incremental SHA-1 equals one-shot on arbitrary splits.
    #[test]
    fn sha1_incremental_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..512), split in any::<prop::sample::Index>()) {
        let k = split.index(data.len() + 1);
        let mut h = fuse_wire::Sha1::new();
        h.update(&data[..k]);
        h.update(&data[k..]);
        prop_assert_eq!(h.finalize(), sha1(&data));
    }
}
