//! Routes over the router graph.
//!
//! Routing in the emulated Internet is static (ModelNet precomputes routes
//! the same way) and **demand-driven**: [`RouteOracle`] runs one
//! lexicographic shortest-path computation per *attachment* router the
//! first time a route out of it is asked for, and keeps the resulting row
//! in a bounded LRU of bit-packed `(latency, hops)` words. The pre-PR-4
//! eager all-destinations table survives as [`eager::RouteTable`] and is
//! held bit-identical to the oracle by equivalence tests over random
//! topologies (`tests/route_oracle.rs`).
//!
//! Paths minimize **hop count** (ties broken by latency), like the policy
//! routing of the real Internet — crucially, paths do *not* detour around
//! slow T3 links, which is what produces the heavy RTT tail of Figure 6.
//! Each route records total one-way latency and hop count; per-route loss
//! under a uniform per-link loss rate `p` is `1 − (1−p)^hops`, exactly the
//! composition behind Figure 11's per-route loss CDFs.

pub mod eager;

pub use eager::RouteTable;

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fuse_sim::SimDuration;
use fuse_util::DetHashMap;

use crate::topology::{RouterId, Topology, SAME_ROUTER_LATENCY};

/// Latency/hop summary of one route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteInfo {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Number of links traversed.
    pub hops: u32,
}

impl RouteInfo {
    /// Per-route one-way delivery probability given a uniform per-link loss
    /// rate.
    pub fn delivery_prob(&self, per_link_loss: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&per_link_loss));
        (1.0 - per_link_loss).powi(self.hops as i32)
    }

    /// Per-route one-way loss rate given a uniform per-link loss rate.
    pub fn loss_rate(&self, per_link_loss: f64) -> f64 {
        1.0 - self.delivery_prob(per_link_loss)
    }
}

/// Shortest-path row from `src`: `(latency_ns, hops)` for every destination
/// router, `(u64::MAX, u32::MAX)` when unreachable.
///
/// Lexicographic Dijkstra on `(hops, latency)`: minimum hop count, ties
/// broken by total latency. Deterministic for a fixed topology — both the
/// eager table and the oracle call this one function, which is what makes
/// their equivalence structural rather than coincidental.
pub(crate) fn dijkstra(topo: &Topology, src: RouterId) -> Vec<(u64, u32)> {
    let n = topo.n_routers();
    let mut best: Vec<(u32, u64)> = vec![(u32::MAX, u64::MAX); n];
    let mut heap = BinaryHeap::new();
    best[src as usize] = (0, 0);
    heap.push(Reverse((0u32, 0u64, src)));
    while let Some(Reverse((hops, lat, r))) = heap.pop() {
        if (hops, lat) > best[r as usize] {
            continue;
        }
        for &(next, link) in &topo.adj[r as usize] {
            let w = topo.links[link as usize].latency.nanos();
            let cand = (hops + 1, lat + w);
            if cand < best[next as usize] {
                best[next as usize] = cand;
                heap.push(Reverse((cand.0, cand.1, next)));
            }
        }
    }
    best.into_iter().map(|(h, l)| (l, h)).collect()
}

// ---------------------------------------------------------------------------
// Packed route words.

/// Bits of the packed word holding the hop count (top of the word).
const HOP_BITS: u32 = 10;
/// Shift of the hop field: the low 54 bits hold the latency.
const HOP_SHIFT: u32 = 64 - HOP_BITS;
/// Mask of the latency field (2^54 ns ≈ 208 simulated days per route —
/// five orders of magnitude above the topology generator's worst case).
const LAT_MASK: u64 = (1 << HOP_SHIFT) - 1;
/// Sentinel for an unreachable destination.
const UNREACHABLE: u64 = u64::MAX;

/// Packs one Dijkstra entry into a single word: hops in the top 10 bits,
/// latency nanoseconds in the low 54. Halves a resident row relative to the
/// eager table's `(u64, u32)` (16 bytes with padding).
fn pack(lat: u64, hops: u32) -> u64 {
    if lat == u64::MAX {
        return UNREACHABLE;
    }
    assert!(
        lat <= LAT_MASK && u64::from(hops) < (1 << HOP_BITS) - 1,
        "route exceeds packed capacity: {lat} ns, {hops} hops"
    );
    (u64::from(hops) << HOP_SHIFT) | lat
}

/// Inverse of [`pack`] for reachable entries.
fn unpack(w: u64) -> (u64, u32) {
    (w & LAT_MASK, (w >> HOP_SHIFT) as u32)
}

// ---------------------------------------------------------------------------
// The demand-driven oracle.

/// Sentinel for "no slot" in the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// One resident row of the oracle.
struct Slot {
    /// Source router this row belongs to.
    src: RouterId,
    /// Packed `(latency, hops)` word per destination router.
    row: Vec<u64>,
    /// Intrusive LRU list: previous (more recently used) slot.
    prev: u32,
    /// Intrusive LRU list: next (less recently used) slot.
    next: u32,
}

/// Counters and occupancy of a [`RouteOracle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleStats {
    /// Queries served from a resident row.
    pub hits: u64,
    /// Queries that had to run Dijkstra (first touch or re-entry after
    /// eviction).
    pub misses: u64,
    /// Rows evicted to stay within the capacity.
    pub evictions: u64,
    /// Rows currently resident.
    pub resident_rows: usize,
    /// Bytes held by the resident rows and their slot bookkeeping (the
    /// dominant memory term; excludes the small source-index map).
    pub resident_bytes: usize,
}

/// Demand-driven route oracle: per-source shortest paths computed lazily on
/// first use, held in a bounded LRU of bit-packed rows.
///
/// This is what bounds route memory at Mercator scale (§7.1's ~100k
/// routers): resident memory is `capacity × n_routers × 8` bytes no matter
/// how many distinct sources are queried, where the eager
/// [`eager::RouteTable`] stores `sources × n_routers × 16` bytes up front.
/// A hit is a hash lookup plus an LRU splice — no allocation; a miss runs
/// one Dijkstra over the router graph (~milliseconds at 100k routers,
/// microseconds at the default topology).
///
/// The oracle does not own the topology: callers pass `&Topology` to
/// [`route`](RouteOracle::route), so one topology can back the network, the
/// experiments and ad-hoc queries without reference cycles. Cached rows are
/// only valid for the topology they were computed from — the oracle
/// records the first topology's [`Topology::fingerprint`] and panics if a
/// later query passes a different graph (even one with coincidentally
/// equal counts), rather than silently serving stale routes. Interior
/// mutability (a `RefCell`) keeps
/// the query API `&self`, matching the eager table it replaced; the
/// simulation is single-threaded by design.
///
/// Eviction order depends only on the query order, so for a fixed topology
/// and query sequence the oracle is fully deterministic — including its
/// [`stats`](RouteOracle::stats).
pub struct RouteOracle {
    inner: RefCell<Inner>,
}

struct Inner {
    cap: usize,
    /// Source router → slot index.
    map: DetHashMap<RouterId, u32>,
    slots: Vec<Slot>,
    /// Most recently used slot.
    head: u32,
    /// Least recently used slot (the eviction victim).
    tail: u32,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// `(n_routers, fingerprint)` of the first topology queried; guards
    /// against reusing cached rows across topologies — the structural
    /// fingerprint catches even same-sized graphs from different seeds.
    fp: Option<(usize, u64)>,
}

impl RouteOracle {
    /// Creates an oracle holding at most `capacity` source rows (clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        RouteOracle {
            inner: RefCell::new(Inner {
                cap,
                map: DetHashMap::default(),
                slots: Vec::new(),
                head: NIL,
                tail: NIL,
                hits: 0,
                misses: 0,
                evictions: 0,
                fp: None,
            }),
        }
    }

    /// Maximum number of resident source rows.
    pub fn capacity(&self) -> usize {
        self.inner.borrow().cap
    }

    /// Route summary from `src` to `dst`, computing and caching the
    /// source's row on demand.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is unreachable from `src` (the topology generator
    /// produces connected graphs), if either id is out of range for
    /// `topo`, or if `topo` is not the topology this oracle's cached rows
    /// were computed from (checked via [`Topology::fingerprint`], so even
    /// a same-sized graph from a different seed is refused rather than
    /// served stale rows). All three checks apply to same-router queries
    /// too, even though those never touch the LRU. Unlike the eager table
    /// there is no "unbuilt source" panic: a missing row — whether never
    /// queried or evicted from the LRU — is recomputed transparently, at
    /// the cost of one Dijkstra (whose scratch vectors allocate per miss;
    /// the compute dominates them by orders of magnitude, and the LRU-hit
    /// path stays allocation-free).
    pub fn route(&self, topo: &Topology, src: RouterId, dst: RouterId) -> RouteInfo {
        assert!(
            (src as usize) < topo.n_routers() && (dst as usize) < topo.n_routers(),
            "router id out of range"
        );
        let mut inner = self.inner.borrow_mut();
        let fp = (topo.n_routers(), topo.fingerprint());
        match inner.fp {
            None => inner.fp = Some(fp),
            Some(seen) => assert_eq!(
                seen, fp,
                "RouteOracle queried with a different topology than its cached rows"
            ),
        }
        if src == dst {
            // Same attachment router: a LAN hop, not a wide-area route.
            return RouteInfo {
                latency: SAME_ROUTER_LATENCY,
                hops: 0,
            };
        }
        let slot = match inner.map.get(&src).copied() {
            Some(i) => {
                inner.hits += 1;
                inner.touch(i);
                i
            }
            None => {
                inner.misses += 1;
                inner.admit(topo, src)
            }
        };
        let w = inner.slots[slot as usize].row[dst as usize];
        assert_ne!(w, UNREACHABLE, "destination unreachable");
        let (lat, hops) = unpack(w);
        RouteInfo {
            latency: SimDuration(lat),
            hops,
        }
    }

    /// Whether a row for `src` is currently resident (test hook; does not
    /// count as a hit or disturb the LRU order).
    pub fn row_resident(&self, src: RouterId) -> bool {
        self.inner.borrow().map.contains_key(&src)
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> OracleStats {
        let inner = self.inner.borrow();
        let resident_bytes = inner
            .slots
            .iter()
            .map(|s| s.row.capacity() * std::mem::size_of::<u64>())
            .sum::<usize>()
            + inner.slots.capacity() * std::mem::size_of::<Slot>();
        OracleStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            resident_rows: inner.map.len(),
            resident_bytes,
        }
    }
}

impl Inner {
    /// Unlinks slot `i` from the LRU list.
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
    }

    /// Pushes slot `i` to the front (most recently used).
    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[i as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Marks slot `i` most recently used.
    fn touch(&mut self, i: u32) {
        if self.head == i {
            return;
        }
        self.unlink(i);
        self.push_front(i);
    }

    /// Builds the row for `src` into a fresh or recycled slot and makes it
    /// most recently used; returns the slot index.
    fn admit(&mut self, topo: &Topology, src: RouterId) -> u32 {
        let i = if self.slots.len() < self.cap {
            let i = self.slots.len() as u32;
            self.slots.push(Slot {
                src,
                row: Vec::new(),
                prev: NIL,
                next: NIL,
            });
            i
        } else {
            // Evict the least recently used row, recycling its allocation.
            let victim = self.tail;
            self.unlink(victim);
            let old_src = self.slots[victim as usize].src;
            self.map.remove(&old_src);
            self.evictions += 1;
            self.slots[victim as usize].src = src;
            victim
        };
        let row = &mut self.slots[i as usize].row;
        row.clear();
        row.extend(dijkstra(topo, src).into_iter().map(|(l, h)| pack(l, h)));
        self.map.insert(src, i);
        self.push_front(i);
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_topo() -> Topology {
        let cfg = TopologyConfig {
            n_as: 8,
            core_per_as: 4,
            chains_per_as: 1,
            chain_len: (2, 4),
            ..TopologyConfig::default()
        };
        Topology::generate(&cfg, &mut StdRng::seed_from_u64(11))
    }

    #[test]
    fn pack_roundtrips_and_flags_unreachable() {
        for &(lat, hops) in &[(0u64, 0u32), (1, 1), (123_456_789_000, 43), (LAT_MASK, 60)] {
            assert_eq!(unpack(pack(lat, hops)), (lat, hops));
        }
        assert_eq!(pack(u64::MAX, u32::MAX), UNREACHABLE);
    }

    #[test]
    #[should_panic(expected = "packed capacity")]
    fn pack_rejects_oversized_latency() {
        pack(LAT_MASK + 1, 3);
    }

    #[test]
    fn same_router_is_lan_latency() {
        let topo = small_topo();
        let oracle = RouteOracle::new(4);
        let r = oracle.route(&topo, 7, 7);
        assert_eq!(r.hops, 0);
        assert_eq!(r.latency, SAME_ROUTER_LATENCY);
        // Served without building any row.
        assert_eq!(oracle.stats().resident_rows, 0);
    }

    #[test]
    fn routes_are_symmetric_in_latency() {
        let topo = small_topo();
        let oracle = RouteOracle::new(8);
        for a in [0u32, 5, 13, 21] {
            for b in [3u32, 9, 30] {
                if a == b {
                    continue;
                }
                let f = oracle.route(&topo, a, b);
                let r = oracle.route(&topo, b, a);
                assert_eq!(f.latency, r.latency);
                assert_eq!(f.hops, r.hops);
            }
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let topo = small_topo();
        let oracle = RouteOracle::new(4);
        oracle.route(&topo, 0, 1);
        oracle.route(&topo, 0, 2);
        oracle.route(&topo, 1, 2);
        let s = oracle.stats();
        assert_eq!(s.misses, 2, "two distinct sources");
        assert_eq!(s.hits, 1, "second query from source 0");
        assert_eq!(s.resident_rows, 2);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn capacity_bounds_resident_rows() {
        let topo = small_topo();
        let oracle = RouteOracle::new(2);
        for src in 0..6u32 {
            oracle.route(&topo, src, (src + 1) % topo.n_routers() as u32);
        }
        let s = oracle.stats();
        assert_eq!(s.resident_rows, 2);
        assert_eq!(s.evictions, 4);
        let row_bytes = topo.n_routers() * std::mem::size_of::<u64>();
        assert!(
            s.resident_bytes >= 2 * row_bytes,
            "rows must be accounted: {} < {}",
            s.resident_bytes,
            2 * row_bytes
        );
        assert!(
            s.resident_bytes <= 2 * row_bytes + 4 * std::mem::size_of::<Slot>(),
            "resident bytes unbounded: {}",
            s.resident_bytes
        );
    }

    #[test]
    fn lru_evicts_least_recently_used_source() {
        let topo = small_topo();
        let oracle = RouteOracle::new(2);
        oracle.route(&topo, 0, 5); // rows: [0]
        oracle.route(&topo, 1, 5); // rows: [1, 0]
        oracle.route(&topo, 0, 6); // touch 0 -> rows: [0, 1]
        oracle.route(&topo, 2, 5); // evicts 1 -> rows: [2, 0]
        assert!(oracle.row_resident(0));
        assert!(!oracle.row_resident(1));
        assert!(oracle.row_resident(2));
    }

    #[test]
    #[should_panic(expected = "different topology")]
    fn reuse_across_topologies_panics_instead_of_serving_stale_rows() {
        let topo_a = small_topo();
        let topo_b = Topology::generate(
            &TopologyConfig {
                n_as: 4,
                core_per_as: 3,
                chains_per_as: 1,
                chain_len: (2, 4),
                ..TopologyConfig::default()
            },
            &mut StdRng::seed_from_u64(5),
        );
        let oracle = RouteOracle::new(4);
        oracle.route(&topo_a, 0, 9);
        oracle.route(&topo_b, 0, 9);
    }

    #[test]
    #[should_panic(expected = "different topology")]
    fn same_config_different_seed_is_still_a_different_topology() {
        // Same TopologyConfig, different seed: counts can coincide, but
        // the structural fingerprint must still refuse the cached rows.
        let cfg = TopologyConfig {
            n_as: 8,
            core_per_as: 4,
            chains_per_as: 1,
            chain_len: (3, 3), // fixed chain length: identical router count
            ..TopologyConfig::default()
        };
        let topo_a = Topology::generate(&cfg, &mut StdRng::seed_from_u64(1));
        let topo_b = Topology::generate(&cfg, &mut StdRng::seed_from_u64(2));
        assert_eq!(topo_a.n_routers(), topo_b.n_routers());
        let oracle = RouteOracle::new(4);
        oracle.route(&topo_a, 0, 9);
        oracle.route(&topo_b, 0, 9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn same_router_query_still_checks_id_range() {
        let topo = small_topo();
        let oracle = RouteOracle::new(4);
        oracle.route(&topo, 50_000, 50_000);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let topo = small_topo();
        let oracle = RouteOracle::new(0);
        assert_eq!(oracle.capacity(), 1);
        let r = oracle.route(&topo, 0, 9);
        assert!(r.hops >= 1);
    }
}
