//! The preserved eager all-destinations route table.
//!
//! This is the pre-PR-4 routing structure: one full `(latency, hops)` row
//! per attachment router, built up front — O(sources × routers) memory,
//! which is exactly what ruled it out at Mercator scale (§7.1's ~100k
//! routers). The production path is the demand-driven
//! [`RouteOracle`](crate::RouteOracle); this table survives as the
//! reference the oracle is held bit-identical to (equivalence tests in
//! `tests/route_oracle.rs`) and as the eager baseline in the
//! `route_oracle` bench section.

use fuse_util::DetHashMap;

use crate::routes::{dijkstra, RouteInfo};
use crate::topology::{RouterId, Topology, SAME_ROUTER_LATENCY};

/// All-destination shortest-path tables from each attachment router.
pub struct RouteTable {
    /// Per source router: `(latency_ns, hops)` for every destination router.
    tables: DetHashMap<RouterId, Vec<(u64, u32)>>,
}

impl RouteTable {
    /// Builds tables for every distinct router in `sources`.
    pub fn build(topo: &Topology, sources: &[RouterId]) -> Self {
        let mut tables = DetHashMap::default();
        for &s in sources {
            tables.entry(s).or_insert_with(|| dijkstra(topo, s));
        }
        RouteTable { tables }
    }

    /// Route summary from `src` to `dst`; `src` must be a built source.
    ///
    /// # Panics
    ///
    /// Panics if `src` was not in the source set or `dst` is unreachable
    /// (the generator produces connected graphs).
    pub fn route(&self, src: RouterId, dst: RouterId) -> RouteInfo {
        if src == dst {
            // Same attachment router: a LAN hop, not a wide-area route.
            return RouteInfo {
                latency: SAME_ROUTER_LATENCY,
                hops: 0,
            };
        }
        let t = self
            .tables
            .get(&src)
            .expect("route requested from an unbuilt source");
        let (lat, hops) = t[dst as usize];
        assert_ne!(lat, u64::MAX, "destination unreachable");
        RouteInfo {
            latency: fuse_sim::SimDuration(lat),
            hops,
        }
    }

    /// Whether a table was built for `src`.
    pub fn has_source(&self, src: RouterId) -> bool {
        self.tables.contains_key(&src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyConfig;
    use fuse_sim::SimDuration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_topo() -> (Topology, Vec<RouterId>) {
        let cfg = TopologyConfig {
            n_as: 8,
            core_per_as: 4,
            chains_per_as: 1,
            chain_len: (2, 4),
            ..TopologyConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let topo = Topology::generate(&cfg, &mut rng);
        let n = topo.n_routers() as RouterId;
        (topo, (0..n).collect())
    }

    #[test]
    fn routes_are_symmetric_in_latency() {
        // Undirected links with symmetric weights: shortest-path distances
        // must match in both directions.
        let (topo, all) = small_topo();
        let table = RouteTable::build(&topo, &all);
        for a in [0u32, 5, 13, 21] {
            for b in [3u32, 9, 30] {
                if a == b {
                    continue;
                }
                let f = table.route(a, b);
                let r = table.route(b, a);
                assert_eq!(f.latency, r.latency);
                assert_eq!(f.hops, r.hops);
            }
        }
    }

    #[test]
    fn triangle_inequality_holds() {
        let (topo, all) = small_topo();
        let table = RouteTable::build(&topo, &all);
        let ab = table.route(0, 10).latency.nanos();
        let bc = table.route(10, 20).latency.nanos();
        let ac = table.route(0, 20).latency.nanos();
        assert!(ac <= ab + bc);
    }

    #[test]
    fn same_router_is_lan_latency() {
        let (topo, all) = small_topo();
        let table = RouteTable::build(&topo, &all);
        let r = table.route(7, 7);
        assert_eq!(r.hops, 0);
        assert_eq!(r.latency, SAME_ROUTER_LATENCY);
        assert!(r.latency < SimDuration::from_millis(1));
    }

    #[test]
    fn loss_composition_matches_formula() {
        let info = RouteInfo {
            latency: SimDuration::from_millis(100),
            hops: 15,
        };
        // Paper Figure 11: 0.4% per-link loss over median-15-hop routes
        // yields ~5.8% route loss; 0.8% -> ~11.4%; 1.6% -> ~21.5%.
        assert!((info.loss_rate(0.004) - 0.058).abs() < 0.004);
        assert!((info.loss_rate(0.008) - 0.114).abs() < 0.006);
        assert!((info.loss_rate(0.016) - 0.215).abs() < 0.008);
    }

    #[test]
    fn zero_loss_delivers_always() {
        let info = RouteInfo {
            latency: SimDuration::from_millis(10),
            hops: 40,
        };
        assert_eq!(info.delivery_prob(0.0), 1.0);
    }
}
