//! Synthetic hierarchical AS/router topology.
//!
//! Substitution for the paper's Mercator-measured topology (§7.1). The
//! generated graph has three tiers, mirroring how the Internet actually
//! produces the paper's published route shape:
//!
//! * an **inter-AS mesh** — a connected random graph over ASes whose links
//!   are 97% OC3 (10–40 ms one-way) and 3% T3 (300–500 ms), exactly the
//!   paper's link classes; its density sets how many wide-area crossings a
//!   route makes (two to three at the default), which pins the median RTT
//!   near the paper's 130 ms,
//! * a per-AS **core ring** of routers where inter-AS links attach,
//! * per-AS **access chains** of LAN-class routers (≈0.3–1 ms per hop)
//!   hanging off the core; overlay nodes attach only at access routers, so
//!   every route must climb its access chain, transit cores, and descend —
//!   this is what gives routes the paper's ~15 median link hops (the number
//!   that drives per-route loss composition in Figures 11–12) without
//!   inflating latency.
//!
//! Routing (in [`crate::routes`]) minimizes hop count, not latency, like
//! policy routing in the real Internet — so routes cross T3 links rather
//! than detouring, producing Figure 6's heavy RTT tail. A test in this
//! module asserts the whole tuning.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use fuse_sim::SimDuration;

/// One-way latency between two overlay nodes attached to the *same* access
/// router.
///
/// The paper's testbed multiplexes ten virtual FUSE nodes per physical
/// machine (§7.1), so co-located nodes talk over the machine-room LAN
/// rather than a ModelNet-emulated wide-area route. 100 µs is a
/// conservative one-way delay for the switched 100 Mb Ethernet of that era
/// — below the per-hop latency of every generated LAN link
/// ([`TopologyConfig::lan_latency_us`] defaults to 300–1000 µs) but not
/// zero, so events between co-located nodes still order realistically.
/// Both the demand-driven [`crate::RouteOracle`] and the preserved eager
/// [`crate::RouteTable`] return it for same-router queries.
pub const SAME_ROUTER_LATENCY: SimDuration = SimDuration::from_micros(100);

/// Index of a router in the topology.
pub type RouterId = u32;

/// Index of a link in the topology.
pub type LinkId = u32;

/// Link technology class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkClass {
    /// Intra-AS LAN/metro link.
    Lan,
    /// Inter-AS OC3: 10–40 ms latency (paper: 97% of inter-AS links).
    Oc3,
    /// Inter-AS T3: 300–500 ms latency (paper: 3% of inter-AS links).
    T3,
}

/// An undirected router-to-router link.
#[derive(Debug, Clone)]
pub struct Link {
    /// One endpoint.
    pub a: RouterId,
    /// Other endpoint.
    pub b: RouterId,
    /// Technology class.
    pub class: LinkClass,
    /// One-way propagation latency.
    pub latency: SimDuration,
}

/// Topology generation parameters.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Number of autonomous systems.
    pub n_as: usize,
    /// Core-ring routers per AS (inter-AS links attach here).
    pub core_per_as: usize,
    /// Access chains per AS.
    pub chains_per_as: usize,
    /// Access chain length range (inclusive).
    pub chain_len: (usize, usize),
    /// Extra inter-AS links beyond the AS-level ring, as a multiple of
    /// `n_as` (controls AS-graph degree, hence wide-area crossings per
    /// route).
    pub inter_as_extra_factor: f64,
    /// Fraction of inter-AS links assigned the T3 class (paper: 0.03).
    pub t3_fraction: f64,
    /// LAN (intra-AS) one-way latency range in microseconds.
    pub lan_latency_us: (u64, u64),
    /// OC3 one-way latency range in milliseconds (paper: 10–40).
    pub oc3_latency_ms: (u64, u64),
    /// T3 one-way latency range in milliseconds (paper: 300–500).
    pub t3_latency_ms: (u64, u64),
}

impl Default for TopologyConfig {
    fn default() -> Self {
        // Tuned (see `default_topology_matches_paper_route_shape`) to give
        // median ~15 link hops and median RTT ~130 ms between random
        // attachment points, as the paper reports for its Mercator slice.
        TopologyConfig {
            n_as: 160,
            core_per_as: 6,
            chains_per_as: 2,
            chain_len: (4, 11),
            inter_as_extra_factor: 10.0,
            t3_fraction: 0.03,
            lan_latency_us: (300, 1000),
            oc3_latency_ms: (10, 40),
            t3_latency_ms: (300, 500),
        }
    }
}

impl TopologyConfig {
    /// A Mercator-slice-shaped topology at the paper's published scale:
    /// ~100k routers (the measured slice has 102,639), reached by scaling
    /// the AS count up from the default while keeping the per-AS shape
    /// (core ring + access chains) that produces the paper's route
    /// distributions. The AS-graph degree is raised alongside so routes
    /// still make two-to-four wide-area crossings and the median RTT stays
    /// near the published ~130 ms instead of growing with the AS-graph
    /// diameter.
    ///
    /// Building the eager all-destinations table here costs ~1.6 MB *per
    /// source* (100k routers × 16 bytes); the demand-driven
    /// [`crate::RouteOracle`] is how this preset is meant to be routed —
    /// see the `#[ignore]`d Mercator smoke test in `tests/route_oracle.rs`
    /// and the `route_oracle.mercator` bench section.
    pub fn mercator_scale() -> Self {
        TopologyConfig {
            n_as: 4800,
            inter_as_extra_factor: 15.0,
            ..TopologyConfig::default()
        }
    }

    /// Expected router count for this configuration (exact core count plus
    /// the mean of the random chain lengths).
    pub fn expected_routers(&self) -> usize {
        let avg_chain = (self.chain_len.0 + self.chain_len.1) as f64 / 2.0;
        (self.n_as as f64 * (self.core_per_as as f64 + self.chains_per_as as f64 * avg_chain))
            .round() as usize
    }
}

/// The generated router graph.
#[derive(Clone)]
pub struct Topology {
    /// All links.
    pub links: Vec<Link>,
    /// Adjacency: for each router, `(neighbor, link)` pairs.
    pub adj: Vec<Vec<(RouterId, LinkId)>>,
    /// AS id of each router.
    pub as_of: Vec<u32>,
    /// Access routers — valid attachment points for overlay nodes.
    pub attachable: Vec<RouterId>,
    /// Structural checksum over every link's endpoints and latency,
    /// computed once at the end of generation (see
    /// [`Topology::fingerprint`]).
    fingerprint: u64,
    /// Smallest one-way link latency in the graph, precomputed at
    /// generation (see [`Topology::min_link_latency`]).
    min_link_latency: SimDuration,
}

impl Topology {
    /// Generates a topology from `cfg` using `rng`.
    pub fn generate(cfg: &TopologyConfig, rng: &mut StdRng) -> Self {
        assert!(cfg.n_as >= 2, "need at least two ASes");
        assert!(cfg.core_per_as >= 1);
        assert!(cfg.chain_len.0 >= 1 && cfg.chain_len.0 <= cfg.chain_len.1);
        let mut topo = Topology {
            links: Vec::new(),
            adj: Vec::new(),
            as_of: Vec::new(),
            attachable: Vec::new(),
            fingerprint: 0,
            min_link_latency: SimDuration(u64::MAX),
        };

        // Per-AS core rings and access chains.
        let mut core_routers: Vec<Vec<RouterId>> = Vec::with_capacity(cfg.n_as);
        for asn in 0..cfg.n_as {
            let core: Vec<RouterId> = (0..cfg.core_per_as)
                .map(|_| topo.new_router(asn as u32))
                .collect();
            if core.len() >= 2 {
                for i in 0..core.len() {
                    let a = core[i];
                    let b = core[(i + 1) % core.len()];
                    if !topo.has_link(a, b) {
                        topo.add_lan(a, b, rng, cfg);
                    }
                }
            }
            for _ in 0..cfg.chains_per_as {
                let len = rng.gen_range(cfg.chain_len.0..=cfg.chain_len.1);
                let mut prev = core[rng.gen_range(0..core.len())];
                for _ in 0..len {
                    let r = topo.new_router(asn as u32);
                    topo.add_lan(prev, r, rng, cfg);
                    topo.attachable.push(r);
                    prev = r;
                }
            }
            core_routers.push(core);
        }

        // Inter-AS: a ring over a shuffled AS order guarantees connectivity;
        // chords set the AS-graph degree.
        let mut inter_links: Vec<LinkId> = Vec::new();
        let mut order: Vec<usize> = (0..cfg.n_as).collect();
        order.shuffle(rng);
        let pick = |rng: &mut StdRng, core: &Vec<RouterId>| -> RouterId {
            core[rng.gen_range(0..core.len())]
        };
        for w in 0..cfg.n_as {
            let x = order[w];
            let y = order[(w + 1) % cfg.n_as];
            let rx = pick(rng, &core_routers[x]);
            let ry = pick(rng, &core_routers[y]);
            inter_links.push(topo.add_oc3(rx, ry, rng, cfg));
        }
        let extra = (cfg.n_as as f64 * cfg.inter_as_extra_factor) as usize;
        for _ in 0..extra {
            let x = rng.gen_range(0..cfg.n_as);
            let y = rng.gen_range(0..cfg.n_as);
            if x != y {
                let rx = pick(rng, &core_routers[x]);
                let ry = pick(rng, &core_routers[y]);
                if rx != ry && !topo.has_link(rx, ry) {
                    inter_links.push(topo.add_oc3(rx, ry, rng, cfg));
                }
            }
        }

        // Reassign a random t3_fraction of the inter-AS links to T3.
        let n_t3 = ((inter_links.len() as f64) * cfg.t3_fraction).round() as usize;
        inter_links.shuffle(rng);
        for &li in inter_links.iter().take(n_t3) {
            let ms = rng.gen_range(cfg.t3_latency_ms.0..=cfg.t3_latency_ms.1);
            topo.links[li as usize].class = LinkClass::T3;
            topo.links[li as usize].latency = SimDuration::from_millis(ms);
        }

        // Derived minima and the fingerprint last, so both cover the T3
        // latency reassignments. The fingerprint is an FNV-1a-style fold
        // over every link's endpoints and latency, then over the derived
        // minimum (the lookahead input of the sharded kernel), so any graph
        // change that could alter a lookahead bound changes the checksum.
        topo.min_link_latency = topo
            .links
            .iter()
            .map(|l| l.latency)
            .min()
            .unwrap_or(SimDuration::ZERO);
        let fold = |fp: u64, key: u64| (fp ^ key).wrapping_mul(0x1_0000_0000_01b3);
        topo.fingerprint = topo.links.iter().fold(0xcbf2_9ce4_8422_2325u64, |fp, l| {
            let key = (u64::from(l.a) << 40) ^ (u64::from(l.b) << 20) ^ l.latency.nanos();
            fold(fp, key)
        });
        topo.fingerprint = fold(topo.fingerprint, topo.min_link_latency.nanos());

        topo
    }

    fn new_router(&mut self, asn: u32) -> RouterId {
        let id = self.adj.len() as RouterId;
        self.adj.push(Vec::new());
        self.as_of.push(asn);
        id
    }

    fn add_lan(&mut self, a: RouterId, b: RouterId, rng: &mut StdRng, cfg: &TopologyConfig) {
        let us = rng.gen_range(cfg.lan_latency_us.0..=cfg.lan_latency_us.1);
        self.push_link(a, b, LinkClass::Lan, SimDuration::from_micros(us));
    }

    fn add_oc3(
        &mut self,
        a: RouterId,
        b: RouterId,
        rng: &mut StdRng,
        cfg: &TopologyConfig,
    ) -> LinkId {
        let ms = rng.gen_range(cfg.oc3_latency_ms.0..=cfg.oc3_latency_ms.1);
        self.push_link(a, b, LinkClass::Oc3, SimDuration::from_millis(ms))
    }

    fn push_link(
        &mut self,
        a: RouterId,
        b: RouterId,
        class: LinkClass,
        latency: SimDuration,
    ) -> LinkId {
        debug_assert_ne!(a, b);
        let id = self.links.len() as LinkId;
        self.links.push(Link {
            a,
            b,
            class,
            latency,
        });
        self.adj[a as usize].push((b, id));
        self.adj[b as usize].push((a, id));
        id
    }

    fn has_link(&self, a: RouterId, b: RouterId) -> bool {
        self.adj[a as usize].iter().any(|&(n, _)| n == b)
    }

    /// Structural checksum of the generated graph (endpoints and latency
    /// of every link). Two topologies that could give any query a
    /// different answer have different fingerprints with overwhelming
    /// probability — even when router and link counts coincide (e.g. the
    /// same config generated from a different seed). O(1) to read: the
    /// [`crate::RouteOracle`] compares it on every query to refuse serving
    /// cached rows for the wrong graph.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Smallest one-way link latency in the graph — a universal lower
    /// bound on the latency of any route between *distinct* routers, and
    /// therefore a valid (if loose) conservative-lookahead bound.
    /// Precomputed at generation so shards never touch the route oracle's
    /// `RefCell` to derive lookahead.
    pub fn min_link_latency(&self) -> SimDuration {
        self.min_link_latency
    }

    /// Latency-only multi-source shortest-path distances (in nanoseconds)
    /// from the router set `sources` to every router; `u64::MAX` marks
    /// unreachable. Unlike the hop-minimizing production routes, this is a
    /// true metric, so the result lower-bounds every route latency — the
    /// per-shard-pair lookahead input of the sharded kernel.
    pub fn latency_distances_from(&self, sources: &[RouterId]) -> Vec<u64> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut dist = vec![u64::MAX; self.n_routers()];
        let mut heap: BinaryHeap<(Reverse<u64>, RouterId)> = BinaryHeap::new();
        for &s in sources {
            if dist[s as usize] != 0 {
                dist[s as usize] = 0;
                heap.push((Reverse(0), s));
            }
        }
        while let Some((Reverse(d), r)) = heap.pop() {
            if d > dist[r as usize] {
                continue;
            }
            for &(n, li) in &self.adj[r as usize] {
                let nd = d + self.links[li as usize].latency.nanos();
                if nd < dist[n as usize] {
                    dist[n as usize] = nd;
                    heap.push((Reverse(nd), n));
                }
            }
        }
        dist
    }

    /// Number of routers.
    pub fn n_routers(&self) -> usize {
        self.adj.len()
    }

    /// Number of links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Fraction of *inter-AS* links in the T3 class (the paper's 3%).
    pub fn t3_share_of_inter_as(&self) -> f64 {
        let mut inter = 0usize;
        let mut t3 = 0usize;
        for l in &self.links {
            match l.class {
                LinkClass::Lan => {}
                LinkClass::Oc3 => inter += 1,
                LinkClass::T3 => {
                    inter += 1;
                    t3 += 1;
                }
            }
        }
        if inter == 0 {
            0.0
        } else {
            t3 as f64 / inter as f64
        }
    }

    /// Samples `n` attachment routers uniformly from the access routers
    /// (without replacement when possible; round-robin reuse otherwise —
    /// several overlay nodes on one access router is the analogue of the
    /// paper's ten virtual nodes per physical machine).
    pub fn sample_attachments(&self, n: usize, rng: &mut StdRng) -> Vec<RouterId> {
        assert!(
            !self.attachable.is_empty(),
            "topology has no access routers"
        );
        let mut all = self.attachable.clone();
        all.shuffle(rng);
        if n <= all.len() {
            all.truncate(n);
            all
        } else {
            (0..n).map(|i| all[i % all.len()]).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routes::RouteTable;
    use fuse_obs::Reservoir;
    use rand::SeedableRng;

    #[test]
    fn generation_is_connected_and_deterministic() {
        let cfg = TopologyConfig::default();
        let t1 = Topology::generate(&cfg, &mut StdRng::seed_from_u64(9));
        let t2 = Topology::generate(&cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(t1.n_links(), t2.n_links());
        // BFS connectivity.
        let mut seen = vec![false; t1.n_routers()];
        let mut q = vec![0u32];
        seen[0] = true;
        while let Some(r) = q.pop() {
            for &(n, _) in &t1.adj[r as usize] {
                if !seen[n as usize] {
                    seen[n as usize] = true;
                    q.push(n);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "topology must be connected");
    }

    #[test]
    fn t3_share_close_to_configured() {
        let cfg = TopologyConfig::default();
        let t = Topology::generate(&cfg, &mut StdRng::seed_from_u64(5));
        let share = t.t3_share_of_inter_as();
        assert!((share - 0.03).abs() < 0.01, "t3 share {share}");
    }

    #[test]
    fn default_topology_matches_paper_route_shape() {
        // The paper: routes of 2..43 hops, median 15; median RTT ~130 ms
        // with a heavy tail.
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = TopologyConfig::default();
        let topo = Topology::generate(&cfg, &mut rng);
        let attach = topo.sample_attachments(200, &mut rng);
        let table = RouteTable::build(&topo, &attach);
        let mut hops = Reservoir::new();
        let mut rtt_ms = Reservoir::new();
        for i in 0..50usize {
            for j in 0..attach.len() {
                if attach[i] == attach[j] {
                    continue;
                }
                let r = table.route(attach[i], attach[j]);
                hops.add(r.hops as f64);
                rtt_ms.add(2.0 * r.latency.as_millis_f64());
            }
        }
        let med_hops = hops.median().unwrap();
        let med_rtt = rtt_ms.median().unwrap();
        let max_hops = hops.max().unwrap();
        assert!(
            (12.0..=18.0).contains(&med_hops),
            "median hops {med_hops} outside paper-like band"
        );
        assert!(
            (100.0..=170.0).contains(&med_rtt),
            "median rtt {med_rtt} ms outside paper-like band"
        );
        assert!(max_hops <= 60.0, "max hops {max_hops} unreasonable");
        // Heavy tail: 99th percentile RTT far above the median (T3 paths).
        let p99 = rtt_ms.quantile(0.99).unwrap();
        assert!(
            p99 > 3.0 * med_rtt,
            "no heavy tail: p99 {p99} med {med_rtt}"
        );
    }

    #[test]
    fn expected_routers_predicts_generated_count() {
        let cfg = TopologyConfig::default();
        let t = Topology::generate(&cfg, &mut StdRng::seed_from_u64(4));
        let expected = cfg.expected_routers() as f64;
        let actual = t.n_routers() as f64;
        // Chain lengths are the only randomness in the count; the mean
        // estimate lands within a few percent at the default AS count.
        assert!(
            (actual - expected).abs() / expected < 0.05,
            "expected ~{expected} routers, generated {actual}"
        );
    }

    #[test]
    fn mercator_preset_reaches_paper_scale_on_paper() {
        // The full 100k-router generation runs in the `#[ignore]`d smoke
        // test (tests/route_oracle.rs); here only the arithmetic that the
        // preset targets the paper's 102,639-router slice.
        let cfg = TopologyConfig::mercator_scale();
        let expected = cfg.expected_routers();
        assert!(
            (95_000..=110_000).contains(&expected),
            "preset expects {expected} routers, not Mercator scale"
        );
    }

    #[test]
    fn fingerprint_distinguishes_seeds_and_reproduces() {
        let cfg = TopologyConfig::default();
        let a1 = Topology::generate(&cfg, &mut StdRng::seed_from_u64(9));
        let a2 = Topology::generate(&cfg, &mut StdRng::seed_from_u64(9));
        let b = Topology::generate(&cfg, &mut StdRng::seed_from_u64(10));
        assert_eq!(a1.fingerprint(), a2.fingerprint(), "same seed, same graph");
        assert_ne!(
            a1.fingerprint(),
            b.fingerprint(),
            "different seed must change the fingerprint even if counts collide"
        );
    }

    #[test]
    fn min_link_latency_matches_links_and_is_fingerprinted() {
        let cfg = TopologyConfig::default();
        let t = Topology::generate(&cfg, &mut StdRng::seed_from_u64(11));
        let expect = t.links.iter().map(|l| l.latency).min().unwrap();
        assert_eq!(t.min_link_latency(), expect);
        assert!(t.min_link_latency() > SimDuration::ZERO);
        // Generated LAN links bound it from both sides.
        assert!(t.min_link_latency() >= SimDuration::from_micros(cfg.lan_latency_us.0));
        assert!(t.min_link_latency() <= SimDuration::from_micros(cfg.lan_latency_us.1));
        // Fingerprint coverage: the checksum folds the derived minimum, so
        // equal fingerprints imply equal lookahead inputs.
        let t2 = Topology::generate(&cfg, &mut StdRng::seed_from_u64(11));
        assert_eq!(t.fingerprint(), t2.fingerprint());
        assert_eq!(t.min_link_latency(), t2.min_link_latency());
    }

    #[test]
    fn latency_distances_lower_bound_hop_routes() {
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = TopologyConfig {
            n_as: 12,
            ..TopologyConfig::default()
        };
        let topo = Topology::generate(&cfg, &mut rng);
        let attach = topo.sample_attachments(24, &mut rng);
        let table = RouteTable::build(&topo, &attach);
        let (srcs, dsts) = attach.split_at(12);
        let dist = topo.latency_distances_from(srcs);
        for &d in dsts {
            let best_route = srcs
                .iter()
                .filter(|&&s| s != d)
                .map(|&s| table.route(s, d).latency.nanos())
                .min()
                .unwrap();
            assert!(
                dist[d as usize] <= best_route,
                "latency metric must lower-bound hop-minimizing routes"
            );
            assert!(
                dist[d as usize] >= topo.min_link_latency().nanos() || srcs.contains(&d),
                "distinct-router distance below a single link"
            );
        }
    }

    #[test]
    fn same_router_latency_is_below_generated_lan_links() {
        let cfg = TopologyConfig::default();
        assert!(SAME_ROUTER_LATENCY.nanos() < cfg.lan_latency_us.0 * 1_000);
    }

    #[test]
    fn attachments_are_access_routers() {
        let cfg = TopologyConfig::default();
        let t = Topology::generate(&cfg, &mut StdRng::seed_from_u64(2));
        let mut rng = StdRng::seed_from_u64(3);
        let a = t.sample_attachments(400, &mut rng);
        let set: std::collections::BTreeSet<_> = a.iter().collect();
        assert_eq!(set.len(), 400, "unique when enough access routers exist");
        let attachable: std::collections::BTreeSet<_> = t.attachable.iter().collect();
        assert!(a.iter().all(|r| attachable.contains(r)));
    }

    #[test]
    fn oversubscribed_attachments_reuse_routers() {
        let cfg = TopologyConfig {
            n_as: 4,
            ..TopologyConfig::default()
        };
        let t = Topology::generate(&cfg, &mut StdRng::seed_from_u64(2));
        let mut rng = StdRng::seed_from_u64(3);
        let n = t.attachable.len() * 3;
        let a = t.sample_attachments(n, &mut rng);
        assert_eq!(a.len(), n);
        assert!(a.iter().all(|&r| (r as usize) < t.n_routers()));
    }
}
