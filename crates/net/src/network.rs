//! The complete messaging layer: topology + routes + TCP + faults.
//!
//! [`Network`] implements [`fuse_sim::Medium`]. Two emulation profiles
//! correspond to the paper's two evaluation vehicles (§7.1–7.2):
//!
//! * [`EmulationProfile::Simulator`] — pure propagation latency, no
//!   per-message overhead, connections always warm. The paper's discrete
//!   event simulator "used the same latency values, but did not model
//!   bandwidth constraints".
//! * [`EmulationProfile::Cluster`] — adds the measured ModelNet-cluster
//!   costs the paper reports: 2.8 ms per message send (XML serialization)
//!   plus 1.1 ms virtual-node multiplexing overhead, and a TCP
//!   connection-establishment round trip on first contact (connections are
//!   cached thereafter, which is why the paper's "2nd Cluster RPC" tracks
//!   the simulator curve in Figure 6).

use rand::rngs::StdRng;
use rand::Rng;

use fuse_obs::{Aggregates, Event, ObsSink, Recorder};
use fuse_sim::{Medium, ProcBitSet, ProcId, SimDuration, SimTime, Verdict};
use fuse_util::{DetHashMap, DetHashSet};

use crate::fault::FaultPlane;
use crate::routes::{OracleStats, RouteInfo, RouteOracle};
use crate::tcp::{TcpConfig, TcpModel, TcpOutcome};
use crate::topology::{RouterId, Topology};

/// Which evaluation vehicle to emulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EmulationProfile {
    /// The paper's discrete-event simulator: latency only.
    Simulator,
    /// The paper's 40-machine ModelNet cluster with 10 virtual nodes per
    /// machine.
    Cluster {
        /// Per-message serialization cost (paper micro-benchmark: 2.8 ms).
        serialization: SimDuration,
        /// Per-message virtual-node multiplexing cost (paper: 1.1 ms).
        virtualization: SimDuration,
    },
}

impl EmulationProfile {
    /// Cluster profile with the paper's measured constants.
    pub fn cluster_default() -> Self {
        EmulationProfile::Cluster {
            serialization: SimDuration::from_millis_f64(2.8),
            virtualization: SimDuration::from_millis_f64(1.1),
        }
    }

    fn per_message_overhead(&self) -> SimDuration {
        match *self {
            EmulationProfile::Simulator => SimDuration::ZERO,
            EmulationProfile::Cluster {
                serialization,
                virtualization,
            } => serialization + virtualization,
        }
    }

    fn models_connection_setup(&self) -> bool {
        matches!(self, EmulationProfile::Cluster { .. })
    }
}

/// Network configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Emulation profile (simulator vs cluster).
    pub profile: EmulationProfile,
    /// Uniform per-link Bernoulli loss rate (Figures 11–12); 0 disables.
    pub per_link_loss: f64,
    /// TCP policy.
    pub tcp: TcpConfig,
    /// Uniform jitter added to each delivery, for tie spreading.
    pub max_jitter: SimDuration,
    /// Maximum source rows the demand-driven [`RouteOracle`] keeps
    /// resident (each row is `n_routers × 8` bytes). 64 rows bound route
    /// memory to ~51 MB even at the ~100k-router Mercator preset, while
    /// the per-pair latency/loss cache above keeps steady-state traffic
    /// off the oracle entirely.
    pub route_lru_rows: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            profile: EmulationProfile::Simulator,
            per_link_loss: 0.0,
            tcp: TcpConfig::default(),
            max_jitter: SimDuration::from_micros(500),
            route_lru_rows: 64,
        }
    }
}

impl NetConfig {
    /// Simulator profile, no loss.
    pub fn simulator() -> Self {
        NetConfig::default()
    }

    /// Cluster profile with the paper's constants, no loss.
    pub fn cluster() -> Self {
        NetConfig {
            profile: EmulationProfile::cluster_default(),
            ..NetConfig::default()
        }
    }
}

/// Per-pair data [`Network::unicast`] needs on every send, cached so the
/// steady-state hot path (the same group edges pinged every period) does not
/// recompute route lookups and the `(1-p)^hops` power each time.
#[derive(Debug, Clone, Copy)]
struct CachedRoute {
    latency: SimDuration,
    rtt: SimDuration,
    /// Round-trip delivery probability (data + ACK) at the loss rate of
    /// `epoch`.
    p_success: f64,
    /// Loss-rate epoch this entry was computed under.
    epoch: u32,
}

/// The wide-area messaging layer (a [`Medium`] implementation).
pub struct Network {
    topo: Topology,
    routes: RouteOracle,
    attach: Vec<RouterId>,
    cfg: NetConfig,
    tcp: TcpModel,
    fault: FaultPlane,
    /// Process liveness as told by the kernel (checked on every send:
    /// a dense bitset keeps the lookup branchless and cache-resident).
    down: ProcBitSet,
    /// Warm TCP connections, normalized `(low, high)` pairs.
    conns: DetHashSet<(ProcId, ProcId)>,
    /// The observation recorder: break counts, content drops and byte
    /// accounting (offered and delivered, total and per message class) all
    /// live in its aggregates; the counter accessors below are views.
    obs: Recorder,
    /// Lazy per-ordered-pair cache keyed `(from << 32) | to`; invalidated
    /// wholesale by bumping `loss_epoch` (see [`Network::set_per_link_loss`]).
    route_cache: DetHashMap<u64, CachedRoute>,
    loss_epoch: u32,
}

impl Network {
    /// Builds a network over `topo` with process `i` attached to
    /// `attach[i]`. Construction is O(1) in topology size: routes are
    /// computed on demand by the [`RouteOracle`], not precomputed per
    /// source.
    pub fn new(topo: Topology, attach: Vec<RouterId>, cfg: NetConfig) -> Self {
        let routes = RouteOracle::new(cfg.route_lru_rows);
        let tcp = TcpModel::new(cfg.tcp.clone());
        Network {
            topo,
            routes,
            attach,
            cfg,
            tcp,
            fault: FaultPlane::new(),
            down: ProcBitSet::default(),
            conns: DetHashSet::default(),
            obs: Recorder::new(),
            route_cache: DetHashMap::default(),
            loss_epoch: 0,
        }
    }

    /// Convenience: generate a topology and attach `n_procs` random routers.
    pub fn generate(
        topo_cfg: &crate::topology::TopologyConfig,
        n_procs: usize,
        cfg: NetConfig,
        rng: &mut StdRng,
    ) -> Self {
        let topo = Topology::generate(topo_cfg, rng);
        let attach = topo.sample_attachments(n_procs, rng);
        Network::new(topo, attach, cfg)
    }

    /// The fault plane, for scripted failure injection.
    pub fn fault_mut(&mut self) -> &mut FaultPlane {
        &mut self.fault
    }

    /// Read-only fault plane.
    pub fn fault(&self) -> &FaultPlane {
        &self.fault
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of attached processes.
    pub fn n_procs(&self) -> usize {
        self.attach.len()
    }

    /// Route summary between two processes (computed on demand and cached
    /// in the oracle's LRU).
    pub fn route_info(&self, a: ProcId, b: ProcId) -> RouteInfo {
        self.routes
            .route(&self.topo, self.attach[a as usize], self.attach[b as usize])
    }

    /// Hit/miss/eviction counters and occupancy of the route oracle.
    pub fn route_oracle_stats(&self) -> OracleStats {
        self.routes.stats()
    }

    /// Round-trip time between two processes (propagation only).
    pub fn rtt(&self, a: ProcId, b: ProcId) -> SimDuration {
        self.route_info(a, b).latency.saturating_mul(2)
    }

    /// Changes the uniform per-link loss rate mid-run (Figure 12 enables
    /// loss after group creation). Invalidates the per-pair cache by epoch
    /// bump — O(1), entries refresh lazily on next use.
    pub fn set_per_link_loss(&mut self, p: f64) {
        assert!((0.0..1.0).contains(&p), "loss rate must be in [0,1)");
        self.cfg.per_link_loss = p;
        self.loss_epoch = self.loss_epoch.wrapping_add(1);
    }

    /// Cached latency/RTT/success-probability for `from -> to`, refreshed
    /// if the loss-rate epoch moved.
    fn cached_route(&mut self, from: ProcId, to: ProcId) -> CachedRoute {
        let key = (u64::from(from) << 32) | u64::from(to);
        let epoch = self.loss_epoch;
        if let Some(c) = self.route_cache.get(&key) {
            if c.epoch == epoch {
                return *c;
            }
        }
        let info = self.routes.route(
            &self.topo,
            self.attach[from as usize],
            self.attach[to as usize],
        );
        let p_one_way = info.delivery_prob(self.cfg.per_link_loss);
        let c = CachedRoute {
            latency: info.latency,
            rtt: info.latency.saturating_mul(2),
            p_success: p_one_way * p_one_way,
            epoch,
        };
        self.route_cache.insert(key, c);
        c
    }

    /// Current per-link loss rate.
    pub fn per_link_loss(&self) -> f64 {
        self.cfg.per_link_loss
    }

    /// Count of connection-break events so far.
    pub fn break_count(&self) -> u64 {
        self.obs.aggregates().breaks
    }

    /// Count of messages silently eaten by the §3.5 content adversary.
    pub fn content_drop_count(&self) -> u64 {
        self.obs.aggregates().content_drops
    }

    /// Total wire bytes offered to the network (every `unicast`, whatever
    /// its verdict). Sizes come from the codec's exact single-pass hints,
    /// so this is real encoded-bytes load, not an estimate.
    pub fn bytes_offered(&self) -> u64 {
        self.obs.aggregates().bytes_offered
    }

    /// Total wire bytes of messages the network accepted for delivery
    /// (the verdict was `Deliver`). Counted at send time: like a real
    /// in-flight packet, a message to a receiver that crashes before the
    /// arrival instant is still network load, even though the kernel drops
    /// it on arrival.
    pub fn bytes_delivered(&self) -> u64 {
        self.obs.aggregates().bytes_delivered
    }

    /// The full observation aggregates: totals above plus per-class byte
    /// and drop breakdowns, ready to merge into a run-level recorder.
    pub fn obs(&self) -> &Aggregates {
        self.obs.aggregates()
    }

    /// Whether a warm TCP connection exists between `a` and `b`.
    pub fn connection_warm(&self, a: ProcId, b: ProcId) -> bool {
        self.conns.contains(&normalize(a, b))
    }

    fn drop_conn(&mut self, a: ProcId, b: ProcId) {
        self.conns.remove(&normalize(a, b));
    }

    fn drop_all_conns_of(&mut self, n: ProcId) {
        self.conns.retain(|&(a, b)| a != n && b != n);
    }
}

impl fuse_sim::ShardMedium for Network {
    fn replicate(&self, shards: usize) -> Vec<Self> {
        // The Cluster profile's warm-connection cache changes delivery
        // latency based on per-replica send history, which diverges across
        // shard counts; only the Simulator profile's verdicts are a pure
        // function of (fault state, sender RNG) and therefore replicable.
        assert!(
            matches!(self.cfg.profile, EmulationProfile::Simulator),
            "sharded runs require the Simulator profile: Cluster \
             connection-setup state is per-replica send history"
        );
        (0..shards)
            .map(|_| Network {
                topo: self.topo.clone(),
                routes: RouteOracle::new(self.cfg.route_lru_rows),
                attach: self.attach.clone(),
                cfg: self.cfg.clone(),
                tcp: TcpModel::new(self.cfg.tcp.clone()),
                fault: self.fault.clone(),
                down: self.down.clone(),
                conns: self.conns.clone(),
                // Replicas start with FRESH recorders: each shard observes
                // only the sends it arbitrates, so summing per-shard
                // aggregates reproduces the single-shard totals exactly.
                // Copying the pre-split counts would double-count them.
                obs: Recorder::new(),
                route_cache: DetHashMap::default(),
                loss_epoch: self.loss_epoch,
            })
            .collect()
    }

    fn shard_lookahead(&self, map: &fuse_sim::ShardMap) -> Vec<SimDuration> {
        use crate::topology::SAME_ROUTER_LATENCY;
        let min_link = self.topo.min_link_latency();
        assert!(
            min_link > SimDuration::ZERO,
            "sharded runs need positive link latencies for lookahead"
        );
        let k = map.shards();
        let mut sets: Vec<Vec<RouterId>> = vec![Vec::new(); k];
        for (p, &r) in self.attach.iter().enumerate() {
            sets[map.shard_of(p as ProcId)].push(r);
        }
        // Conservative floor for any pair that can share an attachment
        // router: co-located nodes talk at SAME_ROUTER_LATENCY, and two
        // distinct routers are at least one link apart.
        let floor = SAME_ROUTER_LATENCY.min(min_link);
        let mut in_src = vec![false; self.topo.n_routers()];
        let mut out = vec![SimDuration(u64::MAX); k * k];
        for i in 0..k {
            if sets[i].is_empty() {
                continue; // No senders: the u64::MAX bound saturates away.
            }
            let dist = self.topo.latency_distances_from(&sets[i]);
            for &r in &sets[i] {
                in_src[r as usize] = true;
            }
            for j in 0..k {
                if i == j {
                    continue;
                }
                let mut b = u64::MAX;
                for &rb in &sets[j] {
                    let d = if in_src[rb as usize] {
                        floor.nanos()
                    } else {
                        dist[rb as usize]
                    };
                    b = b.min(d);
                }
                out[i * k + j] = SimDuration(b);
            }
            for &r in &sets[i] {
                in_src[r as usize] = false;
            }
        }
        out
    }
}

fn normalize(a: ProcId, b: ProcId) -> (ProcId, ProcId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Medium for Network {
    fn unicast(
        &mut self,
        now: SimTime,
        rng: &mut StdRng,
        from: ProcId,
        to: ProcId,
        size: usize,
        class: &'static str,
    ) -> Verdict {
        assert!(
            (from as usize) < self.attach.len() && (to as usize) < self.attach.len(),
            "process not attached to the network"
        );
        self.obs.record(Event::BytesOffered {
            class,
            bytes: size as u64,
        });
        // Per-attempt success (cached per pair): data over the forward
        // route and the ACK over the reverse route (symmetric latencies,
        // identical hop count).
        let route = self.cached_route(from, to);
        let rtt = route.rtt;

        // Administrative blocks and dead peers: TCP retransmits into the
        // void, then the sender sees a broken connection.
        if self.fault.blocked(from, to) || self.down.contains(to) {
            self.obs.record(Event::ConnectionBroken);
            self.drop_conn(from, to);
            return Verdict::Break {
                sender_notice: now + self.tcp.give_up_after(rtt),
            };
        }

        // The §3.5 content-based adversary: a matching message vanishes
        // *silently* — no retransmission, no broken-connection notice — so
        // only FUSE's own liveness machinery can notice. (An adversary that
        // dropped every TCP segment would eventually break the connection;
        // one that drops the message exactly once per attempt and lets
        // keepalives through is strictly harder to detect, and that is the
        // case modeled here.)
        if self.fault.content_blocked(from, to, class) {
            self.obs.record(Event::ContentDropped { class });
            return Verdict::Drop;
        }

        // Injected per-pair loss (chaos loss ramps) composes with the
        // route's own loss: data crosses `from -> to`, the ACK crosses
        // `to -> from`, each surviving its direction's injected rate.
        let mut p_success = route.p_success;
        if self.fault.has_link_loss() {
            p_success *=
                (1.0 - self.fault.link_loss(from, to)) * (1.0 - self.fault.link_loss(to, from));
        }

        match self.tcp.attempt(rng, rtt, p_success) {
            TcpOutcome::Delivered { extra_delay } => {
                let mut latency = route.latency + extra_delay;
                latency = latency + self.cfg.profile.per_message_overhead();
                if self.cfg.profile.models_connection_setup()
                    && !self.conns.contains(&normalize(from, to))
                {
                    // SYN + SYN-ACK before the data segment.
                    latency = latency + rtt;
                }
                self.conns.insert(normalize(from, to));
                if self.cfg.max_jitter > SimDuration::ZERO {
                    latency = latency + SimDuration(rng.gen_range(0..=self.cfg.max_jitter.nanos()));
                }
                self.obs.record(Event::BytesDelivered {
                    class,
                    bytes: size as u64,
                });
                Verdict::Deliver { at: now + latency }
            }
            TcpOutcome::Broken { give_up_after } => {
                self.obs.record(Event::ConnectionBroken);
                self.drop_conn(from, to);
                Verdict::Break {
                    sender_notice: now + give_up_after,
                }
            }
        }
    }

    fn node_up(&mut self, id: ProcId) {
        self.down.remove(id);
    }

    fn node_down(&mut self, id: ProcId) {
        self.down.insert(id);
        self.drop_all_conns_of(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyConfig;
    use rand::SeedableRng;

    fn small_net(cfg: NetConfig) -> (Network, StdRng) {
        let mut rng = StdRng::seed_from_u64(123);
        let topo_cfg = TopologyConfig {
            n_as: 16,
            core_per_as: 4,
            chains_per_as: 2,
            chain_len: (2, 4),
            ..TopologyConfig::default()
        };
        let net = Network::generate(&topo_cfg, 20, cfg, &mut rng);
        (net, rng)
    }

    #[test]
    fn simulator_delivery_latency_is_propagation_plus_jitter() {
        let (mut net, mut rng) = small_net(NetConfig::simulator());
        let info = net.route_info(0, 1);
        match net.unicast(SimTime::ZERO, &mut rng, 0, 1, 100, "msg") {
            Verdict::Deliver { at } => {
                assert!(at.nanos() >= info.latency.nanos());
                assert!(at.nanos() <= info.latency.nanos() + 500_000);
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn cluster_first_message_pays_connection_setup() {
        let (mut net, mut rng) = small_net(NetConfig::cluster());
        let info = net.route_info(0, 1);
        let rtt = info.latency.saturating_mul(2);
        let overhead = SimDuration::from_millis_f64(3.9);
        let first = match net.unicast(SimTime::ZERO, &mut rng, 0, 1, 100, "msg") {
            Verdict::Deliver { at } => at,
            other => panic!("{other:?}"),
        };
        assert!(
            first.nanos() >= (info.latency + rtt + overhead).nanos(),
            "first message must include SYN round trip"
        );
        assert!(net.connection_warm(0, 1));
        let second = match net.unicast(SimTime::ZERO, &mut rng, 0, 1, 100, "msg") {
            Verdict::Deliver { at } => at,
            other => panic!("{other:?}"),
        };
        assert!(
            second.nanos() < first.nanos(),
            "cached connection must be faster"
        );
        assert!(second.nanos() >= (info.latency + overhead).nanos());
    }

    #[test]
    fn blocked_pair_breaks_connection() {
        let (mut net, mut rng) = small_net(NetConfig::simulator());
        net.fault_mut().add_blackhole(2, 3);
        match net.unicast(SimTime::ZERO, &mut rng, 2, 3, 64, "msg") {
            Verdict::Break { sender_notice } => {
                // Default TCP gives up after 63 s for rtt << min_rto.
                assert_eq!(sender_notice, SimTime::ZERO + SimDuration::from_secs(63));
            }
            other => panic!("{other:?}"),
        }
        // Reverse direction unaffected.
        assert!(matches!(
            net.unicast(SimTime::ZERO, &mut rng, 3, 2, 64, "msg"),
            Verdict::Deliver { .. }
        ));
        assert_eq!(net.break_count(), 1);
    }

    #[test]
    fn dead_peer_breaks_and_conn_cache_resets() {
        let (mut net, mut rng) = small_net(NetConfig::cluster());
        assert!(matches!(
            net.unicast(SimTime::ZERO, &mut rng, 4, 5, 64, "msg"),
            Verdict::Deliver { .. }
        ));
        assert!(net.connection_warm(4, 5));
        net.node_down(5);
        assert!(!net.connection_warm(4, 5), "crash drops cached connections");
        assert!(matches!(
            net.unicast(SimTime::ZERO, &mut rng, 4, 5, 64, "msg"),
            Verdict::Break { .. }
        ));
        net.node_up(5);
        assert!(matches!(
            net.unicast(SimTime::ZERO, &mut rng, 4, 5, 64, "msg"),
            Verdict::Deliver { .. }
        ));
    }

    #[test]
    fn heavy_loss_inflates_latency_and_sometimes_breaks() {
        let (mut net, mut rng) = small_net(NetConfig::simulator());
        net.set_per_link_loss(0.05);
        let mut delayed = 0;
        let mut broken = 0;
        for _ in 0..2000 {
            match net.unicast(SimTime::ZERO, &mut rng, 0, 1, 64, "msg") {
                Verdict::Deliver { at } => {
                    if at.nanos() > SimDuration::from_secs(1).nanos() {
                        delayed += 1;
                    }
                }
                Verdict::Break { .. } => broken += 1,
                Verdict::Drop => {}
            }
        }
        assert!(delayed > 0, "retransmission delays must appear");
        assert!(broken > 0, "connections must break under heavy loss");
    }

    #[test]
    fn byte_accounting_tracks_offered_and_delivered() {
        let (mut net, mut rng) = small_net(NetConfig::simulator());
        assert_eq!(net.bytes_offered(), 0);
        for _ in 0..10 {
            assert!(matches!(
                net.unicast(SimTime::ZERO, &mut rng, 0, 1, 33, "msg"),
                Verdict::Deliver { .. }
            ));
        }
        assert_eq!(net.bytes_offered(), 330);
        assert_eq!(net.bytes_delivered(), 330);
        // A blackholed pair counts as offered but never delivered.
        net.fault_mut().add_blackhole(0, 1);
        let _ = net.unicast(SimTime::ZERO, &mut rng, 0, 1, 7, "msg");
        assert_eq!(net.bytes_offered(), 337);
        assert_eq!(net.bytes_delivered(), 330);
    }

    #[test]
    fn zero_loss_never_breaks() {
        let (mut net, mut rng) = small_net(NetConfig::simulator());
        for _ in 0..500 {
            assert!(matches!(
                net.unicast(SimTime::ZERO, &mut rng, 6, 7, 64, "msg"),
                Verdict::Deliver { .. }
            ));
        }
        assert_eq!(net.break_count(), 0);
    }

    #[test]
    fn route_cache_tracks_loss_rate_changes() {
        // The per-pair cache must be invalidated when the loss rate moves:
        // prime it at zero loss, crank loss to near-certain failure, then
        // drop back to zero — each regime must show its own behavior.
        let (mut net, mut rng) = small_net(NetConfig::simulator());
        for _ in 0..50 {
            assert!(matches!(
                net.unicast(SimTime::ZERO, &mut rng, 0, 1, 64, "msg"),
                Verdict::Deliver { .. }
            ));
        }
        net.set_per_link_loss(0.9);
        let broken = (0..50)
            .filter(|_| {
                matches!(
                    net.unicast(SimTime::ZERO, &mut rng, 0, 1, 64, "msg"),
                    Verdict::Break { .. }
                )
            })
            .count();
        assert!(broken > 0, "stale cache: extreme loss produced no breaks");
        net.set_per_link_loss(0.0);
        for _ in 0..50 {
            assert!(matches!(
                net.unicast(SimTime::ZERO, &mut rng, 0, 1, 64, "msg"),
                Verdict::Deliver { .. }
            ));
        }
    }

    #[test]
    fn routes_are_built_on_demand_not_up_front() {
        let (mut net, mut rng) = small_net(NetConfig::simulator());
        assert_eq!(
            net.route_oracle_stats().resident_rows,
            0,
            "construction must not precompute routes"
        );
        let info = net.route_info(0, 1);
        let s = net.route_oracle_stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.resident_rows, 1);
        // Sends reuse the oracle through the per-pair cache; the same pair
        // again is a pair-cache hit, not even an oracle query.
        assert!(matches!(
            net.unicast(SimTime::ZERO, &mut rng, 0, 1, 64, "msg"),
            Verdict::Deliver { .. }
        ));
        let after_first = net.route_oracle_stats();
        assert!(matches!(
            net.unicast(SimTime::ZERO, &mut rng, 0, 1, 64, "msg"),
            Verdict::Deliver { .. }
        ));
        assert_eq!(net.route_oracle_stats(), after_first);
        // And the oracle row, once resident, serves other destinations as
        // hits with identical results on repeat.
        assert_eq!(info, net.route_info(0, 1));
    }

    #[test]
    fn oracle_capacity_bounds_route_memory_under_many_sources() {
        let mut rng = StdRng::seed_from_u64(7);
        let topo_cfg = TopologyConfig {
            n_as: 16,
            core_per_as: 4,
            chains_per_as: 2,
            chain_len: (2, 4),
            ..TopologyConfig::default()
        };
        let cfg = NetConfig {
            route_lru_rows: 4,
            ..NetConfig::simulator()
        };
        let net = Network::generate(&topo_cfg, 40, cfg, &mut rng);
        for a in 0..net.n_procs() as ProcId {
            net.route_info(a, (a + 1) % net.n_procs() as ProcId);
        }
        let s = net.route_oracle_stats();
        assert!(s.resident_rows <= 4, "LRU cap violated: {s:?}");
        assert!(s.evictions > 0, "cap 4 over 40 sources must evict");
    }

    /// Heal-path regressions: every fault-plane *clear* operation must
    /// actually restore end-to-end delivery, not just mutate the rule set
    /// (the injection paths above assert the block; these assert the heal).
    #[test]
    fn reconnect_restores_end_to_end_delivery() {
        let (mut net, mut rng) = small_net(NetConfig::simulator());
        net.fault_mut().disconnect(4);
        assert!(matches!(
            net.unicast(SimTime::ZERO, &mut rng, 4, 5, 64, "msg"),
            Verdict::Break { .. }
        ));
        net.fault_mut().reconnect(4);
        for _ in 0..20 {
            assert!(
                matches!(
                    net.unicast(SimTime::ZERO, &mut rng, 4, 5, 64, "msg"),
                    Verdict::Deliver { .. }
                ),
                "delivery must resume after reconnect"
            );
            assert!(matches!(
                net.unicast(SimTime::ZERO, &mut rng, 5, 4, 64, "msg"),
                Verdict::Deliver { .. }
            ));
        }
    }

    #[test]
    fn clear_blackhole_restores_end_to_end_delivery() {
        let (mut net, mut rng) = small_net(NetConfig::simulator());
        net.fault_mut().add_blackhole(2, 3);
        assert!(matches!(
            net.unicast(SimTime::ZERO, &mut rng, 2, 3, 64, "msg"),
            Verdict::Break { .. }
        ));
        net.fault_mut().clear_blackhole(2, 3);
        for _ in 0..20 {
            assert!(
                matches!(
                    net.unicast(SimTime::ZERO, &mut rng, 2, 3, 64, "msg"),
                    Verdict::Deliver { .. }
                ),
                "delivery must resume after clear_blackhole"
            );
        }
    }

    #[test]
    fn heal_partitions_restores_cross_cell_delivery() {
        let (mut net, mut rng) = small_net(NetConfig::simulator());
        net.fault_mut().set_partition(1, 1);
        net.fault_mut().set_partition(2, 2);
        assert!(matches!(
            net.unicast(SimTime::ZERO, &mut rng, 1, 2, 64, "msg"),
            Verdict::Break { .. }
        ));
        assert!(matches!(
            net.unicast(SimTime::ZERO, &mut rng, 1, 0, 64, "msg"),
            Verdict::Break { .. }
        ));
        net.fault_mut().heal_partitions();
        for (a, b) in [(1, 2), (2, 1), (1, 0), (0, 2)] {
            assert!(
                matches!(
                    net.unicast(SimTime::ZERO, &mut rng, a, b, 64, "msg"),
                    Verdict::Deliver { .. }
                ),
                "{a}->{b} must deliver after heal_partitions"
            );
        }
    }

    #[test]
    fn partitioned_node_returned_to_default_cell_reaches_unpartitioned_nodes() {
        let (mut net, mut rng) = small_net(NetConfig::simulator());
        net.fault_mut().set_partition(6, 3);
        assert!(matches!(
            net.unicast(SimTime::ZERO, &mut rng, 6, 7, 64, "msg"),
            Verdict::Break { .. }
        ));
        // Back into the default cell — NOT via heal_partitions — must reach
        // nodes that were never partitioned, in both directions.
        net.fault_mut().set_partition(6, 0);
        assert!(matches!(
            net.unicast(SimTime::ZERO, &mut rng, 6, 7, 64, "msg"),
            Verdict::Deliver { .. }
        ));
        assert!(matches!(
            net.unicast(SimTime::ZERO, &mut rng, 7, 6, 64, "msg"),
            Verdict::Deliver { .. }
        ));
    }

    #[test]
    fn content_adversary_eats_matching_class_silently() {
        let (mut net, mut rng) = small_net(NetConfig::simulator());
        net.fault_mut().drop_class("overlay.ping");
        for _ in 0..10 {
            assert!(
                matches!(
                    net.unicast(SimTime::ZERO, &mut rng, 0, 1, 64, "overlay.ping"),
                    Verdict::Drop
                ),
                "matching class must vanish silently (no Break)"
            );
            assert!(matches!(
                net.unicast(SimTime::ZERO, &mut rng, 0, 1, 64, "fuse.hard"),
                Verdict::Deliver { .. }
            ));
        }
        assert_eq!(net.content_drop_count(), 10);
        assert_eq!(net.break_count(), 0, "content drops are not breaks");
        // The adversary walking away restores delivery.
        net.fault_mut().clear_class_drops();
        assert!(matches!(
            net.unicast(SimTime::ZERO, &mut rng, 0, 1, 64, "overlay.ping"),
            Verdict::Deliver { .. }
        ));
    }

    #[test]
    fn injected_pair_loss_behaves_like_link_loss() {
        let (mut net, mut rng) = small_net(NetConfig::simulator());
        // Near-certain loss on one directed pair: sends there must suffer
        // (retransmission delays or breaks); an untouched pair must not.
        net.fault_mut().set_link_loss(0, 1, 0.95);
        let mut impaired = 0;
        for _ in 0..200 {
            match net.unicast(SimTime::ZERO, &mut rng, 0, 1, 64, "msg") {
                Verdict::Deliver { at } => {
                    if at.nanos() > SimDuration::from_secs(1).nanos() {
                        impaired += 1;
                    }
                }
                Verdict::Break { .. } => impaired += 1,
                Verdict::Drop => {}
            }
        }
        assert!(impaired > 0, "95% injected loss must impair the pair");
        for _ in 0..50 {
            assert!(matches!(
                net.unicast(SimTime::ZERO, &mut rng, 6, 7, 64, "msg"),
                Verdict::Deliver { .. }
            ));
        }
        // Clearing the injected loss restores clean delivery.
        net.fault_mut().clear_link_loss();
        let breaks_before = net.break_count();
        for _ in 0..50 {
            assert!(matches!(
                net.unicast(SimTime::ZERO, &mut rng, 0, 1, 64, "msg"),
                Verdict::Deliver { .. }
            ));
        }
        assert_eq!(net.break_count(), breaks_before);
    }

    #[test]
    fn shard_lookahead_bounds_actual_deliveries() {
        use fuse_sim::{ShardMap, ShardMedium};
        let (mut net, mut rng) = small_net(NetConfig::simulator());
        let map = ShardMap::new(4);
        let la = net.shard_lookahead(&map);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(la[i * 4 + j] > SimDuration::ZERO, "bound {i}->{j}");
                }
            }
        }
        for from in 0..20u32 {
            for to in 0..20u32 {
                let (si, sj) = (map.shard_of(from), map.shard_of(to));
                if from == to || si == sj {
                    continue;
                }
                if let Verdict::Deliver { at } =
                    net.unicast(SimTime::ZERO, &mut rng, from, to, 64, "msg")
                {
                    assert!(
                        at.nanos() >= la[si * 4 + sj].nanos(),
                        "delivery {from}->{to} beat the conservative bound"
                    );
                }
            }
        }
    }

    #[test]
    fn replicas_agree_on_verdicts_given_equal_rng() {
        use fuse_sim::ShardMedium;
        let (net, _) = small_net(NetConfig::simulator());
        let mut reps = net.replicate(3);
        for m in &mut reps {
            m.fault_mut().set_link_loss(2, 3, 0.4);
            m.node_down(7);
        }
        for (a, b) in [(0u32, 1u32), (2, 3), (5, 9), (4, 7)] {
            let verdicts: Vec<Verdict> = reps
                .iter_mut()
                .map(|m| {
                    let mut rng = StdRng::seed_from_u64(42);
                    m.unicast(SimTime::ZERO, &mut rng, a, b, 64, "msg")
                })
                .collect();
            assert!(
                verdicts.windows(2).all(|w| w[0] == w[1]),
                "replica verdicts diverged for {a}->{b}: {verdicts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "Simulator profile")]
    fn cluster_profile_refuses_replication() {
        use fuse_sim::ShardMedium;
        let (net, _) = small_net(NetConfig::cluster());
        let _ = net.replicate(2);
    }

    #[test]
    fn disconnect_isolates_node_both_ways() {
        let (mut net, mut rng) = small_net(NetConfig::simulator());
        net.fault_mut().disconnect(8);
        assert!(matches!(
            net.unicast(SimTime::ZERO, &mut rng, 8, 9, 64, "msg"),
            Verdict::Break { .. }
        ));
        assert!(matches!(
            net.unicast(SimTime::ZERO, &mut rng, 9, 8, 64, "msg"),
            Verdict::Break { .. }
        ));
        net.fault_mut().reconnect(8);
        assert!(matches!(
            net.unicast(SimTime::ZERO, &mut rng, 9, 8, 64, "msg"),
            Verdict::Deliver { .. }
        ));
    }
}
