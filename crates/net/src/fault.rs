//! Scriptable network failures.
//!
//! The paper's failure model is "any pattern of packet loss, duplication or
//! re-ordering ... includ\[ing\] simultaneous network partitions and even an
//! adversary dropping packets based on their content" (§3.5), and its
//! experiments disconnect machines (Figure 9) and inject per-link loss
//! (Figures 11–12). The fault plane implements the *control* part:
//!
//! * node **disconnect** — the process stays alive but no packet enters or
//!   leaves it (Figure 9's unplugged machine),
//! * directed **blackholes** — `a` cannot reach `b` while every other path
//!   works (intransitive connectivity, §3.4),
//! * **partitions** — only nodes in the same partition cell communicate.
//!
//! Stochastic loss lives in the TCP model; crash-stop lives in the kernel.

use fuse_sim::ProcId;
use fuse_util::{DetHashMap, DetHashSet};

/// Mutable switchboard of injected connectivity failures.
#[derive(Debug, Default, Clone)]
pub struct FaultPlane {
    disconnected: DetHashSet<ProcId>,
    blackholes: DetHashSet<(ProcId, ProcId)>,
    partition_of: DetHashMap<ProcId, u32>,
}

impl FaultPlane {
    /// No failures.
    pub fn new() -> Self {
        FaultPlane::default()
    }

    /// Unplugs `n` from the network (process still running).
    pub fn disconnect(&mut self, n: ProcId) {
        self.disconnected.insert(n);
    }

    /// Restores `n`'s connectivity.
    pub fn reconnect(&mut self, n: ProcId) {
        self.disconnected.remove(&n);
    }

    /// Whether `n` is currently unplugged.
    pub fn is_disconnected(&self, n: ProcId) -> bool {
        self.disconnected.contains(&n)
    }

    /// Makes packets from `a` to `b` vanish (one direction only).
    pub fn add_blackhole(&mut self, a: ProcId, b: ProcId) {
        self.blackholes.insert((a, b));
    }

    /// Makes `a`↔`b` unreachable in both directions.
    pub fn add_bidirectional_blackhole(&mut self, a: ProcId, b: ProcId) {
        self.blackholes.insert((a, b));
        self.blackholes.insert((b, a));
    }

    /// Removes a directed blackhole.
    pub fn clear_blackhole(&mut self, a: ProcId, b: ProcId) {
        self.blackholes.remove(&(a, b));
    }

    /// Assigns `n` to a partition cell; nodes in different cells cannot
    /// communicate. All nodes start in cell 0.
    pub fn set_partition(&mut self, n: ProcId, cell: u32) {
        if cell == 0 {
            self.partition_of.remove(&n);
        } else {
            self.partition_of.insert(n, cell);
        }
    }

    /// Heals all partitions.
    pub fn heal_partitions(&mut self) {
        self.partition_of.clear();
    }

    /// Whether a packet from `a` to `b` is administratively blocked.
    pub fn blocked(&self, a: ProcId, b: ProcId) -> bool {
        if self.disconnected.contains(&a) || self.disconnected.contains(&b) {
            return true;
        }
        if self.blackholes.contains(&(a, b)) {
            return true;
        }
        let ca = self.partition_of.get(&a).copied().unwrap_or(0);
        let cb = self.partition_of.get(&b).copied().unwrap_or(0);
        ca != cb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_allows_everything() {
        let f = FaultPlane::new();
        assert!(!f.blocked(1, 2));
        assert!(!f.blocked(2, 1));
    }

    #[test]
    fn disconnect_blocks_both_directions() {
        let mut f = FaultPlane::new();
        f.disconnect(3);
        assert!(f.blocked(3, 1));
        assert!(f.blocked(1, 3));
        assert!(!f.blocked(1, 2));
        f.reconnect(3);
        assert!(!f.blocked(3, 1));
    }

    #[test]
    fn blackhole_is_directional() {
        // The intransitive scenario of §3.4: A cannot reach C, but C can
        // reach A, and both talk to B.
        let (a, b, c) = (0, 1, 2);
        let mut f = FaultPlane::new();
        f.add_blackhole(a, c);
        assert!(f.blocked(a, c));
        assert!(!f.blocked(c, a));
        assert!(!f.blocked(a, b));
        assert!(!f.blocked(b, c));
        f.clear_blackhole(a, c);
        assert!(!f.blocked(a, c));
    }

    #[test]
    fn partitions_split_cells() {
        let mut f = FaultPlane::new();
        f.set_partition(1, 1);
        f.set_partition(2, 1);
        assert!(!f.blocked(1, 2), "same cell communicates");
        assert!(f.blocked(1, 3), "cross-cell blocked");
        assert!(f.blocked(3, 2));
        assert!(!f.blocked(3, 4), "cell 0 intact");
        f.heal_partitions();
        assert!(!f.blocked(1, 3));
    }

    #[test]
    fn returning_to_cell_zero_heals_a_node() {
        let mut f = FaultPlane::new();
        f.set_partition(5, 2);
        assert!(f.blocked(5, 0));
        f.set_partition(5, 0);
        assert!(!f.blocked(5, 0));
    }
}
